"""``repro.apps`` — the paper's demonstration applications.

* :mod:`repro.apps.voter` — Voter with Leaderboard (§3.1): an OLTP-style
  workload with streaming inputs, deployed both on S-Store (correct, fast)
  and naively on H-Store (anomalous, slow).
* :mod:`repro.apps.bikeshare` — BikeShare (§3.2): pure OLTP (checkouts,
  returns), pure streaming (GPS statistics, stolen-bike alerts) and hybrid
  (transactional real-time discounts) in one engine.
"""

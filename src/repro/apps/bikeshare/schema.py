"""BikeShare schema (paper §3.2).

A city-scale bike-sharing system in one engine: OLTP (checkouts, returns,
discount acceptances), streaming (1 Hz GPS reports, ride statistics,
stolen-bike detection), and hybrid processing (real-time discounts that are
recomputed from station state changes and granted transactionally).

Coordinates are planar, in miles (the demo's map projection is
presentation-level; planar geometry exercises the same code paths).  The
logical clock runs at 1 tick = 1 second, so a 1 Hz GPS unit emits one report
per tick and the 15-minute discount expiry is 900 ticks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hstore.engine import HStoreEngine

__all__ = [
    "DISCOUNT_EXPIRY_TICKS",
    "DISCOUNT_PCT",
    "HIGH_WATER",
    "LOW_WATER",
    "MAX_OFFERS_PER_STATION",
    "STOLEN_SPEED_MPH",
    "BASE_FARE",
    "PER_MINUTE_RATE",
    "CALORIES_PER_MILE",
    "install_tables",
    "install_streams",
    "seed_city",
]

#: a discount offer, once accepted, must be redeemed within 15 minutes
DISCOUNT_EXPIRY_TICKS = 900
DISCOUNT_PCT = 25.0
#: a station with fewer bikes than this starts offering discounts
LOW_WATER = 2
#: a station with at least this many bikes stops offering
HIGH_WATER = 4
MAX_OFFERS_PER_STATION = 3
#: "a bike traveling at 60 mph may indicate that the bike ... is stolen"
STOLEN_SPEED_MPH = 60.0
BASE_FARE = 1.0
PER_MINUTE_RATE = 0.15
CALORIES_PER_MILE = 40.0

_TABLES = [
    """
    CREATE TABLE stations (
        station_id      INTEGER NOT NULL,
        station_name    VARCHAR(64) NOT NULL,
        x               FLOAT NOT NULL,
        y               FLOAT NOT NULL,
        capacity        INTEGER NOT NULL,
        bikes_available INTEGER NOT NULL,
        docks_available INTEGER NOT NULL,
        PRIMARY KEY (station_id)
    )
    """,
    """
    CREATE TABLE bikes (
        bike_id    INTEGER NOT NULL,
        status     VARCHAR(8) NOT NULL,
        station_id INTEGER,
        rider_id   INTEGER,
        PRIMARY KEY (bike_id)
    )
    """,
    """
    CREATE TABLE riders (
        rider_id    INTEGER NOT NULL,
        rider_name  VARCHAR(64) NOT NULL,
        active_ride INTEGER,
        PRIMARY KEY (rider_id)
    )
    """,
    """
    CREATE TABLE rides (
        ride_id       INTEGER NOT NULL,
        rider_id      INTEGER NOT NULL,
        bike_id       INTEGER NOT NULL,
        start_station INTEGER NOT NULL,
        end_station   INTEGER,
        start_ts      TIMESTAMP NOT NULL,
        end_ts        TIMESTAMP,
        cost          FLOAT,
        distance      FLOAT NOT NULL,
        max_speed     FLOAT NOT NULL,
        calories      FLOAT NOT NULL,
        PRIMARY KEY (ride_id)
    )
    """,
    """
    CREATE TABLE bike_positions (
        bike_id INTEGER NOT NULL,
        ts      TIMESTAMP NOT NULL,
        x       FLOAT NOT NULL,
        y       FLOAT NOT NULL,
        PRIMARY KEY (bike_id)
    )
    """,
    """
    CREATE TABLE discounts (
        discount_id INTEGER NOT NULL,
        station_id  INTEGER NOT NULL,
        rider_id    INTEGER,
        state       VARCHAR(10) NOT NULL,
        pct         FLOAT NOT NULL,
        offered_ts  TIMESTAMP NOT NULL,
        expires_ts  TIMESTAMP,
        PRIMARY KEY (discount_id)
    )
    """,
    """
    CREATE TABLE alerts (
        alert_id INTEGER NOT NULL,
        bike_id  INTEGER NOT NULL,
        kind     VARCHAR(16) NOT NULL,
        ts       TIMESTAMP NOT NULL,
        detail   VARCHAR(128),
        PRIMARY KEY (alert_id)
    )
    """,
    """
    CREATE TABLE billing (
        charge_id INTEGER NOT NULL,
        rider_id  INTEGER NOT NULL,
        ride_id   INTEGER NOT NULL,
        amount    FLOAT NOT NULL,
        PRIMARY KEY (charge_id)
    )
    """,
    """
    CREATE TABLE city_stats (
        stat_id          INTEGER NOT NULL,
        avg_recent_speed FLOAT,
        reports_seen     INTEGER NOT NULL,
        PRIMARY KEY (stat_id)
    )
    """,
    "CREATE INDEX idx_bikes_station ON bikes (station_id, status)",
    "CREATE INDEX idx_discounts_station ON discounts (station_id, state)",
    "CREATE INDEX idx_discounts_rider ON discounts (rider_id)",
    "CREATE INDEX idx_rides_rider ON rides (rider_id)",
]

_STREAMS = [
    """
    CREATE STREAM gps_in (
        bike_id INTEGER NOT NULL,
        ts      TIMESTAMP NOT NULL,
        x       FLOAT NOT NULL,
        y       FLOAT NOT NULL
    )
    """,
    """
    CREATE STREAM movements (
        bike_id    INTEGER NOT NULL,
        ts         TIMESTAMP NOT NULL,
        speed_mph  FLOAT NOT NULL,
        dist_miles FLOAT NOT NULL
    )
    """,
    """
    CREATE STREAM station_events (
        station_id      INTEGER NOT NULL,
        ts              TIMESTAMP NOT NULL,
        bikes_available INTEGER NOT NULL
    )
    """,
    # city-wide window over the most recent movement reports, used by the
    # anomaly detector for the live average-speed statistic
    "CREATE WINDOW recent_movements ON movements ROWS 30 SLIDE 1 "
    "OWNED BY detect_anomaly",
]

def install_tables(engine: "HStoreEngine") -> None:
    for ddl in _TABLES:
        engine.execute_ddl(ddl)


def install_streams(engine: "HStoreEngine") -> None:
    for ddl in _STREAMS:
        engine.execute_ddl(ddl)


def seed_city(
    engine: "HStoreEngine",
    *,
    num_stations: int = 9,
    capacity: int = 8,
    bikes_per_station: int = 5,
    num_riders: int = 40,
    grid_spacing_miles: float = 1.0,
) -> None:
    """Lay out stations on a square-ish grid, dock bikes, register riders."""
    side = max(1, round(num_stations**0.5))
    bike_id = 0
    for station_id in range(1, num_stations + 1):
        x = ((station_id - 1) % side) * grid_spacing_miles
        y = ((station_id - 1) // side) * grid_spacing_miles
        engine.execute_sql(
            "INSERT INTO stations VALUES (?, ?, ?, ?, ?, ?, ?)",
            station_id,
            f"Station-{station_id}",
            x,
            y,
            capacity,
            bikes_per_station,
            capacity - bikes_per_station,
        )
        for _ in range(bikes_per_station):
            bike_id += 1
            engine.execute_sql(
                "INSERT INTO bikes VALUES (?, 'docked', ?, NULL)",
                bike_id,
                station_id,
            )
    for rider_id in range(1, num_riders + 1):
        engine.execute_sql(
            "INSERT INTO riders VALUES (?, ?, NULL)",
            rider_id,
            f"Rider-{rider_id}",
        )
    engine.execute_sql("INSERT INTO city_stats VALUES (0, NULL, 0)")

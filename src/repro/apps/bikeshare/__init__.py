"""``repro.apps.bikeshare`` — the BikeShare application (paper §3.2).

Pure OLTP (checkout/return/discount acceptance), pure streaming (GPS
statistics, stolen-bike alerts) and hybrid (data-driven transactional
discounts) in a single S-Store engine.
"""

from repro.apps.bikeshare.display import (
    render_city_grid,
    render_ride_stats,
    render_station_map,
)
from repro.apps.bikeshare.procedures import (
    AcceptDiscount,
    Checkout,
    DetectAnomaly,
    ExpireDiscounts,
    GetRideStats,
    ReturnBike,
    TrackMovement,
    UpdateDiscounts,
)
from repro.apps.bikeshare.schema import (
    DISCOUNT_EXPIRY_TICKS,
    DISCOUNT_PCT,
    HIGH_WATER,
    LOW_WATER,
    STOLEN_SPEED_MPH,
)
from repro.apps.bikeshare.sstore_app import BikeShareApp
from repro.apps.bikeshare.workload import (
    ActiveTrip,
    BikeShareSimulation,
    SimulationReport,
)

__all__ = [
    "render_city_grid",
    "render_ride_stats",
    "render_station_map",
    "AcceptDiscount",
    "Checkout",
    "DetectAnomaly",
    "ExpireDiscounts",
    "GetRideStats",
    "ReturnBike",
    "TrackMovement",
    "UpdateDiscounts",
    "DISCOUNT_EXPIRY_TICKS",
    "DISCOUNT_PCT",
    "HIGH_WATER",
    "LOW_WATER",
    "STOLEN_SPEED_MPH",
    "BikeShareApp",
    "ActiveTrip",
    "BikeShareSimulation",
    "SimulationReport",
]

"""Deterministic BikeShare city simulation.

Drives a :class:`repro.apps.bikeshare.sstore_app.BikeShareApp` tick by tick
(1 tick = 1 second): riders check bikes out, ride straight-line paths at
realistic speeds while their GPS units report once per second, return the
bikes (redeeming discounts when they hold one), and the scenario knobs
reproduce the demo moments:

* **station drain** — trips are biased to *start* at one station, emptying
  it so the discount pipeline starts offering rebates there;
* **theft** — at a configured tick a "rider" tears off at 70 mph, tripping
  the stolen-bike detector.

The simulation also maintains an independent ground-truth model of each
ride (distance actually traveled), which tests compare against the
engine-computed ride statistics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from repro.apps.bikeshare.sstore_app import BikeShareApp

__all__ = ["ActiveTrip", "SimulationReport", "BikeShareSimulation"]


@dataclass
class ActiveTrip:
    """One rider currently on a bike."""

    rider_id: int
    bike_id: int
    dest_station: int
    x: float
    y: float
    dest_x: float
    dest_y: float
    speed_mph: float
    #: ground truth accumulated by the simulation itself
    true_distance: float = 0.0
    discount_id: int | None = None
    is_thief: bool = False

    def arrived(self) -> bool:
        return abs(self.x - self.dest_x) < 1e-9 and abs(self.y - self.dest_y) < 1e-9


@dataclass
class SimulationReport:
    """What happened during a simulation run."""

    ticks: int = 0
    checkouts: int = 0
    returns: int = 0
    failed_checkouts: int = 0
    failed_returns: int = 0
    gps_fixes: int = 0
    discounts_seen: int = 0
    discounts_accepted: int = 0
    discounts_redeemed: int = 0
    thefts_started: int = 0
    #: rider_id → list of simulated (ground-truth) ride distances
    true_distances: dict[int, list[float]] = field(default_factory=dict)


class BikeShareSimulation:
    """Seeded, deterministic event generator + driver."""

    def __init__(
        self,
        app: BikeShareApp,
        *,
        seed: int = 5,
        trip_speed_mph: float = 12.0,
        trip_start_probability: float = 0.25,
        drain_station: int | None = None,
        drain_bias: float = 0.6,
        theft_at_tick: int | None = None,
        expire_every: int = 60,
    ) -> None:
        self.app = app
        self.rng = random.Random(seed)
        self.trip_speed_mph = trip_speed_mph
        self.trip_start_probability = trip_start_probability
        self.drain_station = drain_station
        self.drain_bias = drain_bias
        self.theft_at_tick = theft_at_tick
        self.expire_every = expire_every
        self.report = SimulationReport()
        self._trips: list[ActiveTrip] = []
        self._station_xy: dict[int, tuple[float, float]] = {}
        for station_id, _name, _bikes, _docks in app.stations():
            row = app.engine.execute_sql(
                "SELECT x, y FROM stations WHERE station_id = ?", station_id
            ).first()
            self._station_xy[int(station_id)] = (float(row[0]), float(row[1]))
        self._free_riders = [
            int(rider_id)
            for (rider_id,) in app.engine.execute_sql(
                "SELECT rider_id FROM riders ORDER BY rider_id"
            ).rows
        ]

    # ------------------------------------------------------------------

    def run(self, ticks: int) -> SimulationReport:
        for _ in range(ticks):
            now = self.app.tick(1)
            self.report.ticks += 1
            if self.theft_at_tick is not None and now == self.theft_at_tick:
                self._start_theft(now)
            self._maybe_start_trip(now)
            self._advance_trips(now)
            if self.expire_every and now % self.expire_every == 0:
                self.app.expire_discounts(now)
        return self.report

    # ------------------------------------------------------------------

    def _pick_station(self, *, prefer_drain: bool) -> int:
        stations = sorted(self._station_xy)
        if (
            prefer_drain
            and self.drain_station is not None
            and self.rng.random() < self.drain_bias
        ):
            return self.drain_station
        return self.rng.choice(stations)

    def _maybe_start_trip(self, now: int) -> None:
        if not self._free_riders or self.rng.random() > self.trip_start_probability:
            return
        rider_id = self._free_riders.pop(0)
        start = self._pick_station(prefer_drain=True)
        dest = self.rng.choice(
            [station for station in self._station_xy if station != start]
        )
        result = self.app.checkout(rider_id, start, now)
        if not result.success:
            self.report.failed_checkouts += 1
            self._free_riders.append(rider_id)
            return
        self.report.checkouts += 1
        start_x, start_y = self._station_xy[start]
        dest_x, dest_y = self._station_xy[dest]
        trip = ActiveTrip(
            rider_id=rider_id,
            bike_id=self._bike_of(rider_id),
            dest_station=dest,
            x=start_x,
            y=start_y,
            dest_x=dest_x,
            dest_y=dest_y,
            speed_mph=self.trip_speed_mph,
        )
        self._trips.append(trip)
        self._maybe_accept_discount(trip, now)

    def _maybe_accept_discount(self, trip: ActiveTrip, now: int) -> None:
        offers = [
            (int(discount_id), int(station_id))
            for discount_id, station_id, _pct in self.app.open_discounts()
        ]
        self.report.discounts_seen += len(offers)
        for discount_id, station_id in offers:
            if station_id == trip.dest_station:
                result = self.app.accept_discount(trip.rider_id, discount_id, now)
                if result.success:
                    trip.discount_id = discount_id
                    self.report.discounts_accepted += 1
                return

    def _start_theft(self, now: int) -> None:
        """A thief 'rides' a docked bike away at highway speed."""
        if not self._free_riders:
            return
        thief = self._free_riders.pop(0)
        station = self._pick_station(prefer_drain=False)
        result = self.app.checkout(thief, station, now)
        if not result.success:
            self._free_riders.append(thief)
            return
        self.report.checkouts += 1
        self.report.thefts_started += 1
        x, y = self._station_xy[station]
        self._trips.append(
            ActiveTrip(
                rider_id=thief,
                bike_id=self._bike_of(thief),
                dest_station=-1,
                x=x,
                y=y,
                dest_x=x + 100.0,  # off the map, never arrives
                dest_y=y,
                speed_mph=70.0,
                is_thief=True,
            )
        )

    def _advance_trips(self, now: int) -> None:
        fixes: list[tuple[int, int, float, float]] = []
        finished: list[ActiveTrip] = []
        for trip in self._trips:
            step = trip.speed_mph / 3600.0  # miles per tick
            dx = trip.dest_x - trip.x
            dy = trip.dest_y - trip.y
            remaining = (dx**2 + dy**2) ** 0.5
            if remaining <= step:
                moved = remaining
                trip.x, trip.y = trip.dest_x, trip.dest_y
            else:
                moved = step
                trip.x += dx / remaining * step
                trip.y += dy / remaining * step
            trip.true_distance += moved
            fixes.append((trip.bike_id, now, round(trip.x, 9), round(trip.y, 9)))
            if trip.arrived() and not trip.is_thief:
                finished.append(trip)

        if fixes:
            self.app.report_gps(fixes)
            self.report.gps_fixes += len(fixes)

        for trip in finished:
            result = self.app.return_bike(trip.rider_id, trip.dest_station, now)
            if not result.success:
                self.report.failed_returns += 1
                # no dock free: ride on to another station next tick
                alternatives = [
                    station
                    for station in self._station_xy
                    if station != trip.dest_station
                ]
                trip.dest_station = self.rng.choice(alternatives)
                trip.dest_x, trip.dest_y = self._station_xy[trip.dest_station]
                continue
            self.report.returns += 1
            if trip.discount_id is not None:
                self.report.discounts_redeemed += 1
            self.report.true_distances.setdefault(trip.rider_id, []).append(
                trip.true_distance
            )
            self._trips.remove(trip)
            self._free_riders.append(trip.rider_id)

    def _bike_of(self, rider_id: int) -> int:
        bike_id = self.app.engine.execute_sql(
            "SELECT bike_id FROM bikes WHERE rider_id = ?", rider_id
        ).scalar()
        assert bike_id is not None, f"rider {rider_id} holds no bike"
        return int(bike_id)

    @property
    def active_trip_count(self) -> int:
        return len(self._trips)

"""Text rendering of the BikeShare GUIs (paper Figs. 4 and 5).

The demo's map GUIs showed per-station occupancy with nearby discounts
(Fig. 5) and a rider's live trip statistics (Fig. 4).  These renderers
produce the same information content as text.
"""

from __future__ import annotations

from typing import Any

from repro.apps.bikeshare.sstore_app import BikeShareApp

__all__ = ["render_station_map", "render_city_grid", "render_ride_stats"]


def render_city_grid(app: BikeShareApp, cell_miles: float = 1.0) -> str:
    """Fig-5 equivalent, spatial form: the city as a 2-D grid.

    Each station cell shows ``[bikes/capacity]``; ``$`` marks stations with
    open discount offers, ``*`` marks cells where bikes are currently riding
    (from their last GPS fix), and ``!`` marks stolen bikes.
    """
    stations = app.engine.execute_sql(
        "SELECT station_id, x, y, bikes_available, capacity FROM stations"
    ).rows
    discounted = {
        int(station_id)
        for _id, station_id, _pct in app.open_discounts()
    }
    moving = app.engine.execute_sql(
        "SELECT b.status, p.x, p.y FROM bikes b "
        "JOIN bike_positions p ON p.bike_id = b.bike_id "
        "WHERE b.status = 'riding' OR b.status = 'stolen'"
    ).rows

    def cell_of(x: float, y: float) -> tuple[int, int]:
        return round(x / cell_miles), round(y / cell_miles)

    grid: dict[tuple[int, int], str] = {}
    for station_id, x, y, bikes, capacity in stations:
        tag = "$" if int(station_id) in discounted else " "
        grid[cell_of(x, y)] = f"[{int(bikes)}/{int(capacity)}]{tag}"
    for status, x, y in moving:
        key = cell_of(x, y)
        if key not in grid:
            grid[key] = "  !   " if status == "stolen" else "  *   "

    if not grid:
        return "(empty city)"
    max_col = max(col for col, _row in grid)
    max_row = max(row for _col, row in grid)
    width = 7
    lines = []
    for row in range(max_row, -1, -1):  # north at the top
        cells = [
            grid.get((col, row), "·".center(width - 1)).ljust(width)
            for col in range(0, max_col + 1)
        ]
        lines.append("".join(cells).rstrip())
    lines.append("")
    lines.append("[bikes/capacity]  $=discounts offered  *=riding  !=stolen")
    return "\n".join(lines)


def render_station_map(app: BikeShareApp) -> str:
    """Fig-5 equivalent: stations, occupancy, discounts, live alerts."""
    lines = ["=== BikeShare City Monitor ===", ""]
    discounts_by_station: dict[int, int] = {}
    for _discount_id, station_id, _pct in app.open_discounts():
        discounts_by_station[int(station_id)] = (
            discounts_by_station.get(int(station_id), 0) + 1
        )
    for station_id, name, bikes, docks in app.stations():
        gauge = "#" * int(bikes) + "." * int(docks)
        tag = ""
        offers = discounts_by_station.get(int(station_id), 0)
        if offers:
            tag = f"  << {offers} discount offer(s)!"
        lines.append(f"{name:<12} [{gauge}] bikes={bikes} docks={docks}{tag}")

    alerts = app.alerts()
    lines.append("")
    if alerts:
        lines.append("ALERTS:")
        for _alert_id, bike_id, kind, ts, detail in alerts:
            lines.append(f"  t={ts}: bike {bike_id} {kind.upper()} — {detail}")
    else:
        lines.append("ALERTS: none")

    speed = app.city_speed()
    if speed is not None:
        lines.append(f"city avg speed (recent): {speed:.1f} mph")
    return "\n".join(lines)


def render_ride_stats(stats: dict[str, Any] | None, rider_id: int) -> str:
    """Fig-4 equivalent: one rider's live trip statistics."""
    if stats is None:
        return f"rider {rider_id}: no active ride"
    return (
        f"rider {rider_id} — ride #{stats['ride_id']}\n"
        f"  distance: {stats['distance_miles']:.2f} mi\n"
        f"  avg speed: {stats['avg_speed_mph']:.1f} mph   "
        f"max speed: {stats['max_speed_mph']:.1f} mph\n"
        f"  calories: {stats['calories']:.0f}   elapsed: {stats['elapsed_s']}s"
    )

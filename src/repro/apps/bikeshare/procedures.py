"""BikeShare stored procedures (paper §3.2).

Three workload classes, all inside one S-Store engine:

**Pure OLTP** — :class:`Checkout`, :class:`ReturnBike`,
:class:`AcceptDiscount`, :class:`ExpireDiscounts`: classic request/response
transactions issued through ``call_procedure``.  Checkout/return also *emit*
into the ``station_events`` stream, which is what makes the hybrid discount
pipeline data-driven.

**Pure streaming** — :class:`TrackMovement` (BSP over ``gps_in``) derives
per-report speed/distance from consecutive GPS fixes and updates the live
ride statistics; :class:`DetectAnomaly` (ISP over ``movements``) raises
stolen-bike alerts for >60 mph reports and maintains the city-wide recent
average speed from its EE-maintained window.

**Hybrid** — :class:`UpdateDiscounts` (BSP over ``station_events``)
recomputes discount offers whenever station occupancy changes; acceptance
is transactional so an offer can never be granted to two riders.
"""

from __future__ import annotations

from typing import Any

from repro.apps.bikeshare.schema import (
    BASE_FARE,
    CALORIES_PER_MILE,
    DISCOUNT_EXPIRY_TICKS,
    DISCOUNT_PCT,
    HIGH_WATER,
    LOW_WATER,
    MAX_OFFERS_PER_STATION,
    PER_MINUTE_RATE,
    STOLEN_SPEED_MPH,
)
from repro.core.engine import StreamContext, StreamProcedure
from repro.hstore.procedure import StoredProcedure

__all__ = [
    "Checkout",
    "ReturnBike",
    "AcceptDiscount",
    "ExpireDiscounts",
    "TrackMovement",
    "DetectAnomaly",
    "UpdateDiscounts",
    "GetRideStats",
]


class Checkout(StoredProcedure):
    """OLTP: rent a docked bike from a station."""

    name = "checkout"
    statements = {
        "rider": "SELECT active_ride FROM riders WHERE rider_id = ?",
        "station": (
            "SELECT bikes_available, docks_available FROM stations "
            "WHERE station_id = ?"
        ),
        "pick_bike": (
            "SELECT bike_id FROM bikes WHERE station_id = ? AND "
            "status = 'docked' ORDER BY bike_id ASC LIMIT 1"
        ),
        "take_bike": (
            "UPDATE bikes SET status = 'riding', station_id = NULL, "
            "rider_id = ? WHERE bike_id = ?"
        ),
        "update_station": (
            "UPDATE stations SET bikes_available = bikes_available - 1, "
            "docks_available = docks_available + 1 WHERE station_id = ?"
        ),
        "next_ride_id": "SELECT COUNT(*) FROM rides",
        "open_ride": (
            "INSERT INTO rides VALUES (?, ?, ?, ?, NULL, ?, NULL, NULL, "
            "0.0, 0.0, 0.0)"
        ),
        "mark_rider": "UPDATE riders SET active_ride = ? WHERE rider_id = ?",
        "station_pos": "SELECT x, y FROM stations WHERE station_id = ?",
        "seed_position": "SELECT bike_id FROM bike_positions WHERE bike_id = ?",
        "insert_position": "INSERT INTO bike_positions VALUES (?, ?, ?, ?)",
        "move_position": (
            "UPDATE bike_positions SET ts = ?, x = ?, y = ? WHERE bike_id = ?"
        ),
        "read_avail": (
            "SELECT bikes_available FROM stations WHERE station_id = ?"
        ),
    }

    def run(self, ctx, rider_id: int, station_id: int, ts: int) -> int:
        rider = ctx.execute("rider", rider_id).first()
        if rider is None:
            ctx.abort(f"unknown rider {rider_id}")
        if rider[0] is not None:
            ctx.abort(f"rider {rider_id} already has an active ride")
        station = ctx.execute("station", station_id).first()
        if station is None:
            ctx.abort(f"unknown station {station_id}")
        if station[0] <= 0:
            ctx.abort(f"station {station_id} has no bikes available")

        bike_id = ctx.execute("pick_bike", station_id).scalar()
        if bike_id is None:  # defensive: counters vs. rows out of sync
            ctx.abort(f"station {station_id} advertises bikes but has none docked")
        ride_id = ctx.execute("next_ride_id").scalar()
        ctx.execute("take_bike", rider_id, bike_id)
        ctx.execute("update_station", station_id)
        ctx.execute("open_ride", ride_id, rider_id, bike_id, station_id, ts)
        ctx.execute("mark_rider", ride_id, rider_id)

        # seed the GPS track at the station's location so the first report
        # measures a sane distance
        pos = ctx.execute("station_pos", station_id).first()
        if ctx.execute("seed_position", bike_id):
            ctx.execute("move_position", ts, pos[0], pos[1], bike_id)
        else:
            ctx.execute("insert_position", bike_id, ts, pos[0], pos[1])

        available = ctx.execute("read_avail", station_id).scalar()
        ctx.emit("station_events", [(station_id, ts, available)])
        return ride_id


class ReturnBike(StoredProcedure):
    """OLTP: return the rider's bike, bill the ride, redeem any discount."""

    name = "return_bike"
    statements = {
        "rider": "SELECT active_ride FROM riders WHERE rider_id = ?",
        "ride": (
            "SELECT bike_id, start_ts, distance, max_speed, calories "
            "FROM rides WHERE ride_id = ?"
        ),
        "station": "SELECT docks_available FROM stations WHERE station_id = ?",
        "bike_status": "SELECT status FROM bikes WHERE bike_id = ?",
        "find_discount": (
            "SELECT discount_id, pct FROM discounts WHERE rider_id = ? AND "
            "station_id = ? AND state = 'accepted' AND expires_ts >= ? "
            "ORDER BY discount_id ASC LIMIT 1"
        ),
        "redeem_discount": (
            "UPDATE discounts SET state = 'redeemed' WHERE discount_id = ?"
        ),
        "dock_bike": (
            "UPDATE bikes SET status = 'docked', station_id = ?, "
            "rider_id = NULL WHERE bike_id = ?"
        ),
        "update_station": (
            "UPDATE stations SET bikes_available = bikes_available + 1, "
            "docks_available = docks_available - 1 WHERE station_id = ?"
        ),
        "close_ride": (
            "UPDATE rides SET end_station = ?, end_ts = ?, cost = ? "
            "WHERE ride_id = ?"
        ),
        "clear_rider": "UPDATE riders SET active_ride = NULL WHERE rider_id = ?",
        "next_charge_id": "SELECT COUNT(*) FROM billing",
        "charge": "INSERT INTO billing VALUES (?, ?, ?, ?)",
        "read_avail": (
            "SELECT bikes_available FROM stations WHERE station_id = ?"
        ),
    }

    def run(self, ctx, rider_id: int, station_id: int, ts: int) -> float:
        ride_id = ctx.execute("rider", rider_id).scalar()
        if ride_id is None:
            ctx.abort(f"rider {rider_id} has no active ride")
        ride = ctx.execute("ride", ride_id).first()
        bike_id, start_ts, _distance, _max_speed, _calories = ride
        docks = ctx.execute("station", station_id).scalar()
        if docks is None:
            ctx.abort(f"unknown station {station_id}")
        if docks <= 0:
            ctx.abort(f"station {station_id} has no free docks")
        status = ctx.execute("bike_status", bike_id).scalar()
        if status != "riding":
            ctx.abort(f"bike {bike_id} is not being ridden (status={status!r})")

        minutes = max(0, ts - start_ts) / 60.0
        cost = BASE_FARE + PER_MINUTE_RATE * minutes
        discount = ctx.execute("find_discount", rider_id, station_id, ts).first()
        if discount is not None:
            discount_id, pct = discount
            cost = cost * (1.0 - pct / 100.0)
            ctx.execute("redeem_discount", discount_id)

        cost = round(cost, 4)
        ctx.execute("dock_bike", station_id, bike_id)
        ctx.execute("update_station", station_id)
        ctx.execute("close_ride", station_id, ts, cost, ride_id)
        ctx.execute("clear_rider", rider_id)
        charge_id = ctx.execute("next_charge_id").scalar()
        ctx.execute("charge", charge_id, rider_id, ride_id, cost)

        available = ctx.execute("read_avail", station_id).scalar()
        ctx.emit("station_events", [(station_id, ts, available)])
        return cost


class AcceptDiscount(StoredProcedure):
    """OLTP: a rider claims an open discount offer for a station.

    The transactional core of the hybrid scenario: the offer row flips from
    ``offered`` to ``accepted`` atomically, so two riders can never hold the
    same offer ("removing it from the list of available discounts").
    """

    name = "accept_discount"
    statements = {
        "offer": (
            "SELECT state FROM discounts WHERE discount_id = ?"
        ),
        "claim": (
            "UPDATE discounts SET rider_id = ?, state = 'accepted', "
            "expires_ts = ? WHERE discount_id = ? AND state = 'offered'"
        ),
    }

    def run(self, ctx, rider_id: int, discount_id: int, ts: int) -> int:
        state = ctx.execute("offer", discount_id).scalar()
        if state is None:
            ctx.abort(f"unknown discount {discount_id}")
        if state != "offered":
            ctx.abort(f"discount {discount_id} is {state!r}, not open")
        claimed = ctx.execute(
            "claim", rider_id, ts + DISCOUNT_EXPIRY_TICKS, discount_id
        )
        if claimed != 1:
            ctx.abort(f"discount {discount_id} vanished")  # pragma: no cover
        return ts + DISCOUNT_EXPIRY_TICKS


class ExpireDiscounts(StoredProcedure):
    """OLTP (periodic): re-open accepted offers whose 15 minutes ran out."""

    name = "expire_discounts"
    statements = {
        "overdue": (
            "SELECT discount_id FROM discounts WHERE state = 'accepted' "
            "AND expires_ts < ?"
        ),
        "reopen": (
            "UPDATE discounts SET rider_id = NULL, state = 'offered', "
            "expires_ts = NULL WHERE discount_id = ?"
        ),
    }

    def run(self, ctx, ts: int) -> int:
        overdue = ctx.execute("overdue", ts).column("discount_id")
        for discount_id in overdue:
            ctx.execute("reopen", discount_id)
        return len(overdue)


class GetRideStats(StoredProcedure):
    """OLTP (read-only): the rider-facing live ride statistics (Fig. 4)."""

    name = "get_ride_stats"
    read_only = True
    statements = {
        "ride": (
            "SELECT ride_id, start_ts, distance, max_speed, calories "
            "FROM rides WHERE rider_id = ? AND end_ts IS NULL"
        ),
    }

    def run(self, ctx, rider_id: int, ts: int) -> dict[str, Any] | None:
        ride = ctx.execute("ride", rider_id).first()
        if ride is None:
            return None
        ride_id, start_ts, distance, max_speed, calories = ride
        elapsed = max(1, ts - start_ts)
        return {
            "ride_id": ride_id,
            "distance_miles": round(distance, 4),
            "avg_speed_mph": round(distance / (elapsed / 3600.0), 2),
            "max_speed_mph": round(max_speed, 2),
            "calories": round(calories, 1),
            "elapsed_s": elapsed,
        }


class TrackMovement(StreamProcedure):
    """Streaming BSP: turn raw GPS fixes into speed/distance movements."""

    name = "track_movement"
    statements = {
        "last_pos": "SELECT ts, x, y FROM bike_positions WHERE bike_id = ?",
        "insert_pos": "INSERT INTO bike_positions VALUES (?, ?, ?, ?)",
        "move_pos": (
            "UPDATE bike_positions SET ts = ?, x = ?, y = ? WHERE bike_id = ?"
        ),
        "active_ride": (
            "SELECT ride_id, distance, max_speed FROM rides "
            "WHERE bike_id = ? AND end_ts IS NULL"
        ),
        "update_ride": (
            "UPDATE rides SET distance = ?, max_speed = ?, calories = ? "
            "WHERE ride_id = ?"
        ),
    }

    def run(self, ctx: StreamContext) -> None:
        movements: list[tuple[Any, ...]] = []
        for bike_id, ts, x, y in ctx.batch:
            last = ctx.execute("last_pos", bike_id).first()
            if last is None:
                ctx.execute("insert_pos", bike_id, ts, x, y)
                continue
            last_ts, last_x, last_y = last
            dt = ts - last_ts
            ctx.execute("move_pos", ts, x, y, bike_id)
            if dt <= 0:
                continue
            dist = ((x - last_x) ** 2 + (y - last_y) ** 2) ** 0.5
            speed = dist / (dt / 3600.0)
            ride = ctx.execute("active_ride", bike_id).first()
            if ride is not None:
                ride_id, distance, max_speed = ride
                new_distance = distance + dist
                new_max = max(max_speed, speed)
                ctx.execute(
                    "update_ride",
                    new_distance,
                    new_max,
                    new_distance * CALORIES_PER_MILE,
                    ride_id,
                )
            movements.append((bike_id, ts, round(speed, 4), round(dist, 6)))
        if movements:
            ctx.emit("movements", movements)


class DetectAnomaly(StreamProcedure):
    """Streaming ISP: stolen-bike alerts + live city speed statistic.

    The recent-average-speed statistic reads the ``recent_movements`` window
    — maintained natively by the EE as movements flow in, scoped to this
    procedure.
    """

    name = "detect_anomaly"
    statements = {
        "bike": "SELECT status FROM bikes WHERE bike_id = ?",
        "mark_stolen": (
            "UPDATE bikes SET status = 'stolen' WHERE bike_id = ?"
        ),
        "next_alert_id": "SELECT COUNT(*) FROM alerts",
        "raise_alert": "INSERT INTO alerts VALUES (?, ?, ?, ?, ?)",
        "window_avg": "SELECT AVG(speed_mph) FROM recent_movements",
        "update_stats": (
            "UPDATE city_stats SET avg_recent_speed = ?, "
            "reports_seen = reports_seen + ? WHERE stat_id = 0"
        ),
    }

    def run(self, ctx: StreamContext) -> None:
        for bike_id, ts, speed, _dist in ctx.batch:
            if speed >= STOLEN_SPEED_MPH:
                status = ctx.execute("bike", bike_id).scalar()
                if status != "stolen":
                    alert_id = ctx.execute("next_alert_id").scalar()
                    ctx.execute(
                        "raise_alert",
                        alert_id,
                        bike_id,
                        "stolen",
                        ts,
                        f"speed {speed:.1f} mph >= {STOLEN_SPEED_MPH:.0f}",
                    )
                    ctx.execute("mark_stolen", bike_id)
        avg_speed = ctx.execute("window_avg").scalar()
        ctx.execute("update_stats", avg_speed, len(ctx.batch))


class UpdateDiscounts(StreamProcedure):
    """Hybrid BSP: recompute discount offers from station occupancy events.

    Runs as a workflow TE triggered by the ``station_events`` emissions of
    checkout/return transactions — "continuously changing the status of the
    stations as checkouts or returns take place".
    """

    name = "update_discounts"
    statements = {
        "open_offers": (
            "SELECT COUNT(*) FROM discounts WHERE station_id = ? AND "
            "state = 'offered'"
        ),
        "next_discount_id": "SELECT MAX(discount_id) FROM discounts",
        "offer": "INSERT INTO discounts VALUES (?, ?, NULL, 'offered', ?, ?, NULL)",
        "withdraw": (
            "DELETE FROM discounts WHERE station_id = ? AND state = 'offered'"
        ),
    }

    def run(self, ctx: StreamContext) -> None:
        for station_id, ts, bikes_available in ctx.batch:
            open_offers = ctx.execute("open_offers", station_id).scalar()
            if bikes_available < LOW_WATER:
                for _ in range(MAX_OFFERS_PER_STATION - open_offers):
                    highest = ctx.execute("next_discount_id").scalar()
                    discount_id = 0 if highest is None else highest + 1
                    ctx.execute(
                        "offer", discount_id, station_id, DISCOUNT_PCT, ts
                    )
            elif bikes_available >= HIGH_WATER and open_offers:
                ctx.execute("withdraw", station_id)

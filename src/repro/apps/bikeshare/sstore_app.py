"""The BikeShare deployment: one S-Store engine, three workload classes.

Two workflows run next to the OLTP traffic:

``gps_pipeline``
    ``gps_in`` → :class:`TrackMovement` → ``movements`` →
    :class:`DetectAnomaly`.  GPS units push fixes with ``ingest``; ride
    statistics, the city speed window and stolen-bike alerts all update
    engine-side.

``discount_pipeline``
    ``station_events`` → :class:`UpdateDiscounts`.  The border stream is fed
    not by clients but by the checkout/return OLTP transactions' ``emit`` —
    the paper's "combination of the two" workload class.
"""

from __future__ import annotations

from typing import Any

from repro.apps.bikeshare import schema
from repro.apps.bikeshare.procedures import (
    AcceptDiscount,
    Checkout,
    DetectAnomaly,
    ExpireDiscounts,
    GetRideStats,
    ReturnBike,
    TrackMovement,
    UpdateDiscounts,
)
from repro.core.engine import SStoreEngine
from repro.core.workflow import WorkflowSpec
from repro.hstore.procedure import ProcedureResult

__all__ = ["BikeShareApp"]


class BikeShareApp:
    """Deploys the full BikeShare system and offers a typed facade."""

    def __init__(
        self,
        engine: SStoreEngine | None = None,
        *,
        num_stations: int = 9,
        capacity: int = 8,
        bikes_per_station: int = 5,
        num_riders: int = 40,
        gps_batch_size: int = 4,
        snapshot_interval: int | None = None,
    ) -> None:
        self.engine = engine or SStoreEngine(snapshot_interval=snapshot_interval)
        schema.install_tables(self.engine)
        schema.install_streams(self.engine)
        for procedure in (
            Checkout,
            ReturnBike,
            AcceptDiscount,
            ExpireDiscounts,
            GetRideStats,
            TrackMovement,
            DetectAnomaly,
            UpdateDiscounts,
        ):
            self.engine.register_procedure(procedure)

        gps_pipeline = WorkflowSpec("gps_pipeline")
        gps_pipeline.add_node(
            "track_movement",
            input_stream="gps_in",
            batch_size=gps_batch_size,
            output_streams=("movements",),
        )
        gps_pipeline.add_node("detect_anomaly", input_stream="movements")
        self.gps_pipeline = self.engine.deploy_workflow(gps_pipeline)

        discount_pipeline = WorkflowSpec("discount_pipeline")
        discount_pipeline.add_node(
            "update_discounts", input_stream="station_events", batch_size=1
        )
        self.discount_pipeline = self.engine.deploy_workflow(discount_pipeline)

        schema.seed_city(
            self.engine,
            num_stations=num_stations,
            capacity=capacity,
            bikes_per_station=bikes_per_station,
            num_riders=num_riders,
        )

    # -- OLTP facade --------------------------------------------------------------

    def checkout(self, rider_id: int, station_id: int, ts: int) -> ProcedureResult:
        return self.engine.call_procedure("checkout", rider_id, station_id, ts)

    def return_bike(self, rider_id: int, station_id: int, ts: int) -> ProcedureResult:
        return self.engine.call_procedure("return_bike", rider_id, station_id, ts)

    def accept_discount(
        self, rider_id: int, discount_id: int, ts: int
    ) -> ProcedureResult:
        return self.engine.call_procedure(
            "accept_discount", rider_id, discount_id, ts
        )

    def expire_discounts(self, ts: int) -> ProcedureResult:
        return self.engine.call_procedure("expire_discounts", ts)

    def ride_stats(self, rider_id: int, ts: int) -> dict[str, Any] | None:
        return self.engine.call_procedure("get_ride_stats", rider_id, ts).data

    # -- streaming facade -----------------------------------------------------------

    def report_gps(self, fixes: list[tuple[int, int, float, float]]) -> int:
        """Push GPS fixes ``(bike_id, ts, x, y)`` — one client round trip."""
        return self.engine.ingest("gps_in", fixes)

    def tick(self, ticks: int = 1) -> int:
        """Advance simulated time (1 tick = 1 second)."""
        return self.engine.advance_time(ticks)

    # -- observation ------------------------------------------------------------------

    def stations(self) -> list[tuple[Any, ...]]:
        return self.engine.execute_sql(
            "SELECT station_id, station_name, bikes_available, docks_available "
            "FROM stations ORDER BY station_id"
        ).rows

    def open_discounts(self) -> list[tuple[Any, ...]]:
        return self.engine.execute_sql(
            "SELECT discount_id, station_id, pct FROM discounts "
            "WHERE state = 'offered' ORDER BY discount_id"
        ).rows

    def alerts(self) -> list[tuple[Any, ...]]:
        return self.engine.execute_sql(
            "SELECT alert_id, bike_id, kind, ts, detail FROM alerts "
            "ORDER BY alert_id"
        ).rows

    def city_speed(self) -> float | None:
        return self.engine.execute_sql(
            "SELECT avg_recent_speed FROM city_stats WHERE stat_id = 0"
        ).scalar()

    def billing_total(self) -> float:
        total = self.engine.execute_sql(
            "SELECT SUM(amount) FROM billing"
        ).scalar()
        return float(total) if total is not None else 0.0

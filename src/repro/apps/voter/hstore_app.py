"""The naive H-Store deployment of Voter with Leaderboard.

Plain H-Store has no streams, windows or workflows, so the application must
bridge the gaps itself — exactly the implementation the paper holds up as
error-prone and slow:

* **client-driven chaining**: after SP1 accepts a vote, the *client* calls
  SP2; after SP2 reports a threshold crossing, the *client* calls SP3.
  Every hop is an extra client↔PE round trip (experiment E4).
* **manual windowing**: the 100-vote trending window is a regular table the
  SP2 variant maintains with explicit INSERT / COUNT / MIN / DELETE
  statements — extra PE↔EE round trips per vote (experiment E5).
* **no ordering guarantees**: with several clients submitting concurrently,
  the engine executes whatever arrives next.  SP2/SP3 calls interleave with
  other clients' SP1 calls, reproducing the paper's anomalies: votes counted
  after the threshold but before the removal (wrong candidate eliminated),
  and rapid-fire votes from one phone applied out of arrival order
  (experiments E1/E2/E9).

The interleaving is modeled deterministically: each client owns a FIFO of
pending steps, and a seeded scheduler picks which client acts next.  Seed 0
("fair round-robin") behaves like a single client; other seeds produce the
adversarial-but-realistic interleavings a real multi-client deployment
exhibits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.apps.voter import schema
from repro.apps.voter.observe import ElectionSummary, election_summary, leaderboards
from repro.apps.voter.procedures import RemoveLowest, ValidateVote
from repro.apps.voter.schema import ELIMINATION_EVERY, TRENDING_WINDOW
from repro.apps.voter.workload import VoteRequest
from repro.core.transaction import TERecord
from repro.hstore.engine import HStoreEngine
from repro.hstore.procedure import StoredProcedure

__all__ = ["HStoreUpdateLeaderboard", "VoterHStoreApp"]


class HStoreUpdateLeaderboard(StoredProcedure):
    """SP2 without native windows: manual trending-window maintenance.

    Each accepted vote costs, besides the two counter updates, an INSERT
    into the ``trending_votes`` table, a COUNT to detect overflow, and —
    once the window is full — a MIN + DELETE to evict the oldest tuple,
    plus the trending-board recomputation.  All of these are separate
    PE↔EE round trips that S-Store's EE-maintained window never issues.
    """

    name = "update_leaderboard"
    statements = {
        "bump_candidate": (
            "UPDATE contestant_votes SET num_votes = num_votes + 1 "
            "WHERE contestant_number = ?"
        ),
        "bump_total": (
            "UPDATE election_stats SET total_votes = total_votes + 1 "
            "WHERE stat_id = 0"
        ),
        "read_total": "SELECT total_votes FROM election_stats WHERE stat_id = 0",
        "push_trending": "INSERT INTO trending_votes VALUES (?, ?)",
        "count_trending": "SELECT COUNT(*) FROM trending_votes",
        "oldest_trending": "SELECT MIN(seq) FROM trending_votes",
        "evict_trending": "DELETE FROM trending_votes WHERE seq = ?",
        "trending_counts": (
            "SELECT t.contestant_number, COUNT(*) AS recent "
            "FROM trending_votes t JOIN contestants c "
            "ON c.contestant_number = t.contestant_number "
            "GROUP BY t.contestant_number "
            "ORDER BY recent DESC, t.contestant_number ASC LIMIT 3"
        ),
        "clear_board": "DELETE FROM trending_board",
        "post_board": "INSERT INTO trending_board VALUES (?, ?, ?)",
    }

    def run(self, ctx, phone_number: str, contestant_number: int, created_ts: int) -> int:
        ctx.execute("bump_candidate", contestant_number)
        ctx.execute("bump_total")
        total = ctx.execute("read_total").scalar()
        # manual 100-tuple sliding window over a plain table
        ctx.execute("push_trending", total, contestant_number)
        if ctx.execute("count_trending").scalar() > TRENDING_WINDOW:
            oldest = ctx.execute("oldest_trending").scalar()
            ctx.execute("evict_trending", oldest)
        trending = ctx.execute("trending_counts").rows
        ctx.execute("clear_board")
        for rank, (number, recent) in enumerate(trending, start=1):
            ctx.execute("post_board", rank, number, recent)
        return total


class HStoreSubmitVote(StoredProcedure):
    """SP1 for the *polling* deployment: validate, record, and stage.

    Instead of the client chaining SP2 itself, accepted votes land in a
    ``pending_votes`` staging table that a poller client drains later — the
    classic pull-based pattern the paper says S-Store's push semantics
    eliminate.
    """

    name = "submit_vote"
    statements = {
        "contestant_exists": (
            "SELECT contestant_number FROM contestants WHERE contestant_number = ?"
        ),
        "already_voted": "SELECT phone_number FROM votes WHERE phone_number = ?",
        "record_vote": "INSERT INTO votes VALUES (?, ?, ?)",
        "count_rejection": (
            "UPDATE election_stats SET rejected_votes = rejected_votes + 1 "
            "WHERE stat_id = 0"
        ),
        "stage": "INSERT INTO pending_votes VALUES (?, ?, ?)",
    }

    def run(self, ctx, phone_number, contestant_number, created_ts):
        if not ctx.execute("contestant_exists", contestant_number):
            ctx.execute("count_rejection")
            return False
        if ctx.execute("already_voted", phone_number):
            ctx.execute("count_rejection")
            return False
        ctx.execute("record_vote", phone_number, contestant_number, created_ts)
        ctx.execute("stage", phone_number, contestant_number, created_ts)
        return True


class HStorePollVotes(StoredProcedure):
    """The poller's workhorse: drain staged votes and run the SP2 logic.

    Returns ``(processed, thresholds_crossed)`` so the polling client can
    issue the SP3 calls — still client-driven, still round trips.
    """

    name = "poll_votes"
    statements = {
        "drain": (
            "SELECT phone_number, contestant_number, created_ts "
            "FROM pending_votes ORDER BY created_ts ASC LIMIT 1000"
        ),
        "unstage": "DELETE FROM pending_votes WHERE phone_number = ?",
        "bump_candidate": (
            "UPDATE contestant_votes SET num_votes = num_votes + 1 "
            "WHERE contestant_number = ?"
        ),
        "bump_total": (
            "UPDATE election_stats SET total_votes = total_votes + 1 "
            "WHERE stat_id = 0"
        ),
        "read_total": "SELECT total_votes FROM election_stats WHERE stat_id = 0",
    }

    def run(self, ctx):
        staged = ctx.execute("drain").rows
        thresholds = []
        for phone_number, contestant_number, _created_ts in staged:
            ctx.execute("bump_candidate", contestant_number)
            ctx.execute("bump_total")
            total = ctx.execute("read_total").scalar()
            if total % ELIMINATION_EVERY == 0:
                thresholds.append(total)
            ctx.execute("unstage", phone_number)
        return len(staged), thresholds


@dataclass
class _ClientState:
    """One simulated client: a FIFO of its remaining protocol steps."""

    client_id: int
    #: pending requests, each expanded lazily into SP1/SP2/SP3 steps
    requests: list[VoteRequest] = field(default_factory=list)
    #: steps already owed for the in-flight request: (procedure, params,
    #: origin vote arrival index)
    followups: list[tuple[str, tuple[Any, ...], int]] = field(default_factory=list)

    @property
    def has_work(self) -> bool:
        return bool(self.requests) or bool(self.followups)


class VoterHStoreApp:
    """Deploys and drives the voter workload on a plain H-Store engine."""

    def __init__(
        self,
        engine: HStoreEngine | None = None,
        *,
        num_contestants: int = schema.NUM_CONTESTANTS,
    ) -> None:
        self.engine = engine or HStoreEngine()
        schema.install_tables(self.engine)
        self.engine.execute_ddl(
            "CREATE TABLE trending_votes ("
            "seq INTEGER NOT NULL, contestant_number INTEGER NOT NULL, "
            "PRIMARY KEY (seq))"
        )
        self.engine.register_procedure(ValidateVote)
        self.engine.register_procedure(HStoreUpdateLeaderboard)
        self.engine.register_procedure(RemoveLowest)
        schema.seed_contestants(self.engine, num_contestants)
        #: commit-order history, comparable with the S-Store schedule (E9)
        self.te_history: list[TERecord] = []
        self._history_seq = 0
        #: arrival-order bookkeeping for E2 measurements
        self.accepted_order: list[VoteRequest] = []

    # ------------------------------------------------------------------
    # Single-client (correct but round-trip heavy) driving
    # ------------------------------------------------------------------

    def run_sequential(self, requests: list[VoteRequest]) -> None:
        """One client, strict chaining: SP1 → SP2 → (SP3).  Correct results,
        but 2–3 client↔PE round trips per accepted vote."""
        for request in requests:
            accepted = self.engine.call_procedure(
                "validate_vote", *request.as_row()
            )
            self._record("validate_vote", 0, request.created_ts)
            if not accepted.data:
                continue
            self.accepted_order.append(request)
            total_result = self.engine.call_procedure(
                "update_leaderboard", *request.as_row()
            )
            self._record("update_leaderboard", 1, request.created_ts)
            total = total_result.data
            if total % ELIMINATION_EVERY == 0:
                self.engine.call_procedure("remove_lowest")
                self._record("remove_lowest", 2, request.created_ts)

    # ------------------------------------------------------------------
    # Polling driving (the pull-based pattern push semantics eliminate)
    # ------------------------------------------------------------------

    def enable_polling_mode(self) -> None:
        """Install the staging table + polling procedures (once)."""
        if "submit_vote" in self.engine.procedures:
            return
        self.engine.execute_ddl(
            "CREATE TABLE pending_votes ("
            "phone_number VARCHAR(16) NOT NULL, "
            "contestant_number INTEGER NOT NULL, "
            "created_ts TIMESTAMP NOT NULL, "
            "PRIMARY KEY (phone_number))"
        )
        self.engine.register_procedure(HStoreSubmitVote)
        self.engine.register_procedure(HStorePollVotes)
        self.polls_made = 0
        self.empty_polls = 0
        self.max_backlog = 0

    def run_polling(
        self,
        requests: list[VoteRequest],
        *,
        poll_every: int = 10,
    ) -> None:
        """One submitter client + one poller client.

        The poller calls ``poll_votes`` every ``poll_every`` submissions —
        and keeps polling on a quiet system, paying a full client↔PE round
        trip for every *empty* poll.  ``max_backlog`` records how stale the
        leaderboards got between polls.
        """
        self.enable_polling_mode()
        for index, request in enumerate(requests):
            self.engine.call_procedure("submit_vote", *request.as_row())
            # backlog observed engine-side (not a client round trip)
            backlog = self.engine.partitions[0].ee.table(
                "pending_votes"
            ).row_count()
            self.max_backlog = max(self.max_backlog, backlog)
            if (index + 1) % poll_every == 0:
                self._poll_once()
        # drain whatever is left, plus one confirming empty poll
        while self._poll_once():
            pass

    def _poll_once(self) -> int:
        result = self.engine.call_procedure("poll_votes")
        self.polls_made += 1
        processed, thresholds = result.data
        if processed == 0:
            self.empty_polls += 1
        for _threshold in thresholds:
            self.engine.call_procedure("remove_lowest")
        return processed

    # ------------------------------------------------------------------
    # Multi-client interleaved driving (the anomaly demo)
    # ------------------------------------------------------------------

    def run_interleaved(
        self,
        requests: list[VoteRequest],
        *,
        clients: int = 8,
        seed: int = 1,
    ) -> None:
        """Several clients submit concurrently; the engine executes calls in
        whatever order they arrive.  H-Store gives no workflow-order or
        arrival-order guarantee across clients — the paper's anomalies.
        """
        if clients < 1:
            raise ValueError("need at least one client")
        rng = random.Random(seed)
        pool = [_ClientState(client_id=i) for i in range(clients)]
        for index, request in enumerate(requests):
            pool[index % clients].requests.append(request)

        busy = [client for client in pool if client.has_work]
        while busy:
            client = rng.choice(busy)
            self._step(client)
            busy = [c for c in pool if c.has_work]

    def _step(self, client: _ClientState) -> None:
        """Execute one protocol step of one client."""
        if client.followups:
            procedure, params, origin = client.followups.pop(0)
            if procedure == "update_leaderboard":
                result = self.engine.call_procedure(procedure, *params)
                self._record(procedure, 1, origin)
                if result.data % ELIMINATION_EVERY == 0:
                    client.followups.append(("remove_lowest", (), origin))
            else:  # remove_lowest
                self.engine.call_procedure(procedure)
                self._record(procedure, 2, origin)
            return

        request = client.requests.pop(0)
        accepted = self.engine.call_procedure("validate_vote", *request.as_row())
        self._record("validate_vote", 0, request.created_ts)
        if accepted.data:
            self.accepted_order.append(request)
            client.followups.append(
                ("update_leaderboard", request.as_row(), request.created_ts)
            )

    def _record(self, procedure: str, depth: int, origin: int) -> None:
        """Append to the commit history.

        H-Store has no batch notion, so the vote request's arrival index
        (its ``created_ts``) stands in as the origin batch id — the same
        identifier an S-Store batch-of-one deployment would assign — making
        the two histories directly comparable by the schedule validator.
        """
        self.te_history.append(
            TERecord(
                seq=self._history_seq,
                procedure=procedure,
                origin_batch_id=origin,
                depth=depth,
                workflow="voter_leaderboard",
            )
        )
        self._history_seq += 1

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def summary(self) -> ElectionSummary:
        return election_summary(self.engine)

    def leaderboards(self) -> dict[str, list[tuple[Any, ...]]]:
        return leaderboards(self.engine)

    def vote_rows(self) -> list[tuple[Any, ...]]:
        return self.engine.execute_sql(
            "SELECT phone_number, contestant_number FROM votes "
            "ORDER BY phone_number"
        ).rows

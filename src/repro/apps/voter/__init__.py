"""``repro.apps.voter`` — Voter with Leaderboard (paper §3.1).

The *Canadian Dreamboat* game show: votes stream in, leaderboards update in
real time, and every 100 valid votes the lowest-scoring candidate is
eliminated (their votes returned to the voters).  Deployed two ways:

* :class:`VoterSStoreApp` — push-based S-Store workflow; correct and fast.
* :class:`VoterHStoreApp` — naive H-Store with client-driven chaining and
  manual windowing; slower, and anomalous under concurrent clients.
"""

from repro.apps.voter.hstore_app import HStoreUpdateLeaderboard, VoterHStoreApp
from repro.apps.voter.observe import ElectionSummary, election_summary, leaderboards
from repro.apps.voter.procedures import RemoveLowest, UpdateLeaderboard, ValidateVote
from repro.apps.voter.schema import (
    ELIMINATION_EVERY,
    NUM_CONTESTANTS,
    TRENDING_WINDOW,
)
from repro.apps.voter.sstore_app import VoterSStoreApp
from repro.apps.voter.workload import VoteRequest, VoterWorkload
from repro.apps.voter.display import render_leaderboard

__all__ = [
    "HStoreUpdateLeaderboard",
    "VoterHStoreApp",
    "ElectionSummary",
    "election_summary",
    "leaderboards",
    "RemoveLowest",
    "UpdateLeaderboard",
    "ValidateVote",
    "ELIMINATION_EVERY",
    "NUM_CONTESTANTS",
    "TRENDING_WINDOW",
    "VoterSStoreApp",
    "VoteRequest",
    "VoterWorkload",
    "render_leaderboard",
]

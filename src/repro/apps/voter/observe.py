"""Shared election observation helpers (used by both deployments).

Both the S-Store and the naive H-Store deployment expose the same observable
state (tables are identical), so correctness comparisons (experiments E1/E2)
diff the :class:`ElectionSummary` of each side against a sequential
reference execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.hstore.engine import HStoreEngine

__all__ = ["ElectionSummary", "election_summary", "leaderboards"]


@dataclass(frozen=True)
class ElectionSummary:
    """Observable election outcome (used for correctness comparisons)."""

    total_votes: int
    rejected_votes: int
    eliminations: int
    remaining: tuple[int, ...]
    #: contestant → current vote count
    counts: tuple[tuple[int, int], ...]
    #: elimination audit: (seq, contestant, at_total)
    removals: tuple[tuple[int, int, int], ...]
    winner: int | None

    def removal_order(self) -> tuple[int, ...]:
        return tuple(contestant for _seq, contestant, _total in self.removals)


def election_summary(engine: HStoreEngine) -> ElectionSummary:
    """Read the full observable election state from either deployment."""
    stats_row = engine.execute_sql(
        "SELECT total_votes, rejected_votes, eliminations "
        "FROM election_stats WHERE stat_id = 0"
    ).first()
    assert stats_row is not None
    remaining = tuple(
        int(value)
        for value in engine.execute_sql(
            "SELECT contestant_number FROM contestants ORDER BY contestant_number"
        ).column("contestant_number")
    )
    counts = tuple(
        (int(number), int(votes))
        for number, votes in engine.execute_sql(
            "SELECT contestant_number, num_votes FROM contestant_votes "
            "ORDER BY contestant_number"
        ).rows
    )
    removals = tuple(
        (int(seq), int(number), int(total))
        for seq, number, total, _discarded in engine.execute_sql(
            "SELECT * FROM removals ORDER BY removal_seq"
        ).rows
    )
    winner = remaining[0] if len(remaining) == 1 else None
    return ElectionSummary(
        total_votes=int(stats_row[0]),
        rejected_votes=int(stats_row[1]),
        eliminations=int(stats_row[2]),
        remaining=remaining,
        counts=counts,
        removals=removals,
        winner=winner,
    )


def leaderboards(engine: HStoreEngine) -> dict[str, list[tuple[Any, ...]]]:
    """The three Fig-2 leaderboards: top three, bottom three, trending."""
    top = engine.execute_sql(
        "SELECT cv.contestant_number, c.contestant_name, cv.num_votes "
        "FROM contestant_votes cv JOIN contestants c "
        "ON cv.contestant_number = c.contestant_number "
        "ORDER BY cv.num_votes DESC, cv.contestant_number ASC LIMIT 3"
    ).rows
    bottom = engine.execute_sql(
        "SELECT cv.contestant_number, c.contestant_name, cv.num_votes "
        "FROM contestant_votes cv JOIN contestants c "
        "ON cv.contestant_number = c.contestant_number "
        "ORDER BY cv.num_votes ASC, cv.contestant_number ASC LIMIT 3"
    ).rows
    # LEFT JOIN: a trending candidate may have just been eliminated, in
    # which case the name slot renders as NULL rather than dropping the row
    trending = engine.execute_sql(
        "SELECT tb.rank, tb.contestant_number, c.contestant_name, "
        "tb.recent_votes FROM trending_board tb "
        "LEFT JOIN contestants c "
        "ON c.contestant_number = tb.contestant_number "
        "ORDER BY tb.rank"
    ).rows
    return {"top": top, "bottom": bottom, "trending": trending}

"""Text rendering of the Fig-2 leaderboard display.

The original demo showed a live GUI with the top-three, bottom-three and
trending leaderboards plus the total vote count.  The GUI itself is
presentation; this renderer produces the same information content as text,
which the examples print and the tests assert on.
"""

from __future__ import annotations

from typing import Any

from repro.apps.voter.observe import ElectionSummary

__all__ = ["render_leaderboard"]


def _board_lines(title: str, rows: list[tuple[Any, ...]], fmt: str) -> list[str]:
    lines = [title, "-" * len(title)]
    if not rows:
        lines.append("  (empty)")
    for row in rows:
        lines.append(fmt.format(*row))
    return lines


def render_leaderboard(
    summary: ElectionSummary,
    boards: dict[str, list[tuple[Any, ...]]],
    *,
    show_name: str = "Canadian Dreamboat",
) -> str:
    """The Fig-2 display as text."""
    lines: list[str] = [
        f"=== {show_name} — Live Leaderboard ===",
        f"total votes: {summary.total_votes}   "
        f"rejected: {summary.rejected_votes}   "
        f"eliminated: {summary.eliminations}   "
        f"remaining: {len(summary.remaining)}",
        "",
    ]
    lines += _board_lines(
        "Top 3", boards["top"], "  #{0} {1:<12} {2:>6} votes"
    )
    lines.append("")
    lines += _board_lines(
        "Bottom 3", boards["bottom"], "  #{0} {1:<12} {2:>6} votes"
    )
    lines.append("")
    trending = [
        (rank, number, name if name is not None else "(eliminated)", recent)
        for rank, number, name, recent in boards["trending"]
    ]
    lines += _board_lines(
        "Trending (last 100 votes)",
        trending,
        "  {0}. #{1} {2} ({3} recent votes)",
    )
    if summary.winner is not None:
        lines += ["", f"*** WINNER: contestant #{summary.winner} ***"]
    return "\n".join(lines)

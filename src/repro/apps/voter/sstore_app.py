"""The S-Store deployment of Voter with Leaderboard.

Clients *push* raw votes into the ``votes_in`` border stream; PE triggers
drive SP1 → SP2 → SP3 engine-side in workflow order, the trending window is
maintained natively by the EE, and the three-procedure pipeline runs
serially per batch (the sharing analysis detects the shared ``votes`` /
``contestant_votes`` / ``election_stats`` tables automatically).
"""

from __future__ import annotations

from typing import Any

from repro.apps.voter import schema
from repro.apps.voter.observe import ElectionSummary, election_summary, leaderboards
from repro.apps.voter.procedures import RemoveLowest, UpdateLeaderboard, ValidateVote
from repro.apps.voter.workload import VoteRequest
from repro.core.engine import SStoreEngine
from repro.core.workflow import WorkflowSpec

__all__ = ["VoterSStoreApp"]


class VoterSStoreApp:
    """Deploys and drives the voter workflow on an S-Store engine."""

    def __init__(
        self,
        engine: SStoreEngine | None = None,
        *,
        num_contestants: int = schema.NUM_CONTESTANTS,
        batch_size: int = 1,
        snapshot_interval: int | None = None,
    ) -> None:
        self.engine = engine or SStoreEngine(snapshot_interval=snapshot_interval)
        self.batch_size = batch_size
        schema.install_tables(self.engine)
        schema.install_streams(self.engine)
        self.engine.register_procedure(ValidateVote)
        self.engine.register_procedure(UpdateLeaderboard)
        self.engine.register_procedure(RemoveLowest)

        workflow = WorkflowSpec("voter_leaderboard")
        workflow.add_node(
            "validate_vote",
            input_stream="votes_in",
            batch_size=batch_size,
            output_streams=("validated_votes",),
        )
        workflow.add_node(
            "update_leaderboard",
            input_stream="validated_votes",
            output_streams=("removal_due",),
        )
        workflow.add_node("remove_lowest", input_stream="removal_due")
        self.workflow = self.engine.deploy_workflow(workflow)
        schema.seed_contestants(self.engine, num_contestants)

    # -- driving ---------------------------------------------------------------

    def submit(
        self,
        requests: list[VoteRequest],
        *,
        ingest_chunk: int = 1,
    ) -> None:
        """Push vote requests into the engine.

        ``ingest_chunk`` is the *client-side* batching: how many raw votes
        one ``ingest`` call carries (one client↔PE round trip each).  The
        engine-side TE batch size is fixed at deployment.
        """
        for start in range(0, len(requests), ingest_chunk):
            chunk = requests[start : start + ingest_chunk]
            self.engine.ingest("votes_in", [request.as_row() for request in chunk])
        self.engine.run_until_quiescent()

    # -- observation --------------------------------------------------------------

    def summary(self) -> ElectionSummary:
        return election_summary(self.engine)

    def leaderboards(self) -> dict[str, list[tuple[Any, ...]]]:
        return leaderboards(self.engine)

    def vote_rows(self) -> list[tuple[Any, ...]]:
        return self.engine.execute_sql(
            "SELECT phone_number, contestant_number FROM votes "
            "ORDER BY phone_number"
        ).rows

"""Seeded vote-traffic generator for the Voter benchmark.

Produces a deterministic arrival-ordered list of vote requests with the
features the demo scenarios rely on:

* skewed candidate popularity (Zipf-like), so eliminations are meaningful;
* a configurable fraction of duplicate-phone attempts (invalid re-votes);
* "rapid-fire pairs": the same phone submitting two different candidates
  back-to-back — the arrival-order anomaly probe of experiment E2 (only the
  *first* of the pair is valid);
* a small fraction of votes for non-existent candidates (validation work).

Phones removed from the Votes table by an elimination may legitimately vote
again; generating *extra* traffic for them is unnecessary for the paper's
claims, so the generator does not model it (duplicate attempts already
exercise the same code path).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["VoteRequest", "VoterWorkload"]


@dataclass(frozen=True)
class VoteRequest:
    """One raw vote submission, in arrival order."""

    phone_number: str
    contestant_number: int
    created_ts: int
    #: True when this request is the invalid second half of a rapid-fire pair
    is_rapid_second: bool = False

    def as_row(self) -> tuple[str, int, int]:
        return (self.phone_number, self.contestant_number, self.created_ts)


class VoterWorkload:
    """Deterministic vote-request stream."""

    def __init__(
        self,
        *,
        seed: int = 7,
        num_contestants: int = 25,
        duplicate_fraction: float = 0.05,
        invalid_contestant_fraction: float = 0.02,
        rapid_pair_fraction: float = 0.03,
        zipf_s: float = 1.1,
    ) -> None:
        if not 0 <= duplicate_fraction < 1:
            raise ValueError("duplicate_fraction must be in [0, 1)")
        self.seed = seed
        self.num_contestants = num_contestants
        self.duplicate_fraction = duplicate_fraction
        self.invalid_contestant_fraction = invalid_contestant_fraction
        self.rapid_pair_fraction = rapid_pair_fraction
        # Zipf-ish popularity weights over candidates 1..N
        self._weights = [1.0 / (rank**zipf_s) for rank in range(1, num_contestants + 1)]

    def generate(self, num_requests: int) -> list[VoteRequest]:
        """``num_requests`` arrival-ordered vote submissions."""
        rng = random.Random(self.seed)
        requests: list[VoteRequest] = []
        used_phones: list[str] = []
        next_phone = 0
        ts = 0
        candidates = list(range(1, self.num_contestants + 1))

        while len(requests) < num_requests:
            ts += 1
            roll = rng.random()

            if roll < self.duplicate_fraction and used_phones:
                # a phone that already voted tries again
                phone = rng.choice(used_phones)
                contestant = rng.choices(candidates, weights=self._weights)[0]
                requests.append(VoteRequest(phone, contestant, ts))
                continue

            if roll < self.duplicate_fraction + self.invalid_contestant_fraction:
                phone = self._phone(next_phone)
                next_phone += 1
                bogus = self.num_contestants + 1 + rng.randrange(100)
                requests.append(VoteRequest(phone, bogus, ts))
                continue

            phone = self._phone(next_phone)
            next_phone += 1
            contestant = rng.choices(candidates, weights=self._weights)[0]
            requests.append(VoteRequest(phone, contestant, ts))
            used_phones.append(phone)

            if (
                rng.random() < self.rapid_pair_fraction
                and len(requests) < num_requests
            ):
                # rapid-fire second vote from the same phone for a different
                # candidate — valid systems must reject exactly this one
                ts += 1
                other = rng.choices(candidates, weights=self._weights)[0]
                if other == contestant:
                    other = (other % self.num_contestants) + 1
                requests.append(
                    VoteRequest(phone, other, ts, is_rapid_second=True)
                )

        return requests[:num_requests]

    @staticmethod
    def _phone(index: int) -> str:
        area = 200 + (index // 10000) % 800
        return f"{area}-555-{index % 10000:04d}"

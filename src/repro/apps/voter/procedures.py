"""Voter-with-Leaderboard stored procedures (paper §3.1, Fig. 3).

The workflow is three stored procedures:

``SP1 validate_vote``
    Validates each vote (contestant exists, phone has not voted) and records
    accepted ones, forwarding them downstream.

``SP2 update_leaderboard``
    Maintains the per-candidate totals and the running total-vote count.
    When the total crosses the elimination threshold it signals SP3.

``SP3 remove_lowest``
    Removes the candidate with the fewest votes, deletes every vote cast for
    them ("effectively returning the votes to the people who cast them" —
    those phones may vote again), and logs the elimination.

All three touch the same tables (``votes``, ``contestant_votes``,
``election_stats``), so the workflow's sharing analysis forces serial,
contiguous per-batch execution — exactly the paper's requirement.

The same classes double as the *naive H-Store* procedures: the H-Store
deployment registers them on a plain :class:`HStoreEngine` and the client
drives the chaining itself (see :mod:`repro.apps.voter.hstore_app`).  To
support both modes, each ``run`` takes its input either from ``ctx.batch``
(S-Store TE) or from call parameters (H-Store client call), and emits only
when an output stream is available.
"""

from __future__ import annotations

from typing import Any

from repro.apps.voter.schema import ELIMINATION_EVERY
from repro.core.engine import StreamContext, StreamProcedure

__all__ = ["ValidateVote", "UpdateLeaderboard", "RemoveLowest"]


class ValidateVote(StreamProcedure):
    """SP1: validate and record incoming votes."""

    name = "validate_vote"
    statements = {
        "contestant_exists": (
            "SELECT contestant_number FROM contestants WHERE contestant_number = ?"
        ),
        "already_voted": "SELECT phone_number FROM votes WHERE phone_number = ?",
        "record_vote": "INSERT INTO votes VALUES (?, ?, ?)",
        "count_rejection": (
            "UPDATE election_stats SET rejected_votes = rejected_votes + 1 "
            "WHERE stat_id = 0"
        ),
    }

    def run(self, ctx: StreamContext, *params: Any) -> list[tuple[Any, ...]]:
        votes = list(ctx.batch) if ctx.has_batch else [params]
        accepted: list[tuple[Any, ...]] = []
        for phone_number, contestant_number, created_ts in votes:
            if not ctx.execute("contestant_exists", contestant_number):
                ctx.execute("count_rejection")
                continue
            if ctx.execute("already_voted", phone_number):
                ctx.execute("count_rejection")
                continue
            ctx.execute("record_vote", phone_number, contestant_number, created_ts)
            accepted.append((phone_number, contestant_number, created_ts))
        if ctx.has_batch and accepted:
            ctx.emit("validated_votes", accepted)
        return accepted


class UpdateLeaderboard(StreamProcedure):
    """SP2: maintain leaderboards and the running vote total.

    The trending leaderboard comes from the ``trending_w`` window — which is
    maintained *natively by the EE* as validated votes flow in; this
    procedure only queries it.  The naive H-Store variant
    (:class:`repro.apps.voter.hstore_app.HStoreUpdateLeaderboard`) has to
    maintain the same 100-vote window by hand with extra SQL statements.
    """

    name = "update_leaderboard"
    statements = {
        "bump_candidate": (
            "UPDATE contestant_votes SET num_votes = num_votes + 1 "
            "WHERE contestant_number = ?"
        ),
        "bump_total": (
            "UPDATE election_stats SET total_votes = total_votes + 1 "
            "WHERE stat_id = 0"
        ),
        "read_total": "SELECT total_votes FROM election_stats WHERE stat_id = 0",
        # join against live contestants: votes for eliminated candidates
        # still sit in the window, but the board must not show them
        "trending_counts": (
            "SELECT w.contestant_number, COUNT(*) AS recent "
            "FROM trending_w w JOIN contestants c "
            "ON c.contestant_number = w.contestant_number "
            "GROUP BY w.contestant_number "
            "ORDER BY recent DESC, w.contestant_number ASC LIMIT 3"
        ),
        "clear_board": "DELETE FROM trending_board",
        "post_board": "INSERT INTO trending_board VALUES (?, ?, ?)",
    }

    def run(self, ctx: StreamContext, *params: Any) -> int:
        votes = list(ctx.batch) if ctx.has_batch else [params]
        thresholds_crossed: list[int] = []
        total = 0
        for _phone, contestant_number, _ts in votes:
            ctx.execute("bump_candidate", contestant_number)
            ctx.execute("bump_total")
            total = ctx.execute("read_total").scalar()
            if total % ELIMINATION_EVERY == 0:
                thresholds_crossed.append(total)
        if ctx.has_batch:
            trending = ctx.execute("trending_counts").rows
            ctx.execute("clear_board")
            for rank, (contestant_number, recent) in enumerate(trending, start=1):
                ctx.execute("post_board", rank, contestant_number, recent)
        if ctx.has_batch and thresholds_crossed:
            ctx.emit("removal_due", [(t,) for t in thresholds_crossed])
        return total


class RemoveLowest(StreamProcedure):
    """SP3: eliminate the candidate with the fewest votes."""

    name = "remove_lowest"
    statements = {
        "lowest": (
            "SELECT contestant_number FROM contestant_votes "
            "ORDER BY num_votes ASC, contestant_number ASC LIMIT 1"
        ),
        "count_remaining": "SELECT COUNT(*) FROM contestants",
        "count_votes_for": (
            "SELECT COUNT(*) FROM votes WHERE contestant_number = ?"
        ),
        "delete_contestant": (
            "DELETE FROM contestants WHERE contestant_number = ?"
        ),
        "delete_votes": "DELETE FROM votes WHERE contestant_number = ?",
        "delete_counter": (
            "DELETE FROM contestant_votes WHERE contestant_number = ?"
        ),
        "read_total": "SELECT total_votes FROM election_stats WHERE stat_id = 0",
        "bump_eliminations": (
            "UPDATE election_stats SET eliminations = eliminations + 1 "
            "WHERE stat_id = 0"
        ),
        "count_removals": "SELECT COUNT(*) FROM removals",
        "log_removal": "INSERT INTO removals VALUES (?, ?, ?, ?)",
        # "removing all votes for that candidate from ... all leaderboards"
        "unboard": "DELETE FROM trending_board WHERE contestant_number = ?",
    }

    def run(self, ctx: StreamContext, *params: Any) -> int | None:
        events = list(ctx.batch) if ctx.has_batch else [params or (None,)]
        removed: int | None = None
        for (at_total,) in events:
            if ctx.execute("count_remaining").scalar() <= 1:
                continue  # a single winner remains; nothing to remove
            loser = ctx.execute("lowest").scalar()
            if loser is None:
                continue
            discarded = ctx.execute("count_votes_for", loser).scalar()
            # audit the threshold that *triggered* the removal; with batch
            # sizes > 1 the current total may already be a few votes past it
            if at_total is None:
                at_total = ctx.execute("read_total").scalar()
            seq = ctx.execute("count_removals").scalar()
            ctx.execute("delete_contestant", loser)
            ctx.execute("delete_votes", loser)
            ctx.execute("delete_counter", loser)
            ctx.execute("bump_eliminations")
            ctx.execute("log_removal", seq, loser, at_total, discarded)
            ctx.execute("unboard", loser)
            removed = loser
        return removed

"""Voter-with-Leaderboard schema (paper §3.1).

The game show *Canadian Dreamboat*: 25 candidates, one vote per phone
number, elimination of the lowest-scoring candidate every 100 valid votes,
and three live leaderboards (top three, bottom three, top three trending
over the last 100 votes).

Tables (regular OLTP state, shared by all three stored procedures — which
is what forces serial workflow execution):

``contestants``            the candidates still in the running
``votes``                  one row per accepted vote (PK = phone number)
``contestant_votes``       running per-candidate totals (the leaderboards)
``election_stats``         single row: total accepted / rejected counts
``removals``               elimination audit log (who, at which vote total)

Streams/windows (S-Store deployment only):

``votes_in``               border stream of raw vote requests
``validated_votes``        SP1 → SP2: accepted votes
``removal_due``            SP2 → SP3: fires each time the total hits a
                           multiple of the elimination threshold
``trending_w``             ROWS 100 SLIDE 1 window over ``validated_votes``,
                           scoped to SP2 (the trending leaderboard)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hstore.engine import HStoreEngine

__all__ = [
    "NUM_CONTESTANTS",
    "ELIMINATION_EVERY",
    "TRENDING_WINDOW",
    "CONTESTANT_NAMES",
    "install_tables",
    "install_streams",
    "seed_contestants",
]

#: paper parameters
NUM_CONTESTANTS = 25
ELIMINATION_EVERY = 100
TRENDING_WINDOW = 100

CONTESTANT_NAMES = [
    "Aiden", "Bianca", "Carter", "Delia", "Emmett", "Fiona", "Gavin",
    "Harper", "Isla", "Jonah", "Kiara", "Liam", "Maren", "Nolan", "Odette",
    "Piper", "Quentin", "Rhea", "Silas", "Tessa", "Umberto", "Vera",
    "Wyatt", "Ximena", "Yusuf", "Zelda",
]

_TABLES = [
    """
    CREATE TABLE contestants (
        contestant_number INTEGER NOT NULL,
        contestant_name   VARCHAR(64) NOT NULL,
        PRIMARY KEY (contestant_number)
    )
    """,
    """
    CREATE TABLE votes (
        phone_number      VARCHAR(16) NOT NULL,
        contestant_number INTEGER NOT NULL,
        created_ts        TIMESTAMP NOT NULL,
        PRIMARY KEY (phone_number)
    )
    """,
    """
    CREATE TABLE contestant_votes (
        contestant_number INTEGER NOT NULL,
        num_votes         INTEGER NOT NULL,
        PRIMARY KEY (contestant_number)
    )
    """,
    """
    CREATE TABLE election_stats (
        stat_id        INTEGER NOT NULL,
        total_votes    INTEGER NOT NULL,
        rejected_votes INTEGER NOT NULL,
        eliminations   INTEGER NOT NULL,
        PRIMARY KEY (stat_id)
    )
    """,
    """
    CREATE TABLE removals (
        removal_seq       INTEGER NOT NULL,
        contestant_number INTEGER NOT NULL,
        at_total_votes    INTEGER NOT NULL,
        votes_discarded   INTEGER NOT NULL,
        PRIMARY KEY (removal_seq)
    )
    """,
    """
    CREATE TABLE trending_board (
        rank              INTEGER NOT NULL,
        contestant_number INTEGER NOT NULL,
        recent_votes      INTEGER NOT NULL,
        PRIMARY KEY (rank)
    )
    """,
    "CREATE INDEX idx_votes_contestant ON votes (contestant_number)",
    "CREATE INDEX idx_cv_num_votes ON contestant_votes (num_votes) USING TREE",
]

_STREAMS = [
    """
    CREATE STREAM votes_in (
        phone_number      VARCHAR(16) NOT NULL,
        contestant_number INTEGER NOT NULL,
        created_ts        TIMESTAMP NOT NULL
    )
    """,
    """
    CREATE STREAM validated_votes (
        phone_number      VARCHAR(16) NOT NULL,
        contestant_number INTEGER NOT NULL,
        created_ts        TIMESTAMP NOT NULL
    )
    """,
    """
    CREATE STREAM removal_due (
        at_total_votes INTEGER NOT NULL
    )
    """,
    f"CREATE WINDOW trending_w ON validated_votes ROWS {TRENDING_WINDOW} "
    f"SLIDE 1 OWNED BY update_leaderboard",
]


def install_tables(engine: "HStoreEngine") -> None:
    """Create the OLTP tables (shared by both deployments)."""
    for ddl in _TABLES:
        engine.execute_ddl(ddl)


def install_streams(engine: "HStoreEngine") -> None:
    """Create the streams and the trending window (S-Store only)."""
    for ddl in _STREAMS:
        engine.execute_ddl(ddl)


def seed_contestants(engine: "HStoreEngine", count: int = NUM_CONTESTANTS) -> None:
    """Load ``count`` candidates and zeroed counters."""
    if count < 2 or count > len(CONTESTANT_NAMES):
        raise ValueError(f"contestant count must be in [2, {len(CONTESTANT_NAMES)}]")
    for number in range(1, count + 1):
        engine.execute_sql(
            "INSERT INTO contestants VALUES (?, ?)",
            number,
            CONTESTANT_NAMES[number - 1],
        )
        engine.execute_sql(
            "INSERT INTO contestant_votes VALUES (?, 0)", number
        )
    engine.execute_sql("INSERT INTO election_stats VALUES (0, 0, 0, 0)")

"""The framed wire protocol of the network front door.

Every message on the wire is one *frame*::

    +---------+---------+-------------------+--------------------------+
    | version | type    | payload length    | payload                  |
    | 1 byte  | 1 byte  | 4 bytes (big-end) | <length> bytes of JSON   |
    +---------+---------+-------------------+--------------------------+

The 6-byte binary header makes framing trivial and cheap to parse off the
event loop; the payload is a UTF-8 JSON object, so the protocol is
inspectable with ``tcpdump`` and trivially implementable from any language.
Version is carried on *every* frame (no handshake, no connection state):
a client and server disagreeing about the protocol fail on the first frame
with a typed :class:`~repro.errors.ProtocolError` instead of desyncing.

Requests and responses correlate by an ``"id"`` field in the payload —
mandatory on every request, echoed on the matching response — which is what
lets a client pipeline many requests down one connection and match answers
out of band.

Frame types (requests 0x01–0x3f, responses 0x81–0xbf, 0x7f reserved for
the pre-close protocol-error notice):

========================  ======  ==========================================
constant                  value   payload
========================  ======  ==========================================
``REQ_CALL``              0x01    ``{"id", "proc", "params", "trace"?}``
``REQ_SQL``               0x02    ``{"id", "sql", "params", "trace"?}``
``REQ_INGEST``            0x03    ``{"id", "stream", "rows", "trace"?}``
``REQ_PING``              0x04    ``{"id", "echo"?}``
``REQ_STATS``             0x05    ``{"id", "flight"?}``
``RESP_RESULT``           0x81    ``{"id", "success", "data", "error",
                                  "txn_id", "partition"}`` (REQ_CALL) or
                                  ``{"id", "result"}`` (REQ_SQL/REQ_INGEST)
``RESP_ERROR``            0x82    ``{"id", "error": {"class", "message",
                                  "kind", "code"?}}``
``RESP_PONG``             0x83    ``{"id", "echo"}``
``RESP_STATS``            0x84    ``{"id", "server", "engine", "metrics",
                                  "telemetry", "flight_records"?}``
``RESP_BUSY``             0x85    ``{"id"}`` — admission control fast-reject
``RESP_PROTOCOL_ERROR``   0x7f    ``{"message"}`` — sent once, then close
========================  ======  ==========================================

Trace propagation: the three work-carrying requests accept an optional
``"trace": [trace_id, span_id]`` pair (two non-negative integers — the
caller's trace id and the span under which server-side work should hang).
A traced server activates it as the remote parent for that request, so the
client's call span, the server's request and group-commit spans, and the
partition worker's transaction spans all land in *one* trace.  The field
is advisory: servers with tracing off ignore it, malformed values are
dropped rather than rejected, and untraced clients simply omit it.

``REQ_STATS`` is the observability scrape: ``server`` and ``engine`` are
the plain counter dicts, ``metrics`` is the server's metrics-registry JSON
snapshot (``null`` when metrics are off), ``telemetry`` carries the flight
recorder's summary, and a request with ``"flight": true`` additionally
returns ``flight_records`` — the recorder's recent-request ring with span
trees attached (see :mod:`repro.obs.recorder`).

Typed error payloads round-trip the engine's exception hierarchy: the
``class`` field names a class from :mod:`repro.errors` (rebuilt verbatim on
the client via the same registry the worker mailboxes use), ``message``
keeps the server's location prefix (``[net conn 3, call 'x'] ...``), and
``kind`` coarsely buckets the hierarchy (``txn`` / ``sql`` / ``catalog`` /
``stream`` / ``net`` / ``engine`` / ``internal``) so non-Python clients can
branch without knowing the class names.

Values cross the wire as JSON: tuples arrive as lists (rows are re-tupled
by the client library), table results as ``{"columns", "rows"}`` objects.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Iterator

from repro.errors import (
    CatalogError,
    NetworkError,
    ProtocolError,
    ReproError,
    SqlError,
    StreamingError,
    TransactionError,
    TypeSystemError,
)
from repro.parallel.messages import dump_exception, load_exception

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "HEADER",
    "REQ_CALL",
    "REQ_SQL",
    "REQ_INGEST",
    "REQ_PING",
    "REQ_STATS",
    "RESP_RESULT",
    "RESP_ERROR",
    "RESP_PONG",
    "RESP_STATS",
    "RESP_BUSY",
    "RESP_PROTOCOL_ERROR",
    "REQUEST_TYPES",
    "RESPONSE_TYPES",
    "FRAME_NAMES",
    "frame_name",
    "encode_frame",
    "FrameDecoder",
    "dump_error",
    "load_error",
    "error_kind",
    "to_wire",
]

#: bumped on any incompatible header/payload change; carried on every frame
PROTOCOL_VERSION = 1

#: header: version (uint8), frame type (uint8), payload length (uint32)
HEADER = struct.Struct("!BBI")

#: default ceiling on one frame's payload; a length field beyond this is a
#: protocol error, not an allocation — garbage cannot OOM the server
MAX_FRAME_BYTES = 8 * 1024 * 1024

REQ_CALL = 0x01
REQ_SQL = 0x02
REQ_INGEST = 0x03
REQ_PING = 0x04
REQ_STATS = 0x05

RESP_RESULT = 0x81
RESP_ERROR = 0x82
RESP_PONG = 0x83
RESP_STATS = 0x84
RESP_BUSY = 0x85
RESP_PROTOCOL_ERROR = 0x7F

REQUEST_TYPES = frozenset({REQ_CALL, REQ_SQL, REQ_INGEST, REQ_PING, REQ_STATS})
RESPONSE_TYPES = frozenset(
    {RESP_RESULT, RESP_ERROR, RESP_PONG, RESP_STATS, RESP_BUSY, RESP_PROTOCOL_ERROR}
)

FRAME_NAMES = {
    REQ_CALL: "call",
    REQ_SQL: "sql",
    REQ_INGEST: "ingest",
    REQ_PING: "ping",
    REQ_STATS: "stats",
    RESP_RESULT: "result",
    RESP_ERROR: "error",
    RESP_PONG: "pong",
    RESP_STATS: "stats",
    RESP_BUSY: "busy",
    RESP_PROTOCOL_ERROR: "protocol-error",
}

_KNOWN_TYPES = REQUEST_TYPES | RESPONSE_TYPES


def frame_name(frame_type: int) -> str:
    return FRAME_NAMES.get(frame_type, f"0x{frame_type:02x}")


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------


def encode_frame(
    frame_type: int,
    payload: dict[str, Any],
    *,
    max_frame: int = MAX_FRAME_BYTES,
) -> bytes:
    """Serialize one frame: 6-byte header + JSON payload."""
    if frame_type not in _KNOWN_TYPES:
        raise ProtocolError(f"unknown frame type 0x{frame_type:02x}")
    body = json.dumps(payload, separators=(",", ":"), allow_nan=True).encode("utf-8")
    if len(body) > max_frame:
        raise ProtocolError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{max_frame}-byte frame limit"
        )
    return HEADER.pack(PROTOCOL_VERSION, frame_type, len(body)) + body


class FrameDecoder:
    """Incremental frame parser for a byte stream with arbitrary chunking.

    ``feed`` buffers whatever arrives (one byte or a megabyte) and yields
    every *complete* frame, holding any trailing partial frame for the next
    call.  Every validation failure — wrong version, unknown type, a length
    field beyond ``max_frame``, a payload that is not a JSON object — raises
    :class:`~repro.errors.ProtocolError`; the decoder never raises anything
    else, no matter the input, which is what the hypothesis garbage test
    pins down.  After an error the decoder is poisoned: the stream position
    is untrustworthy, so the owning connection must be closed.
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()
        self._poisoned = False

    def __len__(self) -> int:
        """Bytes currently buffered (partial frame tail)."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[tuple[int, dict[str, Any]]]:
        """Buffer ``data`` and return all completed ``(type, payload)`` frames."""
        if self._poisoned:
            raise ProtocolError("decoder already failed; close the connection")
        self._buffer.extend(data)
        try:
            return list(self._drain())
        except ProtocolError:
            self._poisoned = True
            raise

    def _drain(self) -> Iterator[tuple[int, dict[str, Any]]]:
        buffer = self._buffer
        while len(buffer) >= HEADER.size:
            version, frame_type, length = HEADER.unpack_from(buffer)
            if version != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"unsupported protocol version {version} "
                    f"(this side speaks {PROTOCOL_VERSION})"
                )
            if frame_type not in _KNOWN_TYPES:
                raise ProtocolError(f"unknown frame type 0x{frame_type:02x}")
            if length > self.max_frame:
                raise ProtocolError(
                    f"frame length {length} exceeds the "
                    f"{self.max_frame}-byte frame limit"
                )
            if len(buffer) < HEADER.size + length:
                return  # partial frame: wait for more bytes
            body = bytes(buffer[HEADER.size : HEADER.size + length])
            del buffer[: HEADER.size + length]
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(f"frame payload is not valid JSON: {exc}") from None
            if not isinstance(payload, dict):
                raise ProtocolError(
                    f"frame payload must be a JSON object, got "
                    f"{type(payload).__name__}"
                )
            yield frame_type, payload


# ---------------------------------------------------------------------------
# typed error payloads
# ---------------------------------------------------------------------------

#: coarse buckets for the error hierarchy, most-specific first
_KIND_BY_BASE: tuple[tuple[type, str], ...] = (
    (TransactionError, "txn"),
    (SqlError, "sql"),
    (CatalogError, "catalog"),
    (TypeSystemError, "type"),
    (StreamingError, "stream"),
    (NetworkError, "net"),
    (ReproError, "engine"),
)


def error_kind(exc: BaseException) -> str:
    """Coarse bucket of an exception for non-Python protocol consumers."""
    for base, kind in _KIND_BY_BASE:
        if isinstance(exc, base):
            return kind
    return "internal"


def dump_error(
    exc: BaseException, *, where: str | None = None, code: str | None = None
) -> dict[str, Any]:
    """Serialize an exception into a typed error payload.

    Rides the worker-mailbox serialization
    (:func:`repro.parallel.messages.dump_exception`) so an engine exception
    keeps its class and gains a location prefix; non-engine exceptions are
    server-side bugs and travel as ``ReproError`` with the traceback folded
    into the message.
    """
    class_name, message = dump_exception(exc, where=where, side="server")
    payload: dict[str, Any] = {
        "class": class_name,
        "message": message,
        "kind": error_kind(exc),
    }
    if code is not None:
        payload["code"] = code
    return payload


def load_error(payload: dict[str, Any]) -> Exception:
    """Rebuild the client-side exception from a typed error payload."""
    return load_exception(
        str(payload.get("class", "ReproError")), str(payload.get("message", ""))
    )


# ---------------------------------------------------------------------------
# value conversion (engine results → JSON-able wire shapes)
# ---------------------------------------------------------------------------


def to_wire(value: Any) -> Any:
    """Convert an engine-side value into a JSON-serializable shape.

    Tuples become lists (JSON has no tuple), result sets become
    ``{"columns", "rows"}`` objects tagged with ``"$": "rows"`` so the
    client can rebuild a :class:`~repro.hstore.executor.ResultSet`; anything
    unknown is stringified rather than crashing the response path.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [to_wire(item) for item in value]
    if isinstance(value, dict):
        return {str(key): to_wire(item) for key, item in value.items()}
    columns = getattr(value, "columns", None)
    rows = getattr(value, "rows", None)
    if columns is not None and rows is not None:  # duck-typed ResultSet
        return {
            "$": "rows",
            "columns": list(columns),
            "rows": [[to_wire(cell) for cell in row] for row in rows],
        }
    return str(value)

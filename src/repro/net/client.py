"""The client library: pipelined asyncio client + blocking wrapper.

:class:`NetClient` multiplexes any number of concurrent coroutines onto one
TCP connection: every request carries a fresh correlation id, a single
reader task matches response frames back to their waiting futures, so N
in-flight requests cost one connection and no locks.  This is also what
feeds the server's group commit — concurrent requests from one (or many)
clients arrive together and commit as one batch.

Responses rebuild engine-side shapes: ``call_procedure`` returns a real
:class:`~repro.hstore.procedure.ProcedureResult` (aborts come back as
``success=False``, exactly like the in-process API), ``execute_sql``
returns a :class:`~repro.hstore.executor.ResultSet` (rows re-tupled) or a
row count, and typed error frames are re-raised as their original
:mod:`repro.errors` class with the server's location prefix intact.

:class:`SyncNetClient` wraps all of it for blocking callers (examples,
REPLs): it runs a private event loop on a daemon thread and forwards every
call with ``run_coroutine_threadsafe``.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from repro.errors import ConnectionClosedError, ProtocolError, ServerBusyError
from repro.hstore.executor import ResultSet
from repro.hstore.procedure import ProcedureResult
from repro.net import protocol as proto

__all__ = ["NetClient", "SyncNetClient", "from_wire"]


def from_wire(value: Any) -> Any:
    """Rebuild engine-side shapes from their JSON wire form."""
    if isinstance(value, dict):
        if value.get("$") == "rows":
            return ResultSet(
                columns=list(value.get("columns", [])),
                rows=[tuple(row) for row in value.get("rows", [])],
            )
        return {key: from_wire(item) for key, item in value.items()}
    if isinstance(value, list):
        return [from_wire(item) for item in value]
    return value


class NetClient:
    """One TCP connection, any number of pipelined in-flight requests."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame: int = proto.MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._decoder = proto.FrameDecoder(max_frame)
        self._next_id = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_responses()
        )

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 7077,
        *,
        max_frame: int = proto.MAX_FRAME_BYTES,
    ) -> "NetClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame=max_frame)

    async def __aenter__(self) -> "NetClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._fail_pending(ConnectionClosedError("client closed"))
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    # ------------------------------------------------------------------
    # response pump
    # ------------------------------------------------------------------

    async def _read_responses(self) -> None:
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    raise ConnectionClosedError(
                        f"server closed the connection with "
                        f"{len(self._pending)} request(s) outstanding"
                    )
                for frame_type, payload in self._decoder.feed(data):
                    self._handle(frame_type, payload)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._closed = True
            self._fail_pending(exc)

    def _handle(self, frame_type: int, payload: dict[str, Any]) -> None:
        if frame_type == proto.RESP_PROTOCOL_ERROR:
            # the server is about to close this connection; every pending
            # request dies with the server's reason
            raise ProtocolError(
                f"server reported a protocol error: {payload.get('message')}"
            )
        future = self._pending.pop(payload.get("id"), None)
        if future is not None and not future.done():
            future.set_result((frame_type, payload))

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------

    async def request(
        self, frame_type: int, payload: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        """Send one request frame, await its correlated response.

        Raises the rebuilt server-side exception for ``RESP_ERROR`` frames
        and :class:`~repro.errors.ServerBusyError` for admission-control
        fast-rejects; other response types are returned to the caller.
        """
        if self._closed:
            raise ConnectionClosedError("client is closed")
        self._next_id += 1
        rid = self._next_id
        frame = proto.encode_frame(
            frame_type, {"id": rid, **payload}, max_frame=self._max_frame
        )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        self._writer.write(frame)
        await self._writer.drain()
        resp_type, resp = await future
        if resp_type == proto.RESP_BUSY:
            raise ServerBusyError(
                "server busy: request fast-rejected by admission control "
                "(not executed; safe to retry after a backoff)"
            )
        if resp_type == proto.RESP_ERROR:
            raise proto.load_error(resp.get("error", {}))
        return resp_type, resp

    async def call_procedure(self, name: str, *params: Any) -> ProcedureResult:
        _, resp = await self.request(
            proto.REQ_CALL, {"proc": name, "params": list(params)}
        )
        return ProcedureResult(
            success=bool(resp.get("success")),
            data=from_wire(resp.get("data")),
            error=resp.get("error"),
            txn_id=resp.get("txn_id"),
            partition=resp.get("partition"),
        )

    async def execute_sql(self, sql: str, *params: Any) -> ResultSet | int:
        _, resp = await self.request(
            proto.REQ_SQL, {"sql": sql, "params": list(params)}
        )
        return from_wire(resp.get("result"))

    async def ingest(self, stream: str, rows: list[tuple[Any, ...]]) -> int:
        _, resp = await self.request(
            proto.REQ_INGEST,
            {"stream": stream, "rows": [list(row) for row in rows]},
        )
        return int(resp.get("result", 0))

    async def ping(self, echo: Any = None) -> Any:
        _, resp = await self.request(proto.REQ_PING, {"echo": echo})
        return resp.get("echo")

    async def stats(self) -> dict[str, Any]:
        _, resp = await self.request(proto.REQ_STATS, {})
        return {"server": resp.get("server", {}), "engine": resp.get("engine", {})}


class SyncNetClient:
    """Blocking facade over :class:`NetClient` for sync callers.

    Owns a private event loop on a daemon thread; every method forwards the
    matching coroutine with ``run_coroutine_threadsafe`` and blocks on the
    result.  Usable as a context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7077,
        *,
        timeout: float = 30.0,
        max_frame: int = proto.MAX_FRAME_BYTES,
    ) -> None:
        self.timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-net-client", daemon=True
        )
        self._thread.start()
        self._client: NetClient = self._run(
            NetClient.connect(host, port, max_frame=max_frame)
        )

    def _run(self, coro: Any) -> Any:
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(self.timeout)

    def __enter__(self) -> "SyncNetClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self) -> None:
        if self._loop.is_closed():
            return
        try:
            self._run(self._client.close())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=self.timeout)
            self._loop.close()

    def call_procedure(self, name: str, *params: Any) -> ProcedureResult:
        return self._run(self._client.call_procedure(name, *params))

    def execute_sql(self, sql: str, *params: Any) -> ResultSet | int:
        return self._run(self._client.execute_sql(sql, *params))

    def ingest(self, stream: str, rows: list[tuple[Any, ...]]) -> int:
        return self._run(self._client.ingest(stream, rows))

    def ping(self, echo: Any = None) -> Any:
        return self._run(self._client.ping(echo))

    def stats(self) -> dict[str, Any]:
        return self._run(self._client.stats())

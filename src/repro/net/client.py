"""The client library: pipelined asyncio client + blocking wrapper.

:class:`NetClient` multiplexes any number of concurrent coroutines onto one
TCP connection: every request carries a fresh correlation id, a single
reader task matches response frames back to their waiting futures, so N
in-flight requests cost one connection and no locks.  This is also what
feeds the server's group commit — concurrent requests from one (or many)
clients arrive together and commit as one batch.

Responses rebuild engine-side shapes: ``call_procedure`` returns a real
:class:`~repro.hstore.procedure.ProcedureResult` (aborts come back as
``success=False``, exactly like the in-process API), ``execute_sql``
returns a :class:`~repro.hstore.executor.ResultSet` (rows re-tupled) or a
row count, and typed error frames are re-raised as their original
:mod:`repro.errors` class with the server's location prefix intact.

:class:`SyncNetClient` wraps all of it for blocking callers (examples,
REPLs): it runs a private event loop on a daemon thread and forwards every
call with ``run_coroutine_threadsafe``.

Pass a :class:`~repro.obs.trace.Tracer` to join the cluster trace plane:
every work-carrying request then ships a ``"trace": [trace_id, span_id]``
pair the server adopts as its remote parent, and the client records a
``client.<op>`` span (with ``client.enqueue`` / ``client.await`` children
splitting write-side from server-side time) into the same trace.  Client
spans are recorded out-of-band (:meth:`Tracer.record_span`) rather than via
the nesting stack, because pipelined coroutines complete in arbitrary order.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from repro.errors import ConnectionClosedError, ProtocolError, ServerBusyError
from repro.hstore.executor import ResultSet
from repro.hstore.procedure import ProcedureResult
from repro.net import protocol as proto
from repro.obs.trace import NULL_TRACER, Tracer, now_us

__all__ = ["NetClient", "SyncNetClient", "from_wire"]

#: work-carrying request types that propagate trace context to the server
_TRACED_TYPES = frozenset({proto.REQ_CALL, proto.REQ_SQL, proto.REQ_INGEST})


def from_wire(value: Any) -> Any:
    """Rebuild engine-side shapes from their JSON wire form."""
    if isinstance(value, dict):
        if value.get("$") == "rows":
            return ResultSet(
                columns=list(value.get("columns", [])),
                rows=[tuple(row) for row in value.get("rows", [])],
            )
        return {key: from_wire(item) for key, item in value.items()}
    if isinstance(value, list):
        return [from_wire(item) for item in value]
    return value


class NetClient:
    """One TCP connection, any number of pipelined in-flight requests."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame: int = proto.MAX_FRAME_BYTES,
        tracer: Tracer | None = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._decoder = proto.FrameDecoder(max_frame)
        self._next_id = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_responses()
        )

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 7077,
        *,
        max_frame: int = proto.MAX_FRAME_BYTES,
        tracer: Tracer | None = None,
    ) -> "NetClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame=max_frame, tracer=tracer)

    async def __aenter__(self) -> "NetClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._fail_pending(ConnectionClosedError("client closed"))
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    # ------------------------------------------------------------------
    # response pump
    # ------------------------------------------------------------------

    async def _read_responses(self) -> None:
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    raise ConnectionClosedError(
                        f"server closed the connection with "
                        f"{len(self._pending)} request(s) outstanding"
                    )
                for frame_type, payload in self._decoder.feed(data):
                    self._handle(frame_type, payload)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._closed = True
            self._fail_pending(exc)

    def _handle(self, frame_type: int, payload: dict[str, Any]) -> None:
        if frame_type == proto.RESP_PROTOCOL_ERROR:
            # the server is about to close this connection; every pending
            # request dies with the server's reason
            raise ProtocolError(
                f"server reported a protocol error: {payload.get('message')}"
            )
        future = self._pending.pop(payload.get("id"), None)
        if future is not None and not future.done():
            future.set_result((frame_type, payload))

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------

    async def request(
        self, frame_type: int, payload: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        """Send one request frame, await its correlated response.

        Raises the rebuilt server-side exception for ``RESP_ERROR`` frames
        and :class:`~repro.errors.ServerBusyError` for admission-control
        fast-rejects; other response types are returned to the caller.
        """
        if self._closed:
            raise ConnectionClosedError("client is closed")
        self._next_id += 1
        rid = self._next_id
        tracer = self._tracer
        traced = tracer.enabled and frame_type in _TRACED_TYPES
        if traced:
            # the call span doubles as the trace root: its id IS the trace id,
            # and the server hangs its request span under it
            root_id = tracer.alloc_id()
            payload = {**payload, "trace": [root_id, root_id]}
        frame = proto.encode_frame(
            frame_type, {"id": rid, **payload}, max_frame=self._max_frame
        )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        if not traced:
            self._writer.write(frame)
            await self._writer.drain()
            resp_type, resp = await future
        else:
            name = proto.frame_name(frame_type)
            start = sent = now_us()
            error: str | None = None
            try:
                self._writer.write(frame)
                await self._writer.drain()
                sent = now_us()
                resp_type, resp = await future
            except BaseException as exc:
                error = f"{type(exc).__name__}: {exc}"
                raise
            finally:
                end = now_us()
                attrs: dict[str, Any] = {"request_id": rid}
                if error is not None:
                    attrs["error"] = error
                tracer.record_span(
                    "client",
                    f"client.{name}",
                    trace_id=root_id,
                    span_id=root_id,
                    start_us=start,
                    end_us=end,
                    attrs=attrs,
                )
                tracer.record_span(
                    "client",
                    "client.enqueue",
                    trace_id=root_id,
                    parent_id=root_id,
                    start_us=start,
                    end_us=sent,
                )
                tracer.record_span(
                    "client",
                    "client.await",
                    trace_id=root_id,
                    parent_id=root_id,
                    start_us=sent,
                    end_us=end,
                )
        if resp_type == proto.RESP_BUSY:
            raise ServerBusyError(
                "server busy: request fast-rejected by admission control "
                "(not executed; safe to retry after a backoff)"
            )
        if resp_type == proto.RESP_ERROR:
            raise proto.load_error(resp.get("error", {}))
        return resp_type, resp

    async def call_procedure(self, name: str, *params: Any) -> ProcedureResult:
        _, resp = await self.request(
            proto.REQ_CALL, {"proc": name, "params": list(params)}
        )
        return ProcedureResult(
            success=bool(resp.get("success")),
            data=from_wire(resp.get("data")),
            error=resp.get("error"),
            txn_id=resp.get("txn_id"),
            partition=resp.get("partition"),
        )

    async def execute_sql(self, sql: str, *params: Any) -> ResultSet | int:
        _, resp = await self.request(
            proto.REQ_SQL, {"sql": sql, "params": list(params)}
        )
        return from_wire(resp.get("result"))

    async def ingest(self, stream: str, rows: list[tuple[Any, ...]]) -> int:
        _, resp = await self.request(
            proto.REQ_INGEST,
            {"stream": stream, "rows": [list(row) for row in rows]},
        )
        return int(resp.get("result", 0))

    async def ping(self, echo: Any = None) -> Any:
        _, resp = await self.request(proto.REQ_PING, {"echo": echo})
        return resp.get("echo")

    async def stats(self, *, flight: bool = False) -> dict[str, Any]:
        """Scrape the server: counters, metrics snapshot, flight summary.

        Pass ``flight=True`` to also pull the flight recorder's recent-
        request ring (with span trees) as ``"flight_records"``.
        """
        payload: dict[str, Any] = {"flight": True} if flight else {}
        _, resp = await self.request(proto.REQ_STATS, payload)
        stats = {
            "server": resp.get("server", {}),
            "engine": resp.get("engine", {}),
            "metrics": resp.get("metrics"),
            "telemetry": resp.get("telemetry", {}),
        }
        if "flight_records" in resp:
            stats["flight_records"] = resp["flight_records"]
        return stats


class SyncNetClient:
    """Blocking facade over :class:`NetClient` for sync callers.

    Owns a private event loop on a daemon thread; every method forwards the
    matching coroutine with ``run_coroutine_threadsafe`` and blocks on the
    result.  Usable as a context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7077,
        *,
        timeout: float = 30.0,
        max_frame: int = proto.MAX_FRAME_BYTES,
    ) -> None:
        self.timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-net-client", daemon=True
        )
        self._thread.start()
        self._client: NetClient = self._run(
            NetClient.connect(host, port, max_frame=max_frame)
        )

    def _run(self, coro: Any) -> Any:
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(self.timeout)

    def __enter__(self) -> "SyncNetClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self) -> None:
        if self._loop.is_closed():
            return
        try:
            self._run(self._client.close())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=self.timeout)
            self._loop.close()

    def call_procedure(self, name: str, *params: Any) -> ProcedureResult:
        return self._run(self._client.call_procedure(name, *params))

    def execute_sql(self, sql: str, *params: Any) -> ResultSet | int:
        return self._run(self._client.execute_sql(sql, *params))

    def ingest(self, stream: str, rows: list[tuple[Any, ...]]) -> int:
        return self._run(self._client.ingest(stream, rows))

    def ping(self, echo: Any = None) -> Any:
        return self._run(self._client.ping(echo))

    def stats(self, *, flight: bool = False) -> dict[str, Any]:
        return self._run(self._client.stats(flight=flight))

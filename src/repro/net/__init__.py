"""``repro.net``: the TCP front door of the engine.

Everything else in the reproduction exercises the engines through
in-process calls (timed by :mod:`repro.hstore.netsim`'s simulated latency
model).  This package is the real edge: a framed wire protocol
(:mod:`repro.net.protocol`), an asyncio server multiplexing thousands of
client connections onto one engine backend with cross-client group commit
and admission control (:mod:`repro.net.server`), and a pipelining asyncio
client library plus a blocking convenience wrapper
(:mod:`repro.net.client`).

Quick start::

    # terminal 1 — serve an S-Store engine on localhost:7077
    python -m repro.net.server --port 7077 --backend sstore

    # terminal 2 — talk to it
    from repro.net.client import SyncNetClient
    with SyncNetClient("127.0.0.1", 7077) as db:
        db.execute_sql("CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR)")
        db.execute_sql("INSERT INTO t VALUES (1, 'hello')")
        print(db.execute_sql("SELECT v FROM t WHERE k = 1").rows)
"""

from repro.net.protocol import MAX_FRAME_BYTES, PROTOCOL_VERSION

__all__ = ["PROTOCOL_VERSION", "MAX_FRAME_BYTES"]

"""The asyncio TCP server: thousands of clients, one engine, one log.

Architecture (one process, two threads)::

    event-loop thread                      engine thread (1 worker)
    ─────────────────                      ────────────────────────
    accept → read loop ─┐
    accept → read loop ─┼─► commit queue ─► batch: run each request,
    accept → read loop ─┘   (coalescer)      ONE command-log flush
            ▲                                    │
            └── writer loops ◄── responses ◄─────┘  (ack after flush)

* **Framing off the event loop.** Each connection has a read loop feeding a
  :class:`~repro.net.protocol.FrameDecoder`; a malformed frame gets one
  ``RESP_PROTOCOL_ERROR`` frame and the connection is closed.  Malformed
  *semantics* on a well-formed frame (missing field, bad param type) are a
  typed ``RESP_ERROR`` response instead — only framing failures cost the
  connection.

* **Engine affinity.** The engines are not thread-safe, so every engine
  operation — requests, log flushes, stats snapshots, tracer spans — runs
  on a single dedicated executor thread.  That is also what stitches server
  spans to engine txn spans: the tracer is strictly single-threaded, and
  all its use happens on the engine thread, so engine spans nest under the
  server's ``net`` spans.

* **Group commit without timers.** The coalescer drains *everything*
  currently queued into one batch, executes the batch on the engine thread
  and flushes the command log once, then acks every response.  One idle
  client gets a batch of 1 (no added latency); 100 concurrent clients get
  large batches whose log flush is amortized across all of them — batch
  size adapts to load with no tuning knob and no timer.  An acked response
  implies the txn is in the flushed log (acked ⇒ durable).

* **Admission control, two levels.**  Globally, at most ``max_inflight``
  admitted requests exist at once; past that, requests are fast-rejected
  with ``RESP_BUSY`` *without queueing*, which is what keeps p99 bounded
  under overload.  Per connection, at most ``max_pipeline`` responses may
  be pending; past that the read loop stops dispatching *and reading*
  (frames already parsed are held back), so a slow client that stops
  reading its responses exerts TCP backpressure instead of ballooning
  server memory.  ``PING`` is admission-exempt (liveness must work under
  overload); ``STATS`` rides the normal admitted path.

* **Graceful shutdown.** ``stop()`` stops accepting, fast-fails newly
  arriving requests with a shutting-down error, waits for every admitted
  request to execute + flush + write its response, then closes sockets.

* **Telemetry plane.**  A request carrying a ``"trace"`` context is run
  with that context activated, so the client's call span, the server's
  ``net.<op>`` span, the engine/worker txn spans *and* a per-trace
  ``net.commit_batch`` span (the group-commit window the request shared)
  all land in one trace.  Requests *without* client context are head-
  sampled: 1 in ``trace_sample`` roots a server-side trace, the rest run
  with the tracer suspended and cost what an untraced engine costs — which
  is what keeps default-on telemetry under E17's overhead bar while every
  client-requested trace stays complete.  Every request also feeds the
  :class:`~repro.obs.recorder.FlightRecorder` (bounded ring + slow log,
  auto-dumped on errors when ``flight_dir`` is set), and ``http_port``
  mounts a stdlib HTTP sidecar with ``/metrics`` (Prometheus text),
  ``/metrics.json``, ``/healthz``, ``/statsz`` and ``/flight``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.errors import ConnectionClosedError, ProtocolError, ReproError
from repro.hstore.cmdlog import CommandLog
from repro.net import protocol as proto
from repro.obs.http import HttpError, ObsHttpServer
from repro.obs.recorder import DEFAULT_SLOW_US, FlightRecorder
from repro.obs.trace import NULL_TRACER, TraceCollector, TraceContext, now_us

__all__ = ["NetServer", "main"]


def _json(value: Any) -> str:
    return json.dumps(value, separators=(",", ":"), default=str)

_CLOSE = object()  # writer-loop sentinel: flush what's queued, then exit
_STOP = object()   # coalescer sentinel


class _Connection:
    """Per-connection state shared by the read loop and the writer loop."""

    __slots__ = ("id", "writer", "outbox", "inflight", "resume", "closing", "task")

    def __init__(self, conn_id: int, writer: asyncio.StreamWriter) -> None:
        self.id = conn_id
        self.writer = writer
        #: (bytes | _CLOSE, counts_toward_pipeline) items, written in order
        self.outbox: asyncio.Queue = asyncio.Queue()
        #: dispatched requests whose response has not been written yet
        self.inflight = 0
        #: set by the writer when ``inflight`` drops below the pipeline cap
        self.resume = asyncio.Event()
        self.closing = False
        #: the writer-loop task, awaited on close so queued responses land
        self.task: asyncio.Task | None = None


class _Request:
    __slots__ = (
        "conn",
        "frame_type",
        "payload",
        "submitted",
        "start_us",
        "trace_ctx",
        "trace_id",
        "span_id",
        "ok",
        "error",
    )

    def __init__(
        self,
        conn: _Connection,
        frame_type: int,
        payload: dict[str, Any],
        trace_ctx: TraceContext | None = None,
    ) -> None:
        self.conn = conn
        self.frame_type = frame_type
        self.payload = payload
        #: perf_counter at admission; ``net.request_us`` measures from here
        #: to the commit batch returning, so it includes queueing under load
        #: *and* the group-commit window the ack implies
        self.submitted = time.perf_counter()
        self.start_us = now_us()
        #: the client's ``[trace_id, span_id]`` pair, already validated
        self.trace_ctx = trace_ctx
        #: this request's server-side span, filled in by ``_run_request`` so
        #: the batch runner can hang the shared commit window under it
        self.trace_id: int | None = None
        self.span_id: int | None = None
        #: outcome, filled in by ``_run_request``; the per-request accounting
        #: (flight record, counters, latency histogram) happens on the
        #: event-loop thread afterwards, keeping the engine thread lean
        self.ok = True
        self.error: str | None = None


class NetServer:
    """Serve one engine backend over TCP to many concurrent clients.

    ``engine`` is any of the four backends (``HStoreEngine``,
    ``SStoreEngine``, ``ParallelHStoreEngine``, ``DStreamEngine``) — the
    server only needs ``call_procedure``/``execute_sql`` (and ``ingest``
    for streaming backends) plus an optional ``command_log``.

    ``group_commit_size`` raises the engine's in-process command-log group
    size so individual appends stop auto-flushing and the coalescer's
    per-batch flush is the only durability barrier.  Cluster backends keep
    their own log discipline (``_ClusterCommandLog`` is left alone —
    ``DStreamEngine`` *requires* ``log_group_size=1``); their per-batch
    flush is then a cheap no-op broadcast.
    """

    def __init__(
        self,
        engine: Any,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 256,
        max_pipeline: int = 32,
        max_frame: int = proto.MAX_FRAME_BYTES,
        group_commit_size: int = 64,
        write_high_water: int | None = None,
        http_port: int | None = None,
        flight_capacity: int = 512,
        slow_us: float = DEFAULT_SLOW_US,
        flight_dir: str | pathlib.Path | None = None,
        trace_sample: int = 64,
    ) -> None:
        if max_inflight < 1 or max_pipeline < 1:
            raise ReproError("max_inflight and max_pipeline must be >= 1")
        if trace_sample < 1:
            raise ReproError("trace_sample must be >= 1")
        self.engine = engine
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.max_pipeline = max_pipeline
        self.max_frame = max_frame
        self.group_commit_size = group_commit_size
        #: transport write buffer high-water mark; tiny values make
        #: ``drain()`` block early (used by the backpressure tests)
        self.write_high_water = write_high_water

        #: admitted requests not yet answered (global admission budget)
        self.inflight = 0
        #: always-on plain counters (mirrored to ``repro.obs`` when enabled)
        self.counters: dict[str, int] = {
            "connections_total": 0,
            "frames_in": 0,
            "frames_out": 0,
            "bytes_in": 0,
            "bytes_out": 0,
            "requests": 0,
            "busy_rejected": 0,
            "protocol_errors": 0,
            "read_pauses": 0,
            "batches": 0,
            "log_flushes": 0,
            "flushed_records": 0,
        }

        self._conns: dict[int, _Connection] = {}
        self._next_conn_id = 0
        self._handlers: set[asyncio.Task] = set()
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue | None = None
        self._coalescer: asyncio.Task | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-net-engine"
        )
        self._draining = False
        self._drained: asyncio.Event | None = None

        #: always on — recording is one dict append; the span join is lazy
        self.flight = FlightRecorder(flight_capacity, slow_us=slow_us)
        self._flight_dir = (
            pathlib.Path(flight_dir) if flight_dir is not None else None
        )
        self._flight_dumps_left = 5  # auto-dump budget; operator dumps are free
        self.http: ObsHttpServer | None = None
        self._http_port = http_port

        #: head-based sampling of *locally rooted* traces: a request that
        #: carries client trace context is always traced (the upstream
        #: sampling decision is honored), a request without one roots a
        #: server-side trace only every ``trace_sample``-th time.  Unsampled
        #: requests run with the tracer suspended, so the engine's spans
        #: skip too — the request costs what an untraced engine costs.
        self.trace_sample = trace_sample
        self._sample_clock = 0

        self._tracer = getattr(engine, "tracer", NULL_TRACER)
        #: stable tracing-on flag for threads other than the engine thread:
        #: ``tracer.enabled`` flickers during sampling suspends, so the
        #: event-loop and HTTP threads must not branch on it directly
        self._tracing = self._tracer.enabled
        metrics = getattr(engine, "metrics", None)
        self._g_conns = self._g_inflight = None
        self._h_request = self._h_batch = None
        self._metric_counters: dict[str, Any] = {}
        if metrics is not None:
            self._g_conns = metrics.gauge("net.connections", "open client connections")
            self._g_inflight = metrics.gauge(
                "net.inflight", "admitted requests awaiting a response"
            )
            self._h_request = metrics.histogram(
                "net.request_us", "admission-to-commit latency (µs)"
            )
            self._h_batch = metrics.histogram(
                "net.commit_batch", "requests coalesced per commit batch"
            )
            for name in self.counters:
                self._metric_counters[name] = metrics.counter(
                    f"net.{name}", f"network front door: {name}"
                )
        # bound once for the per-request hot path (skips the dict lookup
        # `_count` does; "requests" is the only per-request counter)
        self._c_requests = self._metric_counters.get("requests")
        # batch the engine's per-txn metric observation too, drained with
        # the rest of the per-request accounting off the engine thread
        self._flush_txn_metrics = None
        if metrics is not None and hasattr(engine, "defer_txn_metrics"):
            engine.defer_txn_metrics()
            self._flush_txn_metrics = engine.flush_txn_metrics

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind, start accepting, and start the commit coalescer."""
        log = getattr(self.engine, "command_log", None)
        if isinstance(log, CommandLog) and self.group_commit_size > log.group_size:
            # raise the auto-flush threshold so the coalescer's explicit
            # per-batch flush is the only flush (the group-commit mechanism)
            log.group_size = self.group_commit_size
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._drained = asyncio.Event()
        self._draining = False
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port, backlog=2048
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._coalescer = self._loop.create_task(self._commit_loop())
        if self._http_port is not None:
            self.http = ObsHttpServer(
                self._http_routes(), host=self.host, port=self._http_port
            ).start()

    async def stop(self) -> None:
        """Graceful shutdown: drain in-flight txns, then close sockets."""
        if self._server is None:
            return
        if self.http is not None:
            # stop the scrape sidecar first: its engine-hopping routes must
            # not race the executor shutdown below
            self.http.stop()
            self.http = None
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        if self.inflight > 0:
            await self._drained.wait()
        assert self._queue is not None
        self._queue.put_nowait(_STOP)
        if self._coalescer is not None:
            await self._coalescer
        self._executor.shutdown(wait=True)
        if self._flush_txn_metrics is not None:
            # nothing is appending anymore; catch any tail observations
            self._flush_txn_metrics()
        # every admitted response is now sitting in an outbox; flush the
        # writers before tearing the sockets down
        for conn in list(self._conns.values()):
            conn.outbox.put_nowait((_CLOSE, False))
            if conn.task is not None:
                try:
                    # a wedged client that never reads could block its
                    # writer in drain() forever; don't let it wedge shutdown
                    await asyncio.wait_for(asyncio.shield(conn.task), timeout=5.0)
                except Exception:
                    conn.task.cancel()
            conn.writer.close()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._server = None

    # ------------------------------------------------------------------
    # per-connection loops (event-loop thread)
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            writer.close()
            return
        if self.write_high_water is not None:
            writer.transport.set_write_buffer_limits(high=self.write_high_water)
        self._next_conn_id += 1
        conn = _Connection(self._next_conn_id, writer)
        self._conns[conn.id] = conn
        self._handlers.add(asyncio.current_task())
        self._count("connections_total")
        if self._g_conns is not None:
            self._g_conns.set(len(self._conns))
        conn.task = asyncio.get_running_loop().create_task(self._writer_loop(conn))
        try:
            await self._read_loop(reader, conn)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            conn.closing = True
            conn.outbox.put_nowait((_CLOSE, False))
            try:
                await conn.task
            except (Exception, asyncio.CancelledError):
                conn.task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._conns.pop(conn.id, None)
            self._handlers.discard(asyncio.current_task())
            if self._g_conns is not None:
                self._g_conns.set(len(self._conns))

    async def _read_loop(
        self, reader: asyncio.StreamReader, conn: _Connection
    ) -> None:
        decoder = proto.FrameDecoder(self.max_frame)
        pending: deque[tuple[int, dict[str, Any]]] = deque()
        while True:
            try:
                while pending and conn.inflight < self.max_pipeline:
                    frame_type, payload = pending.popleft()
                    self._dispatch(conn, frame_type, payload)
            except ProtocolError as exc:
                self._protocol_error(conn, exc)
                return
            if pending:
                # pipeline cap reached with frames still parsed: pause both
                # dispatching and reading until the writer drains responses
                # (conn.inflight only changes inside this event loop, so the
                # check-clear-wait sequence cannot race)
                self._count("read_pauses")
                conn.resume.clear()
                await conn.resume.wait()
                if conn.closing:
                    return
                continue
            data = await reader.read(65536)
            if not data:
                return
            self.counters["bytes_in"] += len(data)
            try:
                frames = decoder.feed(data)
            except ProtocolError as exc:
                self._protocol_error(conn, exc)
                return
            self._count("frames_in", len(frames))
            pending.extend(frames)

    def _protocol_error(self, conn: _Connection, exc: ProtocolError) -> None:
        self._count("protocol_errors")
        self._send(conn, proto.RESP_PROTOCOL_ERROR, {"message": str(exc)}, counts=False)

    async def _writer_loop(self, conn: _Connection) -> None:
        writer = conn.writer
        try:
            while True:
                items = [await conn.outbox.get()]
                while True:
                    try:
                        items.append(conn.outbox.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                closing = False
                completed = 0
                frames = 0
                chunk = bytearray()
                for data, counts in items:
                    if data is _CLOSE:
                        closing = True
                        break
                    chunk += data
                    frames += 1
                    if counts:
                        completed += 1
                if chunk:
                    writer.write(bytes(chunk))
                    self.counters["bytes_out"] += len(chunk)
                    self._count("frames_out", frames)
                    # a slow client blocks here once its socket buffer
                    # fills; inflight stays pinned, so its read loop pauses
                    await writer.drain()
                if completed:
                    conn.inflight -= completed
                    if conn.inflight < self.max_pipeline:
                        conn.resume.set()
                if closing:
                    return
        except (ConnectionResetError, BrokenPipeError, OSError):
            return
        finally:
            # the peer may be gone with the read loop paused at the
            # pipeline cap — wake it so the handler can finish
            conn.closing = True
            conn.resume.set()

    # ------------------------------------------------------------------
    # dispatch + admission control (event-loop thread)
    # ------------------------------------------------------------------

    def _dispatch(
        self, conn: _Connection, frame_type: int, payload: dict[str, Any]
    ) -> None:
        rid = payload.get("id")
        if rid is None:
            raise ProtocolError(
                f"request frame {proto.frame_name(frame_type)!r} has no 'id'"
            )
        if frame_type == proto.REQ_PING:
            # admission-exempt liveness probe: answered inline, even when
            # the engine is saturated
            self._send(
                conn,
                proto.RESP_PONG,
                {"id": rid, "echo": payload.get("echo")},
                counts=False,
            )
            return
        if self._draining:
            error = proto.dump_error(
                ConnectionClosedError("server is shutting down"),
                where=f"net conn {conn.id}",
            )
            self._send(
                conn, proto.RESP_ERROR, {"id": rid, "error": error}, counts=False
            )
            return
        if self.inflight >= self.max_inflight:
            # fast-reject: the request is NOT queued and NOT executed, so
            # overload cannot build an unbounded backlog (bounded p99)
            self._count("busy_rejected")
            self._send(conn, proto.RESP_BUSY, {"id": rid}, counts=False)
            return
        self.inflight += 1
        conn.inflight += 1
        if self._g_inflight is not None:
            self._g_inflight.set(self.inflight)
        trace_ctx = None
        if self._tracing:
            # advisory field: malformed values are dropped, not rejected
            trace = payload.get("trace")
            if (
                isinstance(trace, list)
                and len(trace) == 2
                and all(isinstance(part, int) and part >= 0 for part in trace)
            ):
                trace_ctx = TraceContext(trace[0], trace[1])
        assert self._queue is not None
        self._queue.put_nowait(_Request(conn, frame_type, payload, trace_ctx))

    def _send(
        self, conn: _Connection, frame_type: int, payload: dict[str, Any], counts: bool
    ) -> None:
        self._send_bytes(
            conn,
            proto.encode_frame(frame_type, payload, max_frame=self.max_frame),
            counts,
        )

    def _send_bytes(self, conn: _Connection, data: bytes, counts: bool) -> None:
        if conn.closing:
            return
        conn.outbox.put_nowait((data, counts))

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        counter = self._metric_counters.get(name)
        if counter is not None:
            counter.inc(amount)

    # ------------------------------------------------------------------
    # commit coalescer (event-loop thread) + batch runner (engine thread)
    # ------------------------------------------------------------------

    async def _commit_loop(self) -> None:
        assert self._queue is not None and self._loop is not None
        stop = False
        while not stop:
            item = await self._queue.get()
            if item is _STOP:
                break
            batch = [item]
            while True:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is _STOP:
                    stop = True
                    break
                batch.append(nxt)
            try:
                responses = await self._loop.run_in_executor(
                    self._executor, self._run_batch, batch
                )
            except Exception as exc:  # engine thread died — answer anyway
                responses = []
                for req in batch:
                    error = proto.dump_error(
                        exc, where=f"net conn {req.conn.id}, commit batch"
                    )
                    responses.append(
                        (
                            req.conn,
                            proto.encode_frame(
                                proto.RESP_ERROR,
                                {"id": req.payload.get("id"), "error": error},
                                max_frame=self.max_frame,
                            ),
                        )
                    )
                self.flight.record(
                    kind="batch",
                    name=f"{len(batch)} request(s)",
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                )
                self._auto_dump("crash")
            else:
                self._account_batch(batch)
            for conn, data in responses:
                self._send_bytes(conn, data, counts=True)
            self.inflight -= len(batch)
            if self._g_inflight is not None:
                self._g_inflight.set(self.inflight)
            if self._draining and self.inflight == 0:
                assert self._drained is not None
                self._drained.set()

    def _account_batch(self, batch: list[_Request]) -> None:
        """Per-request accounting, deliberately OFF the engine thread.

        The engine thread is the partition executor — the scarce resource —
        so the flight record, request counter, and latency histogram are
        written here on the event-loop thread, after the commit batch
        returns and before the responses go out (a client that has its
        response is guaranteed to find its flight record).  Measured from
        admission to commit-batch return, ``net.request_us`` covers the
        group-commit window the ack implies.
        """
        if self._flush_txn_metrics is not None:
            self._flush_txn_metrics()
        perf = time.perf_counter()
        for req in batch:
            self.counters["requests"] += 1
            if self._c_requests is not None:
                self._c_requests.inc()
            duration_us = (perf - req.submitted) * 1e6
            if self._h_request is not None:
                self._h_request.observe(duration_us)
            payload = req.payload
            self.flight.record(
                kind=proto.frame_name(req.frame_type),
                name=payload.get("proc")
                or payload.get("stream")
                or payload.get("sql"),
                conn=req.conn.id,
                trace_id=req.trace_id,
                start_us=req.start_us,
                duration_us=duration_us,
                ok=req.ok,
                error=req.error,
            )
            if not req.ok:
                self._auto_dump("error")

    def _run_batch(
        self, batch: list[_Request]
    ) -> list[tuple[_Connection, bytes]]:
        """Execute one coalesced batch on the engine thread, flush once."""
        self._count("batches")
        out = []
        if not self._tracing:
            for req in batch:
                out.append((req.conn, self._run_request(req)))
            self._flush_log()
        else:
            # the batch is shared by requests from *different* traces, so it
            # cannot be one stack-nested span; run the requests, then record
            # one out-of-band commit-window span per distinct trace
            batch_start = now_us()
            for req in batch:
                out.append((req.conn, self._run_request(req)))
            flush_start = now_us()
            flushed = self._flush_log()
            batch_end = now_us()
            self._record_batch_spans(batch, batch_start, flush_start, batch_end, flushed)
        if self._h_batch is not None:
            self._h_batch.observe(len(batch))
        return out

    def _flush_log(self) -> int:
        """The group-commit barrier: one log flush for the whole batch."""
        log = getattr(self.engine, "command_log", None)
        if log is not None and getattr(log, "enabled", False):
            flushed = log.flush()
            if flushed:
                self._count("log_flushes")
                self._count("flushed_records", flushed)
            return flushed
        return 0

    def _record_batch_spans(
        self,
        batch: list[_Request],
        start_us: int,
        flush_start_us: int,
        end_us: int,
        flushed: int,
    ) -> None:
        """One ``net.commit_batch`` span per distinct trace in the batch.

        Every request in the batch shared the same commit window (its ack
        implies the shared flush), so each trace gets the full-window span,
        parented under that request's server span.
        """
        seen: set[int] = set()
        for req in batch:
            if req.span_id is None or req.trace_id in seen:
                continue
            seen.add(req.trace_id)
            self._tracer.record_span(
                "net",
                "net.commit_batch",
                trace_id=req.trace_id,
                parent_id=req.span_id,
                start_us=start_us,
                end_us=end_us,
                attrs={
                    "requests": len(batch),
                    "flushed_records": flushed,
                    "flush_us": end_us - flush_start_us,
                },
            )

    def _run_request(self, req: _Request) -> bytes:
        """Run one request on the engine thread; always returns a frame."""
        rid = req.payload.get("id")
        name = proto.frame_name(req.frame_type)
        tracer = self._tracer
        suspended = False
        traced = tracer.enabled
        if traced:
            if req.trace_ctx is None:
                # no upstream decision: sample locally rooted traces
                sampled = self._sample_clock % self.trace_sample == 0
                self._sample_clock += 1
                if not sampled:
                    # inline Tracer.suspend() — this runs per unsampled
                    # request, the single hottest telemetry branch
                    tracer.enabled = False
                    suspended = True
                    traced = False
            if traced:
                # adopt the client's context (or clear a predecessor's): the
                # ``net.<op>`` span then roots under the client's call span,
                # and every engine span nests inside it via the tracer stack
                tracer.activate(req.trace_ctx)
        try:
            if traced:
                with tracer.span("net", f"net.{name}", conn=req.conn.id) as span:
                    req.trace_id = span.trace_id
                    req.span_id = span.span_id
                    frame_type, payload = self._execute(req, rid)
            else:
                frame_type, payload = self._execute(req, rid)
            data = proto.encode_frame(frame_type, payload, max_frame=self.max_frame)
        except Exception as exc:
            req.ok = False
            req.error = f"{type(exc).__name__}: {exc}"
            error = proto.dump_error(
                exc, where=f"net conn {req.conn.id}, {name} {req.payload.get('proc') or req.payload.get('sql') or req.payload.get('stream') or ''!r}"
            )
            data = proto.encode_frame(
                proto.RESP_ERROR,
                {"id": rid, "error": error},
                max_frame=self.max_frame,
            )
        finally:
            if traced:
                tracer.deactivate()
            elif suspended:
                tracer.enabled = True  # inline Tracer.resume()
        return data

    def _execute(self, req: _Request, rid: Any) -> tuple[int, dict[str, Any]]:
        payload = req.payload
        engine = self.engine
        if req.frame_type == proto.REQ_CALL:
            proc = payload.get("proc")
            params = payload.get("params", [])
            if not isinstance(proc, str) or not isinstance(params, list):
                raise ProtocolError("call needs a string 'proc' and array 'params'")
            result = engine.call_procedure(proc, *params)
            return proto.RESP_RESULT, {
                "id": rid,
                "success": result.success,
                "data": proto.to_wire(result.data),
                "error": result.error,
                "txn_id": result.txn_id,
                "partition": result.partition,
            }
        if req.frame_type == proto.REQ_SQL:
            sql = payload.get("sql")
            params = payload.get("params", [])
            if not isinstance(sql, str) or not isinstance(params, list):
                raise ProtocolError("sql needs a string 'sql' and array 'params'")
            # statement router: the engines keep DDL on a separate entry
            # point (execute_ddl), so route on the leading keyword the way
            # a real server's statement dispatcher would
            head = sql.split(maxsplit=1)[0].upper() if sql.split() else ""
            if head in ("CREATE", "DROP", "ALTER"):
                engine.execute_ddl(sql)
                result: Any = None
            else:
                result = engine.execute_sql(sql, *params)
            return proto.RESP_RESULT, {"id": rid, "result": proto.to_wire(result)}
        if req.frame_type == proto.REQ_INGEST:
            stream = payload.get("stream")
            rows = payload.get("rows", [])
            if not isinstance(stream, str) or not isinstance(rows, list):
                raise ProtocolError("ingest needs a string 'stream' and array 'rows'")
            ingest = getattr(engine, "ingest", None)
            if ingest is None:
                raise ReproError(
                    f"backend {type(engine).__name__} does not support stream "
                    f"ingest (not a streaming engine)"
                )
            count = ingest(stream, [tuple(row) for row in rows])
            return proto.RESP_RESULT, {"id": rid, "result": count}
        if req.frame_type == proto.REQ_STATS:
            stats = self._stats_payload(flight=bool(payload.get("flight")))
            stats["id"] = rid
            return proto.RESP_STATS, stats
        raise ProtocolError(f"unexpected request frame {proto.frame_name(req.frame_type)!r}")

    def server_stats(self) -> dict[str, Any]:
        stats: dict[str, Any] = dict(self.counters)
        stats["connections_open"] = len(self._conns)
        stats["inflight"] = self.inflight
        stats["max_inflight"] = self.max_inflight
        stats["max_pipeline"] = self.max_pipeline
        stats["group_commit_size"] = self.group_commit_size
        return stats

    # ------------------------------------------------------------------
    # telemetry plane: stats scrape, flight recorder, HTTP sidecar
    # ------------------------------------------------------------------

    def _stats_payload(self, *, flight: bool = False) -> dict[str, Any]:
        """The full observability scrape.  Engine thread only."""
        stats = self.engine.stats  # cluster backends broadcast here
        snap = stats.snapshot() if hasattr(stats, "snapshot") else dict(stats)
        metrics = getattr(self.engine, "metrics", None)
        telemetry: dict[str, Any] = {"flight": self.flight.summary()}
        if metrics is not None:
            skew = getattr(self.engine, "partition_skew", None)
            if skew is not None:
                telemetry["partition_skew"] = skew()
            health = getattr(self.engine, "stream_health", None)
            if health is not None:
                telemetry["stream_health"] = health()
        out: dict[str, Any] = {
            "server": self.server_stats(),
            "engine": snap,
            "metrics": metrics.to_json() if metrics is not None else None,
            "telemetry": telemetry,
        }
        if flight:
            out["flight_records"] = self.flight.to_payload(
                collector=self._collector()
            )
        return out

    def _collector(self) -> TraceCollector | None:
        return self._tracer.collector if self._tracing else None

    def _auto_dump(self, reason: str) -> None:
        """Bounded error/crash flight dump (operator dumps don't count)."""
        if self._flight_dir is None or self._flight_dumps_left <= 0:
            return
        self._flight_dumps_left -= 1
        try:
            seq = 5 - self._flight_dumps_left
            self.flight.dump(
                self._flight_dir / f"flight-{reason}-{seq:02d}.jsonl",
                collector=self._collector(),
                reason=reason,
            )
        except OSError:
            pass  # a full disk must not take the data path down with it

    def _hop(self, fn: Callable[[], Any], timeout: float = 5.0) -> Any:
        """Run ``fn`` on the engine thread (routes must not touch it directly)."""
        return self._executor.submit(fn).result(timeout)

    def _http_routes(self) -> dict[str, Any]:
        def metrics_registry() -> Any:
            registry = getattr(self.engine, "metrics", None)
            if registry is None:
                raise HttpError(
                    404, "metrics are off; start the server with --obs"
                )
            return registry

        def metrics_text() -> tuple[str, str]:
            registry = metrics_registry()
            return (
                "text/plain; version=0.0.4; charset=utf-8",
                self._hop(registry.to_prometheus),
            )

        def metrics_json() -> tuple[str, str]:
            registry = metrics_registry()
            return "application/json", _json(self._hop(registry.to_json))

        def healthz() -> tuple[str, str]:
            # answered from plain counters, never hops to the engine: the
            # liveness probe must work even when the engine is wedged
            return "application/json", _json(
                {
                    "ok": True,
                    "draining": self._draining,
                    "inflight": self.inflight,
                    "connections": len(self._conns),
                }
            )

        def statsz() -> tuple[str, str]:
            return "application/json", _json(self._hop(self._stats_payload))

        def flight() -> tuple[str, str]:
            records = self._hop(
                lambda: self.flight.to_payload(collector=self._collector())
            )
            return "application/json", _json(
                {"flight": self.flight.summary(), "records": records}
            )

        return {
            "/metrics": metrics_text,
            "/metrics.json": metrics_json,
            "/healthz": healthz,
            "/statsz": statsz,
            "/flight": flight,
        }


# ---------------------------------------------------------------------------
# CLI: python -m repro.net.server
# ---------------------------------------------------------------------------


def _build_engine(args: argparse.Namespace) -> Any:
    obs = None
    if args.obs:
        from repro.obs.config import ObsConfig

        obs = ObsConfig(tracing=True, metrics=True)
    durability = not args.no_durability
    if args.backend == "hstore":
        from repro.hstore.engine import HStoreEngine

        return HStoreEngine(command_logging=durability, obs=obs)
    if args.backend == "sstore":
        from repro.core.engine import SStoreEngine

        return SStoreEngine(command_logging=durability, obs=obs)
    if args.backend == "parallel":
        from repro.parallel.engine import ParallelHStoreEngine

        return ParallelHStoreEngine(
            args.workers,
            log_group_size=args.group_commit,
            command_logging=durability,
            obs=obs,
        )
    if args.backend == "dstream":
        from repro.dstream.engine import DStreamEngine

        return DStreamEngine(
            args.workers, command_logging=durability, obs=obs
        )
    raise ReproError(f"unknown backend {args.backend!r}")


async def _serve(engine: Any, args: argparse.Namespace) -> None:
    server = NetServer(
        engine,
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        max_pipeline=args.max_pipeline,
        group_commit_size=args.group_commit,
        http_port=args.http_port,
        slow_us=args.slow_us,
        flight_dir=args.flight_dir,
        trace_sample=args.trace_sample,
    )
    await server.start()
    if not args.quiet:
        print(
            f"repro.net: serving {args.backend} on {server.host}:{server.port} "
            f"(max_inflight={server.max_inflight}, "
            f"group_commit={server.group_commit_size})",
            flush=True,
        )
        if server.http is not None:
            print(
                f"repro.net: telemetry at {server.http.url}/metrics "
                f"(/metrics.json /healthz /statsz /flight)",
                flush=True,
            )
    try:
        await asyncio.Event().wait()
    finally:
        await server.stop()
        engine.shutdown()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.server",
        description="Serve a repro engine over TCP with the repro.net protocol.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7077, help="0 picks a free port")
    parser.add_argument(
        "--backend",
        choices=("hstore", "sstore", "parallel", "dstream"),
        default="sstore",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="cluster size (parallel/dstream)"
    )
    parser.add_argument(
        "--group-commit",
        type=int,
        default=64,
        help="group-commit batch ceiling (command-log group size)",
    )
    parser.add_argument("--max-inflight", type=int, default=256)
    parser.add_argument("--max-pipeline", type=int, default=32)
    parser.add_argument(
        "--no-durability", action="store_true", help="disable command logging"
    )
    parser.add_argument(
        "--obs", action="store_true", help="enable repro.obs tracing + metrics"
    )
    parser.add_argument(
        "--http-port",
        type=int,
        default=None,
        help="mount the HTTP telemetry sidecar on this port (0 picks a free one)",
    )
    parser.add_argument(
        "--slow-us",
        type=float,
        default=DEFAULT_SLOW_US,
        help="flight-recorder slow-request threshold in microseconds",
    )
    parser.add_argument(
        "--flight-dir",
        default=None,
        help="auto-dump flight-recorder JSONL here on errors/crashes",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=64,
        help="root a server-side trace for 1 in N requests that carry no "
        "client trace context (client-traced requests are always traced)",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    engine = _build_engine(args)
    try:
        asyncio.run(_serve(engine, args))
    except KeyboardInterrupt:
        if not args.quiet:
            print("repro.net: interrupted — stopped", flush=True)


if __name__ == "__main__":
    main()

"""S-Store reproduction: a streaming NewSQL system.

This package reimplements, in pure Python, the system described in
*"S-Store: A Streaming NewSQL System for Big Velocity Applications"*
(Cetintemel et al., PVLDB 7(13), 2014): ACID stream processing built by
extending an H-Store-style main-memory OLTP engine with streams, windows,
triggers and transaction workflows.

Quickstart::

    from repro import SStoreEngine, StreamProcedure, WorkflowSpec

    engine = SStoreEngine()
    engine.execute_ddl("CREATE STREAM readings (sensor INTEGER, value FLOAT)")
    engine.execute_ddl("CREATE TABLE totals (sensor INTEGER, total FLOAT, PRIMARY KEY (sensor))")

    class Accumulate(StreamProcedure):
        name = "accumulate"
        statements = {
            "get": "SELECT total FROM totals WHERE sensor = ?",
            "ins": "INSERT INTO totals VALUES (?, ?)",
            "upd": "UPDATE totals SET total = ? WHERE sensor = ?",
        }
        def run(self, ctx):
            for sensor, value in ctx.batch:
                current = ctx.execute("get", sensor).scalar()
                if current is None:
                    ctx.execute("ins", sensor, value)
                else:
                    ctx.execute("upd", current + value, sensor)

    engine.register_procedure(Accumulate)
    wf = WorkflowSpec("totals")
    wf.add_node("accumulate", input_stream="readings", batch_size=2)
    engine.deploy_workflow(wf)

    engine.ingest("readings", [(1, 0.5), (2, 1.5)])   # push-based: one call
    print(engine.execute_sql("SELECT * FROM totals ORDER BY sensor").rows)

See ``README.md`` for the architecture overview and ``DESIGN.md`` for the
paper-to-module map.
"""

from repro.core import (
    Batch,
    SStoreEngine,
    StreamContext,
    StreamProcedure,
    WorkflowSpec,
    crash_and_recover_streaming,
    state_fingerprint,
    validate_schedule,
)
from repro.errors import ReproError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    RecoveryEquivalenceChecker,
)
from repro.hstore import (
    ClientSession,
    EngineStats,
    HStoreEngine,
    LatencyModel,
    LogicalClock,
    ProcedureContext,
    ProcedureResult,
    ResultSet,
    SqlType,
    StoredProcedure,
    crash_and_recover,
)
from repro.parallel import ParallelHStoreEngine

__version__ = "1.0.0"

__all__ = [
    "Batch",
    "SStoreEngine",
    "StreamContext",
    "StreamProcedure",
    "WorkflowSpec",
    "crash_and_recover_streaming",
    "state_fingerprint",
    "validate_schedule",
    "ReproError",
    "FaultInjector",
    "FaultPlan",
    "RecoveryEquivalenceChecker",
    "ClientSession",
    "EngineStats",
    "HStoreEngine",
    "LatencyModel",
    "LogicalClock",
    "ParallelHStoreEngine",
    "ProcedureContext",
    "ProcedureResult",
    "ResultSet",
    "SqlType",
    "StoredProcedure",
    "crash_and_recover",
    "__version__",
]

"""Distributed streaming: S-Store workflows on the partition cluster.

``repro.dstream`` schedules workflow transaction executions across the
multi-process partition cluster from :mod:`repro.parallel`:

* :class:`StreamShardEngine` — one per worker process — runs the share of
  each workflow placed on that worker (a full :class:`SStoreEngine` whose
  distribution hooks route cross-worker emissions to a dispatch buffer).
* :class:`DStreamEngine` — the coordinator facade — deploys workflows with
  a placement, routes ingests to the border worker, pumps cross-worker
  stream tasks between workers, and enforces the paper's guarantees
  cluster-wide (TE order, per-stream batch order, exactly-once recovery).

See ``docs/INTERNALS.md`` §11 for the model and its failure semantics.
"""

from repro.dstream.engine import DStreamEngine
from repro.dstream.shard import StreamShardEngine

__all__ = ["DStreamEngine", "StreamShardEngine"]

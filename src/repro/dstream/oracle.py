"""The differential ordering oracle.

Runs of the *same* workflow script on a single-process
:class:`~repro.core.engine.SStoreEngine` and on a
:class:`~repro.dstream.engine.DStreamEngine` cluster must be
indistinguishable in two observables:

* **committed state** — the canonical ``{table: sorted rows}`` view
  (cluster-side, workflow-owned tables live on one worker and replicated
  reference tables contribute a single copy);
* **per-stream commit order** — the exact sequence of input batches each
  stream's consuming TEs committed, in order.

This module compares those observables between any two engines that expose
them, producing a :class:`DifferentialReport` the test suite asserts on.

Caveat: a sharded OLTP table whose per-worker shards are coincidentally
identical is folded to one copy like a replicated table; the test
workloads avoid that degenerate shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "DifferentialReport",
    "commit_order_of",
    "differential_report",
    "logical_state_of",
]


def logical_state_of(engine: Any) -> dict[str, list]:
    """Canonical ``{table: sorted rows}`` for either deployment."""
    cluster = getattr(engine, "logical_state", None)
    if cluster is not None:
        return cluster()
    return {
        name: sorted(table.rows())
        for name, table in engine.partitions[0].ee.tables().items()
    }


def commit_order_of(engine: Any) -> dict[str, list[tuple]]:
    """Per-stream committed batch order for either deployment."""
    cluster = getattr(engine, "stream_commit_order", None)
    if cluster is not None:
        return cluster()
    order: dict[str, list[tuple]] = {}
    for stream_name, rows in engine.stream_commits:
        order.setdefault(stream_name, []).append(
            tuple(tuple(row) for row in rows)
        )
    return order


@dataclass
class DifferentialReport:
    """Outcome of one reference-vs-observed comparison."""

    equivalent: bool
    state_mismatches: list[str] = field(default_factory=list)
    order_mismatches: list[str] = field(default_factory=list)

    def summary(self) -> str:
        if self.equivalent:
            return "EQUIVALENT"
        return (
            f"DIVERGED: state mismatches on tables "
            f"{self.state_mismatches or '[]'}, commit-order mismatches on "
            f"streams {self.order_mismatches or '[]'}"
        )


def differential_report(reference: Any, observed: Any) -> DifferentialReport:
    """Compare committed state and per-stream commit order of two engines."""
    ref_state = logical_state_of(reference)
    obs_state = logical_state_of(observed)
    state_mismatches = sorted(
        name
        for name in set(ref_state) | set(obs_state)
        if ref_state.get(name) != obs_state.get(name)
    )
    ref_order = commit_order_of(reference)
    obs_order = commit_order_of(observed)
    order_mismatches = sorted(
        stream
        for stream in set(ref_order) | set(obs_order)
        if ref_order.get(stream) != obs_order.get(stream)
    )
    return DifferentialReport(
        equivalent=not state_mismatches and not order_mismatches,
        state_mismatches=state_mismatches,
        order_mismatches=order_mismatches,
    )

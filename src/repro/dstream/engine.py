"""The distributed streaming coordinator.

:class:`DStreamEngine` extends the multi-process OLTP facade with the
paper's streaming surface: deploy workflows with a node → worker placement,
push batches into border streams, advance the cluster-wide logical clock,
and drain workflow work to quiescence — while enforcing the S-Store
guarantees across processes:

* **TE order within a workflow** — each worker's shard engine schedules its
  local TEs with the standard S-Store scheduler; cross-worker edges are
  sequenced by the per-stream ordering token.
* **Stream order across batches** — the producer stamps every dispatched
  batch with a monotone per-stream token, and the coordinator pump forwards
  dispatches to the stream's single authoritative worker in token order.
* **Exactly-once on crash/recover** — dispatched tasks are *re-derived*
  from the producer's command log (upstream backup, the paper's §4
  mechanism) and deduplicated by the receiver's watermark; there is no
  acknowledgement protocol to lose.

``log_group_size`` is forced to 1: every applied cross-worker task must be
durable on its receiver before the next client op completes, otherwise a
crash could lose a task that the producer will never re-send (its own log
already covered it with an earlier token).
"""

from __future__ import annotations

import time
from typing import Any

from repro.core.engine import _TICK_RECORD
from repro.core.workflow import WorkflowSpec
from repro.dstream.shard import _TASK_RECORD
from repro.errors import (
    PartitionError,
    ReproError,
    StreamingError,
    UnknownObjectError,
    WorkflowError,
)
from repro.hstore.executor import ResultSet
from repro.hstore.partition import route_value
from repro.hstore.procedure import ProcedureResult
from repro.obs.config import ObsConfig
from repro.parallel import messages as msg
from repro.parallel.engine import ParallelHStoreEngine

__all__ = ["DStreamEngine"]


class DStreamEngine(ParallelHStoreEngine):
    """N worker processes, each running a :class:`StreamShardEngine`."""

    _ENGINE_KIND = "dstream"

    def __init__(
        self,
        workers: int = 2,
        *,
        log_group_size: int = 1,
        snapshot_interval: int | None = None,
        command_logging: bool = True,
        obs: ObsConfig | None = None,
    ) -> None:
        if log_group_size != 1:
            raise ReproError(
                f"DStreamEngine requires log_group_size=1 (got "
                f"{log_group_size}): a group-buffered log could lose an "
                f"applied cross-worker stream task that its producer will "
                f"never re-send"
            )
        super().__init__(
            workers,
            log_group_size=1,
            snapshot_interval=snapshot_interval,
            command_logging=command_logging,
            obs=obs,
        )
        #: workflow name → the (unfinalized, coordinator-side) spec
        self.workflows: dict[str, WorkflowSpec] = {}
        #: workflow name → routing info gathered at deploy time
        self._workflow_info: dict[str, dict[str, Any]] = {}
        #: border stream → worker running its border procedure
        self._border_worker: dict[str, int] = {}
        #: stream → authoritative worker (the consumer's worker)
        self._stream_worker: dict[str, int] = {}
        #: cluster-wide tick sequence number (broadcast dedup)
        self._tick_seq = 0
        #: stream-health instrument caches (populated lazily when obs is on)
        self._stream_lag_gauges: dict[str, Any] = {}
        self._stream_depth_gauges: dict[int, Any] = {}
        self._stream_e2e_hists: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def deploy_workflow(
        self, spec: WorkflowSpec, placement: dict[str, int] | None = None
    ) -> WorkflowSpec:
        """Deploy a workflow across the cluster.

        Default placement co-locates every node on the workflow's *home
        worker* (hash of the workflow name — the routing rule the OLTP
        router uses for keys).  ``placement`` overrides per node; workers
        validate that split placements are legal (no shared writable
        tables, one worker per stream's consumers).
        """
        self._require_alive()
        if spec.name in self.workflows:
            raise WorkflowError(f"workflow {spec.name!r} already deployed")
        home = route_value(spec.name, len(self.workers))
        node_placement: dict[str, int] = {}
        for name in spec.nodes:
            wid = home if placement is None else placement.get(name, home)
            if not 0 <= wid < len(self.workers):
                raise WorkflowError(
                    f"workflow {spec.name!r}: node {name!r} placed on "
                    f"worker {wid}, cluster has {len(self.workers)}"
                )
            node_placement[name] = wid
        # every worker receives (a pickled copy of) the unfinalized spec and
        # finalizes locally; the reply carries the routing info
        infos = self._broadcast(msg.OP_DEPLOY_WORKFLOW, (spec, node_placement))
        info = infos[0]
        self.workflows[info["workflow"]] = spec
        self._workflow_info[info["workflow"]] = {
            "placement": dict(node_placement),
            **info,
        }
        self._border_worker.update(info["border_streams"])
        self._stream_worker.update(info["stream_worker"])
        return spec

    def workflow_placement(self, name: str) -> dict[str, Any]:
        try:
            return self._workflow_info[name.lower()]
        except KeyError:
            raise UnknownObjectError(f"no workflow named {name!r}") from None

    # ------------------------------------------------------------------
    # Streaming client surface
    # ------------------------------------------------------------------

    def ingest(self, stream_name: str, rows: list[tuple[Any, ...]]) -> int:
        """Push tuples into a border stream (routed to its border worker)."""
        self._require_alive()
        stream_name = stream_name.lower()
        if not rows:
            return 0
        wid = self._border_worker.get(stream_name)
        if wid is None:
            raise StreamingError(
                f"no deployed workflow consumes border stream "
                f"{stream_name!r}; deploy the workflow before ingesting "
                f"(the cluster does not buffer unconsumed ingests)"
            )
        self.stats_local.client_pe_roundtrips += 1
        started_ns = time.perf_counter_ns() if self.metrics is not None else 0
        reply = self._rpc(
            self.workers[wid],
            msg.OP_INGEST,
            (stream_name, [tuple(row) for row in rows]),
        )
        self._pump(reply["dispatches"])
        if self.metrics is not None:
            # ingest() returns only after _pump has chased every dispatch to
            # a committed downstream TE, so this histogram really is the
            # ingest→downstream-commit end-to-end latency
            histogram = self._stream_e2e_hists.get(stream_name)
            if histogram is None:
                histogram = self.metrics.histogram(
                    "stream.e2e_us",
                    "ingest→downstream-commit end-to-end latency (µs)",
                    stream=stream_name,
                )
                self._stream_e2e_hists[stream_name] = histogram
            histogram.observe((time.perf_counter_ns() - started_ns) / 1000.0)
        return reply["accepted"]

    def advance_time(self, ticks: int = 1) -> int:
        """Advance every worker's logical clock by the same ticks.

        The broadcast carries a sequence number so a retried tick (client
        resumption after a mid-broadcast crash) applies exactly once per
        worker.
        """
        self._require_alive()
        self._tick_seq += 1
        replies = self._broadcast(msg.OP_TICK, (ticks, self._tick_seq))
        for reply in replies:
            self._pump(reply["dispatches"])
        return replies[0]["now"]

    def run_until_quiescent(self) -> int:
        """Drain every worker and pump cross-worker dispatches until the
        whole cluster is quiescent.  Returns total TEs executed."""
        self._require_alive()
        executed = 0
        while True:
            replies = self._broadcast(msg.OP_WF_DRAIN)
            round_executed = sum(reply["executed"] for reply in replies)
            executed += round_executed
            dispatches = [
                task for reply in replies for task in reply["dispatches"]
            ]
            if dispatches:
                self._pump(dispatches)
                continue
            if round_executed == 0:
                return executed

    def _pump(self, dispatches: list[tuple[str, int, tuple]]) -> int:
        """Forward dispatched stream tasks until no new ones appear.

        Each task goes to its stream's authoritative worker; applying one
        may produce further dispatches (deeper workflow levels), which chain
        through the same loop.  FIFO order preserves per-stream token order
        because each stream has a single producing worker.
        """
        forwarded = 0
        pending = list(dispatches)
        while pending:
            stream_name, token, rows = pending.pop(0)
            wid = self._stream_worker.get(stream_name)
            if wid is None:
                raise StreamingError(
                    f"dispatch for stream {stream_name!r} with no "
                    f"authoritative worker (workflow not deployed?)"
                )
            self.stats_local.bump("stream_tasks_forwarded")
            reply = self._rpc(
                self.workers[wid], msg.OP_STREAM_TASK, (stream_name, token, rows)
            )
            forwarded += 1
            pending.extend(reply["dispatches"])
        return forwarded

    # ------------------------------------------------------------------
    # OLTP entry points drain streaming work around them (like SStoreEngine)
    # ------------------------------------------------------------------

    def invoke(self, name: str, params: tuple[Any, ...]) -> ProcedureResult:
        result = super().invoke(name, params)
        if self.workflows:
            # an OLTP procedure may have emitted into a border stream; its
            # cascade (and any cross-worker dispatches) drains here
            self.run_until_quiescent()
        return result

    # ------------------------------------------------------------------
    # Ad-hoc SQL: owned-table authority routing
    # ------------------------------------------------------------------

    def execute_sql(self, sql: str, *params: Any) -> ResultSet | int:
        """Broadcast SQL with workflow-owned-table authority.

        Tables written by workflow nodes live on one worker; the other
        workers' replicas are skipped for DML and ignored for SELECT.  A
        SELECT answered by exactly one authoritative worker may use ORDER
        BY / GROUP BY / LIMIT (no scatter-gather to corrupt the clauses).
        """
        self._require_alive()
        self.stats_local.client_pe_roundtrips += 1
        replies = self._broadcast(msg.OP_SQL, (sql, tuple(params)))
        authoritative = [
            reply for reply in replies if reply.get("authoritative", True)
        ]
        if not authoritative:
            raise PartitionError(
                "no single worker is authoritative for this statement: it "
                "touches workflow-owned tables living on different workers; "
                "query them separately"
            )
        first = authoritative[0]
        if first["select"] is None:
            # DML rowcount: identical on every authoritative worker
            return first["result"]
        flags = first["select"]
        if len(authoritative) > 1 and any(flags.values()):
            clause = ", ".join(sorted(name for name, on in flags.items() if on))
            raise PartitionError(
                f"ad-hoc SELECT with {clause} clause(s) cannot "
                f"scatter-gather across {len(authoritative)} workers: each "
                f"shard would apply the clause locally and the merged answer "
                f"would be wrong. Run it via a stored procedure or a "
                f"single-worker cluster."
            )
        merged = ResultSet(columns=list(first["result"].columns), rows=[])
        for reply in authoritative:
            merged.rows.extend(reply["result"].rows)
        return merged

    # ------------------------------------------------------------------
    # Durability / recovery
    # ------------------------------------------------------------------

    def take_snapshot(self) -> list[int]:
        # quiesce first so every worker checkpoints a consistent cut (any
        # undelivered dispatch still rides the snapshot's outbound buffer)
        self.run_until_quiescent()
        return super().take_snapshot()

    def recover(self) -> int:
        replayed = super().recover()
        self._reconcile()
        return replayed

    def restore_from_disk(self, path: Any) -> int:
        replayed = super().restore_from_disk(path)
        # the tick sequence resumes from the slowest worker: a partially
        # broadcast tick is then retried, and workers that already applied
        # it dedup on their per-worker counter
        states = self._broadcast(msg.OP_DSTREAM_STATE)
        self._tick_seq = min(
            (state["ticks_applied"] for state in states), default=0
        )
        self._reconcile()
        return replayed

    def _reconcile(self) -> None:
        """Deliver dispatches regenerated by replay, then drain."""
        for chunk in self._broadcast(msg.OP_TAKE_DISPATCHES):
            self._pump(chunk)
        self.run_until_quiescent()

    def durable_op_count(self, logged_procedures: frozenset[str]) -> int:
        """Durable client-op records, for exactly-once resumption.

        Ingests and calls log one record on one worker; ticks log one
        record on *every* worker, so a tick only counts once it is durable
        everywhere (min across workers) — a partially-broadcast tick is
        retried and deduplicated by sequence number.  ``<task>`` records
        are interior bookkeeping, not client ops, and never count.
        """
        count = 0
        tick_counts: list[int] = []
        for records in self._broadcast(msg.OP_LOG_RECORDS):
            ticks = 0
            for record in records:
                if record.procedure == _TICK_RECORD:
                    ticks += 1
                elif record.procedure == _TASK_RECORD:
                    continue
                elif record.procedure in logged_procedures:
                    count += 1
            tick_counts.append(ticks)
        if _TICK_RECORD in logged_procedures and tick_counts:
            count += min(tick_counts)
        return count

    # ------------------------------------------------------------------
    # Observation: the differential oracle's view
    # ------------------------------------------------------------------

    def logical_state(self) -> dict[str, list]:
        """Canonical ``{table: sorted rows}`` across the whole cluster.

        Replicated tables (identical on every worker) contribute one copy;
        anything else — workflow-owned tables with empty non-owner replicas,
        OLTP tables sharded by key — contributes the sorted union.
        """
        replies = self._broadcast(msg.OP_FINGERPRINT)
        state: dict[str, list] = {}
        for name in replies[0]["tables"]:
            shards = [reply["tables"][name] for reply in replies]
            if all(shard == shards[0] for shard in shards[1:]):
                state[name] = shards[0]
            else:
                state[name] = sorted(
                    row for shard in shards for row in shard
                )
        return state

    def stream_commit_order(self) -> dict[str, list[tuple]]:
        """Per-stream committed batch order, cluster-wide.

        Every stream is consumed on exactly one worker, so that worker's
        local ledger *is* the stream's total commit order.
        """
        order: dict[str, list[tuple]] = {}
        for state in self._broadcast(msg.OP_DSTREAM_STATE):
            for stream_name, rows in state["stream_commits"]:
                order.setdefault(stream_name, []).append(
                    tuple(tuple(row) for row in rows)
                )
        return order

    def schedule_histories(self) -> list[list]:
        """Per-worker committed-TE histories (for the E9 validator)."""
        return [
            state["schedule_history"]
            for state in self._broadcast(msg.OP_DSTREAM_STATE)
        ]

    def dstream_status(self) -> list[dict[str, Any]]:
        """Raw per-worker streaming state (watermarks, tokens, pending)."""
        return self._broadcast(msg.OP_DSTREAM_STATE)

    def stream_health(self) -> dict[str, Any]:
        """Per-stream watermark lag + per-worker queue depths, with gauges.

        Watermark lag is the number of dispatched-but-not-yet-applied
        batches on a cross-worker stream: the producer's ordering token
        (``stream_seq``) minus the consumer's watermark.  At quiescence
        every lag is zero — a persistent nonzero lag means a consumer is
        falling behind its producer, the streaming half of the skew signal.

        When metrics are on, the report is also published as
        ``stream.watermark_lag{stream=}``, ``stream.outbound_depth{worker=}``
        and ``stream.pending_tes{worker=}`` gauges.
        """
        states = self.dstream_status()
        produced: dict[str, int] = {}
        applied: dict[str, int] = {}
        for state in states:
            for stream_name, token in state["stream_seq"].items():
                produced[stream_name] = max(produced.get(stream_name, 0), token)
            for stream_name, watermark in state["watermarks"].items():
                applied[stream_name] = max(applied.get(stream_name, 0), watermark)
        streams = {
            stream_name: {
                "produced": token,
                "applied": applied.get(stream_name, 0),
                "lag": token - applied.get(stream_name, 0),
            }
            for stream_name, token in sorted(produced.items())
        }
        workers = {
            state["worker_id"]: {
                "outbound_depth": state["outbound"],
                "pending_tes": state["pending_tes"],
            }
            for state in states
        }
        if self.metrics is not None:
            for stream_name, info in streams.items():
                gauge = self._stream_lag_gauges.get(stream_name)
                if gauge is None:
                    gauge = self.metrics.gauge(
                        "stream.watermark_lag",
                        "dispatched-but-unapplied batches per stream",
                        stream=stream_name,
                    )
                    self._stream_lag_gauges[stream_name] = gauge
                gauge.set(info["lag"])
            for wid, info in workers.items():
                gauges = self._stream_depth_gauges.get(wid)
                if gauges is None:
                    label = str(wid)
                    gauges = (
                        self.metrics.gauge(
                            "stream.outbound_depth",
                            "undelivered cross-worker dispatches per worker",
                            worker=label,
                        ),
                        self.metrics.gauge(
                            "stream.pending_tes",
                            "scheduled-but-unexecuted TEs per worker",
                            worker=label,
                        ),
                    )
                    self._stream_depth_gauges[wid] = gauges
                gauges[0].set(info["outbound_depth"])
                gauges[1].set(info["pending_tes"])
        return {"streams": streams, "workers": workers}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        alive = sum(1 for worker in self.workers if worker.alive)
        return (
            f"DStreamEngine(workers={len(self.workers)}, alive={alive}, "
            f"workflows={sorted(self.workflows)})"
        )

"""One cluster worker's share of the streaming layer.

:class:`StreamShardEngine` is a full single-partition :class:`SStoreEngine`
that knows which workflow nodes, streams and tables it owns.  The base
engine's distribution hooks are overridden so that:

* workflow nodes placed on other workers register no local stream cursor
  (their input's local copy is garbage-collected after every drain);
* window maintenance and EE triggers fire only on the stream's
  *authoritative* worker (the consumer's worker), never on the producer's
  local copy of a remote stream;
* emissions into a remotely-consumed stream land in :attr:`outbound` as
  ``(stream, token, rows)`` dispatches instead of the local scheduler.

The ordering token is a per-stream monotone counter.  It is regenerated
deterministically by command-log replay (the producer's ``<ingest>`` /
``<task>`` records drive the same cascade), and the receiving worker
dedups on a per-stream watermark — that pair is the cluster's
exactly-once mechanism; there is no acknowledgement protocol.
"""

from __future__ import annotations

from typing import Any

from repro.core.engine import SStoreEngine, _TICK_RECORD
from repro.core.scheduler import StreamTask
from repro.core.transaction import TERecord
from repro.hstore.txn import TransactionContext
from repro.core.workflow import WorkflowNode, WorkflowSpec, plan_table_access
from repro.errors import StreamingError, WorkflowError
from repro.hstore.catalog import TableKind
from repro.hstore.cmdlog import LogRecord

__all__ = ["StreamShardEngine", "_TASK_RECORD"]

#: pseudo-procedure name for a received cross-worker stream task
_TASK_RECORD = "<task>"


class StreamShardEngine(SStoreEngine):
    """The engine a ``dstream`` cluster runs inside each worker process."""

    def __init__(self, worker_id: int, worker_count: int, **kwargs: Any) -> None:
        super().__init__(partitions=1, **kwargs)
        self.worker_id = worker_id
        self.worker_count = worker_count
        #: workflow node name → worker id (every deployed node, all workers)
        self._node_worker: dict[str, int] = {}
        #: stream name → authoritative worker (the consumer's worker)
        self._stream_worker: dict[str, int] = {}
        #: table name → owning worker (union of workflow-node write sets)
        self._owned_tables: dict[str, int] = {}
        #: producer side: next ordering token per remotely-consumed stream
        self._stream_seq: dict[str, int] = {}
        #: receiver side: highest token applied per stream (exactly-once)
        self._watermarks: dict[str, int] = {}
        #: dispatches awaiting pickup by the coordinator pump
        self.outbound: list[tuple[str, int, tuple[tuple[Any, ...], ...]]] = []
        #: number of cluster-wide clock ticks applied (broadcast dedup)
        self._ticks_applied = 0

    # ------------------------------------------------------------------
    # Placement-aware deployment
    # ------------------------------------------------------------------

    def deploy_placed_workflow(
        self, spec: WorkflowSpec, node_placement: dict[str, int]
    ) -> dict[str, Any]:
        """Deploy ``spec`` with an explicit node → worker placement.

        Every worker receives the same call; each registers only its local
        share for execution but learns the full placement for routing.
        Validation is deterministic, so an invalid placement fails
        identically on every worker.  Returns the routing info the
        coordinator caches (border streams, stream authority, owned tables).
        """
        for name, wid in node_placement.items():
            self._node_worker[name.lower()] = wid
        deployed = self.deploy_workflow(spec)

        def worker_of(node_name: str) -> int:
            return self._node_worker[node_name]

        if deployed.serial_required:
            placed_on = {worker_of(name) for name in deployed.nodes}
            if len(placed_on) > 1:
                raise WorkflowError(
                    f"workflow {deployed.name!r} has shared writable tables "
                    f"(serial execution required) but is placed on workers "
                    f"{sorted(placed_on)}; co-locate all of its nodes"
                )

        stream_worker: dict[str, int] = {}
        for node in deployed.nodes.values():
            consumers = {
                worker_of(consumer.procedure_name)
                for consumer in deployed.consumers_of_stream(node.input_stream)
            }
            if len(consumers) > 1:
                raise WorkflowError(
                    f"stream {node.input_stream!r} is consumed on workers "
                    f"{sorted(consumers)}; all consumers of a stream must be "
                    f"co-located (one authoritative worker per stream)"
                )
            stream_worker[node.input_stream] = consumers.pop()
        for node in deployed.nodes.values():
            # sink streams (no consumer): authority defaults to the producer
            for stream in node.output_streams:
                stream_worker.setdefault(
                    stream, worker_of(node.procedure_name)
                )

        owned: dict[str, int] = {}
        for node in deployed.nodes.values():
            wid = worker_of(node.procedure_name)
            writes: set[str] = set()
            for plan in self.procedures[node.procedure_name].plans.values():
                _reads, plan_writes = plan_table_access(plan)
                writes |= plan_writes
            for table in writes:
                if not self.catalog.has_table(table):
                    continue
                if self.catalog.table(table).kind is not TableKind.TABLE:
                    continue
                previous = owned.get(table, self._owned_tables.get(table))
                if previous is not None and previous != wid:
                    raise WorkflowError(
                        f"table {table!r} is written by workflow nodes on "
                        f"workers {previous} and {wid}; split-placed nodes "
                        f"need disjoint table write sets"
                    )
                owned[table] = wid
        for table, wid in owned.items():
            if (
                wid != self.worker_id
                and self.partitions[0].ee.table(table).row_count()
            ):
                raise WorkflowError(
                    f"table {table!r} is owned by worker {wid} but already "
                    f"holds rows on worker {self.worker_id}; seed "
                    f"workflow-written tables *after* deploy_workflow so DML "
                    f"routes to the owner only"
                )

        self._stream_worker.update(stream_worker)
        self._owned_tables.update(owned)
        return {
            "workflow": deployed.name,
            "border_streams": {
                deployed.nodes[name].input_stream: worker_of(name)
                for name in deployed.border_procedures
            },
            "stream_worker": stream_worker,
            "owned_tables": owned,
            "serial_required": deployed.serial_required,
        }

    # ------------------------------------------------------------------
    # Distribution hooks
    # ------------------------------------------------------------------

    def _node_runs_locally(self, node: WorkflowNode) -> bool:
        return (
            self._node_worker.get(node.procedure_name, self.worker_id)
            == self.worker_id
        )

    def _stream_consumed_locally(self, stream_name: str) -> bool:
        return (
            self._stream_worker.get(stream_name, self.worker_id)
            == self.worker_id
        )

    def _hooks_active(self, stream_name: str) -> bool:
        return self._stream_consumed_locally(stream_name)

    def _dispatch_remote(
        self, stream_name: str, rows: list[tuple[Any, ...]]
    ) -> None:
        token = self._stream_seq.get(stream_name, 0) + 1
        self._stream_seq[stream_name] = token
        self.outbound.append(
            (stream_name, token, tuple(tuple(row) for row in rows))
        )
        self.stats.bump("stream_tasks_dispatched")

    def take_outbound(self) -> list[tuple[str, int, tuple]]:
        """Drain the dispatch buffer (called after every worker op)."""
        taken, self.outbound = self.outbound, []
        return taken

    # ------------------------------------------------------------------
    # Receiving side: cross-worker stream tasks and cluster ticks
    # ------------------------------------------------------------------

    def apply_stream_task(
        self, stream_name: str, token: int, rows: list[tuple[Any, ...]]
    ) -> bool:
        """Apply one dispatched batch; returns False if already applied.

        Watermark discipline: ``token <= watermark`` is a re-delivery (the
        producer replayed its log after a crash) and is skipped; exactly
        ``watermark + 1`` applies; anything later means a task was lost,
        which the no-ack design makes impossible — so it raises.
        """
        self._require_alive()
        stream_name = stream_name.lower()
        watermark = self._watermarks.get(stream_name, 0)
        if token <= watermark:
            self.stats.bump("stream_tasks_deduped")
            return False
        if token != watermark + 1:
            raise StreamingError(
                f"stream task gap on {stream_name!r}: token {token} arrived "
                f"with watermark {watermark}"
            )
        rows = [tuple(row) for row in rows]
        if not self._replaying:
            self.command_log.append(
                txn_id=self._next_txn_id,
                procedure=_TASK_RECORD,
                params=(stream_name, token, tuple(rows)),
                partition=0,
                logical_time=self.clock.now,
                meta={"kind": "stream_task"},
            )
            self._next_txn_id += 1
        self._watermarks[stream_name] = token
        self._enqueue_received_batch(stream_name, rows)
        if self.eager:
            self.run_until_quiescent()
        if not self._replaying:
            self._note_logged_command()
        return True

    def _enqueue_received_batch(
        self, stream_name: str, rows: list[tuple[Any, ...]]
    ) -> None:
        consumers = self._consumers_of(stream_name)
        if not consumers:
            raise StreamingError(
                f"worker {self.worker_id} received a task for stream "
                f"{stream_name!r} but consumes nothing from it (misrouted)"
            )
        for _spec, node in consumers:
            if not self._node_runs_locally(node):
                raise StreamingError(
                    f"stream task for {stream_name!r} routed to worker "
                    f"{self.worker_id}, but consumer "
                    f"{node.procedure_name!r} lives on worker "
                    f"{self._node_worker.get(node.procedure_name)}"
                )
        interior = [
            node
            for _spec, node in consumers
            if node.depth > 0 or node.input_stream != stream_name
        ]
        if interior and len(interior) != len(consumers):
            raise StreamingError(
                f"stream {stream_name!r} mixes border and interior consumers "
                f"across workflows; that shape is not supported on a cluster"
            )
        high_rowid: int | None = None
        if interior:
            # The producer's emit-insert happened on the remote worker,
            # against a doomed local copy of this stream.  Re-create the
            # physical batch here ONCE — EE hooks (windows, SQL triggers)
            # fire now, on the authoritative worker — and let every consumer
            # share it, exactly like a locally-emitted batch.  Border
            # consumers (depth 0) instead insert inside their own TE, like
            # a local ingest would.
            high_rowid = self._materialize_received_rows(stream_name, rows)
        trace_ctx = (
            self.tracer.current_context() if self.tracer.enabled else None
        )
        for spec, node in consumers:
            batch = self.batch_factory.origin_batch(stream_name, rows)
            self.latency.record_enqueue(batch.origin_batch_id)
            if high_rowid is not None:
                self._batch_high_rowids[batch.batch_id] = high_rowid
            self.stats.pe_trigger_firings += 1
            self.scheduler.enqueue(
                StreamTask(
                    procedure_name=node.procedure_name,
                    batch=batch,
                    depth=node.depth,
                    workflow_name=spec.name,
                    trace_ctx=trace_ctx,
                )
            )

    def _materialize_received_rows(
        self, stream_name: str, rows: list[tuple[Any, ...]]
    ) -> int:
        """Insert a received batch into its stream's backing, hooks and all."""
        partition = self.partitions[0]
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        txn = TransactionContext(txn_id, partition.ee, _TASK_RECORD)
        partition.acquire()
        try:
            self.stats.pe_ee_roundtrips += 1
            rowids = partition.ee.insert_rows(txn, stream_name, list(rows))
        except BaseException:
            txn.abort()
            raise
        finally:
            partition.release()
        txn.commit()
        return max(rowids)

    def apply_tick(self, ticks: int, seq: int) -> int:
        """Apply a cluster-wide clock tick exactly once (broadcast dedup)."""
        self._require_alive()
        if seq <= self._ticks_applied:
            return self.clock.now
        self._ticks_applied = seq
        return self.advance_time(ticks)

    # ------------------------------------------------------------------
    # Ad-hoc SQL authority (owned tables live on one worker)
    # ------------------------------------------------------------------

    def adhoc_authority(self, plan: Any) -> bool:
        """Whether this worker is authoritative for an ad-hoc statement.

        A statement touching a workflow-owned table is authoritative only on
        the owner (other workers hold stale/empty replicas); statements over
        unowned tables are authoritative everywhere (classic broadcast DML).
        Windows and streams resolve to the worker that consumes the stream:
        window maintenance (and so any attached delta view) fires only
        there, so only that worker's window contents are real.
        """
        reads, writes = plan_table_access(plan)
        return all(
            self._table_authoritative(table) for table in reads | writes
        )

    def _table_authoritative(self, table: str) -> bool:
        # walk window-over-window chains down to the root stream: a window
        # materializes wherever its root stream is consumed
        source = table
        while source in self.windows:
            source = self.windows[source].spec.stream
        if source != table or self.streams.has(source):
            return self._stream_consumed_locally(source)
        return self._owned_tables.get(table, self.worker_id) == self.worker_id

    # ------------------------------------------------------------------
    # Coordinator-facing state
    # ------------------------------------------------------------------

    def dstream_state(self) -> dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "ticks_applied": self._ticks_applied,
            "watermarks": dict(self._watermarks),
            "stream_seq": dict(self._stream_seq),
            "stream_commits": list(self.stream_commits),
            "schedule_history": list(self.schedule_history),
            "pending_tes": self.scheduler.pending_count,
            "outbound": len(self.outbound),
        }

    # ------------------------------------------------------------------
    # Durability: the dstream state rides the snapshot extra
    # ------------------------------------------------------------------

    def _snapshot_extra(self) -> dict[str, Any]:
        extra = super()._snapshot_extra()
        extra["dstream"] = {
            "stream_seq": dict(self._stream_seq),
            "watermarks": dict(self._watermarks),
            # undelivered dispatches are part of durable state: re-delivery
            # after restore is safe (receiver watermarks dedup), losing one
            # is not
            "outbound": [
                [stream, token, [list(row) for row in rows]]
                for stream, token, rows in self.outbound
            ],
            "ticks_applied": self._ticks_applied,
            "stream_commits": [
                [stream, [list(row) for row in rows]]
                for stream, rows in self.stream_commits
            ],
            "schedule_history": [
                [r.seq, r.procedure, r.origin_batch_id, r.depth, r.workflow]
                for r in self.schedule_history
            ],
            "commit_seq": self._commit_seq,
        }
        return extra

    def _restore_extra(self, extra: dict[str, Any]) -> None:
        super()._restore_extra(extra)
        state = extra.get("dstream", {})
        self._stream_seq = {
            str(k): int(v) for k, v in state.get("stream_seq", {}).items()
        }
        self._watermarks = {
            str(k): int(v) for k, v in state.get("watermarks", {}).items()
        }
        self.outbound = [
            (stream, int(token), tuple(tuple(row) for row in rows))
            for stream, token, rows in state.get("outbound", [])
        ]
        self._ticks_applied = int(state.get("ticks_applied", 0))
        self.stream_commits = [
            (stream, tuple(tuple(row) for row in rows))
            for stream, rows in state.get("stream_commits", [])
        ]
        self.schedule_history = [
            TERecord(
                seq=seq,
                procedure=procedure,
                origin_batch_id=origin,
                depth=depth,
                workflow=workflow,
            )
            for seq, procedure, origin, depth, workflow in state.get(
                "schedule_history", []
            )
        ]
        self._commit_seq = int(
            state.get("commit_seq", len(self.schedule_history))
        )

    def _replay_invocation(self, record: LogRecord) -> None:
        if record.procedure == _TASK_RECORD:
            stream_name, token, rows = record.params
            watermark = self._watermarks.get(stream_name, 0)
            if token <= watermark:
                return  # applied before the snapshot this replay starts from
            if token != watermark + 1:
                raise StreamingError(
                    f"replay gap on {stream_name!r}: logged token {token} "
                    f"with watermark {watermark}"
                )
            self._watermarks[stream_name] = token
            self._enqueue_received_batch(
                stream_name, [tuple(row) for row in rows]
            )
            self.run_until_quiescent()
            return
        if record.procedure == _TICK_RECORD:
            self._ticks_applied += 1
        super()._replay_invocation(record)

"""``repro.bench`` — shared measurement helpers for the benchmark suites."""

from repro.bench.harness import (
    AnomalyReport,
    VoterRunResult,
    compare_summaries,
    format_table,
    percentiles,
    run_voter_dstream,
    run_voter_hstore_interleaved,
    run_voter_hstore_sequential,
    run_voter_sstore,
    write_bench_json,
)

__all__ = [
    "AnomalyReport",
    "VoterRunResult",
    "compare_summaries",
    "format_table",
    "percentiles",
    "run_voter_dstream",
    "run_voter_hstore_interleaved",
    "run_voter_hstore_sequential",
    "run_voter_sstore",
    "write_bench_json",
]

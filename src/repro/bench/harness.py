"""Benchmark harness: canned workload runs and measurement extraction.

Every experiment in ``benchmarks/`` drives the two systems through these
helpers so that the configuration (workload seed, contestant count, batch
sizes) is identical on both sides and the measured quantities (wall time,
layer round trips, simulated TPS, anomaly counts) are extracted uniformly.

Besides the human-readable text reports (``benchmarks/_results/*.txt``),
experiments can emit machine-readable JSON via :func:`write_bench_json` —
one ``BENCH_<name>.json`` per experiment with throughput, latency
percentiles and configuration, for plotting and regression tracking
without re-parsing prose.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any

from repro.apps.voter.hstore_app import VoterHStoreApp
from repro.apps.voter.observe import ElectionSummary
from repro.apps.voter.sstore_app import VoterSStoreApp
from repro.apps.voter.workload import VoteRequest
from repro.core.engine import SStoreEngine
from repro.hstore.netsim import LatencyModel

__all__ = [
    "VoterRunResult",
    "AnomalyReport",
    "run_voter_sstore",
    "run_voter_hstore_sequential",
    "run_voter_dstream",
    "run_voter_hstore_interleaved",
    "compare_summaries",
    "format_table",
    "percentiles",
    "write_bench_json",
]


@dataclass
class VoterRunResult:
    """Everything one benchmark run produced."""

    system: str
    summary: ElectionSummary
    wall_seconds: float
    counters: dict[str, int]
    simulated_tps: float
    app: Any = field(repr=False, default=None)

    @property
    def votes_processed(self) -> int:
        return self.summary.total_votes + self.summary.rejected_votes

    def per_1000_votes(self, counter: str) -> float:
        votes = max(1, self.votes_processed)
        return self.counters.get(counter, 0) * 1000.0 / votes


def _finish(
    system: str,
    app: VoterSStoreApp | VoterHStoreApp,
    started: float,
    before: dict[str, int],
    model: LatencyModel,
) -> VoterRunResult:
    wall = time.perf_counter() - started
    delta = app.engine.stats.delta(before)
    cost = model.cost_of(delta)
    tps = cost.throughput(delta.get("txns_committed", 0))
    return VoterRunResult(
        system=system,
        summary=app.summary(),
        wall_seconds=wall,
        counters=delta,
        simulated_tps=tps,
        app=app,
    )


def run_voter_sstore(
    requests: list[VoteRequest],
    *,
    num_contestants: int,
    batch_size: int = 1,
    ingest_chunk: int = 1,
    model: LatencyModel | None = None,
    compile: bool = True,
) -> VoterRunResult:
    model = model or LatencyModel()
    engine = SStoreEngine(compile=compile)
    app = VoterSStoreApp(
        engine, num_contestants=num_contestants, batch_size=batch_size
    )
    before = app.engine.stats.snapshot()
    started = time.perf_counter()
    app.submit(requests, ingest_chunk=ingest_chunk)
    return _finish("s-store", app, started, before, model)


def run_voter_dstream(
    requests: list[VoteRequest],
    *,
    num_contestants: int,
    batch_size: int = 1,
    ingest_chunk: int = 1,
    workers: int = 2,
    model: LatencyModel | None = None,
    shutdown: bool = True,
) -> VoterRunResult:
    """The same voter workflow, scheduled on a DStreamEngine cluster.

    With ``shutdown=False`` the worker processes stay alive so the caller
    can inspect cluster state (differential oracle, schedule histories) —
    the caller then owns ``result.app.engine.shutdown()``.
    """
    from repro.dstream import DStreamEngine

    model = model or LatencyModel()
    engine = DStreamEngine(workers)
    try:
        app = VoterSStoreApp(
            engine, num_contestants=num_contestants, batch_size=batch_size
        )
        before = app.engine.stats.snapshot()
        started = time.perf_counter()
        app.submit(requests, ingest_chunk=ingest_chunk)
        return _finish(f"dstream-{workers}w", app, started, before, model)
    finally:
        if shutdown:
            engine.shutdown()


def run_voter_hstore_sequential(
    requests: list[VoteRequest],
    *,
    num_contestants: int,
    model: LatencyModel | None = None,
) -> VoterRunResult:
    model = model or LatencyModel()
    app = VoterHStoreApp(num_contestants=num_contestants)
    before = app.engine.stats.snapshot()
    started = time.perf_counter()
    app.run_sequential(requests)
    return _finish("h-store", app, started, before, model)


def run_voter_hstore_interleaved(
    requests: list[VoteRequest],
    *,
    num_contestants: int,
    clients: int = 8,
    seed: int = 1,
    model: LatencyModel | None = None,
) -> VoterRunResult:
    model = model or LatencyModel()
    app = VoterHStoreApp(num_contestants=num_contestants)
    before = app.engine.stats.snapshot()
    started = time.perf_counter()
    app.run_interleaved(requests, clients=clients, seed=seed)
    return _finish("h-store-interleaved", app, started, before, model)


@dataclass(frozen=True)
class AnomalyReport:
    """How far an execution diverged from the reference outcome."""

    wrong_removals: int
    removal_count_delta: int
    vote_count_divergence: int
    total_votes_delta: int
    false_winner: bool

    @property
    def any_anomaly(self) -> bool:
        return (
            self.wrong_removals > 0
            or self.removal_count_delta != 0
            or self.vote_count_divergence > 0
            or self.total_votes_delta != 0
            or self.false_winner
        )


def compare_summaries(
    reference: ElectionSummary, observed: ElectionSummary
) -> AnomalyReport:
    """Quantify the anomalies of ``observed`` relative to ``reference``."""
    ref_removals = reference.removal_order()
    obs_removals = observed.removal_order()
    wrong = sum(
        1
        for ref, obs in zip(ref_removals, obs_removals)
        if ref != obs
    )
    ref_counts = dict(reference.counts)
    obs_counts = dict(observed.counts)
    divergence = sum(
        abs(ref_counts.get(key, 0) - obs_counts.get(key, 0))
        for key in set(ref_counts) | set(obs_counts)
    )
    return AnomalyReport(
        wrong_removals=wrong,
        removal_count_delta=len(obs_removals) - len(ref_removals),
        vote_count_divergence=divergence,
        total_votes_delta=observed.total_votes - reference.total_votes,
        false_winner=(
            reference.winner is not None and observed.winner != reference.winner
        ),
    )


def percentiles(
    samples: list[float], points: tuple[float, ...] = (50.0, 90.0, 99.0)
) -> dict[str, float]:
    """Nearest-rank percentiles keyed ``"p50"``/``"p90"``/... (empty-safe)."""
    if not samples:
        return {f"p{point:g}": 0.0 for point in points}
    ordered = sorted(samples)
    out: dict[str, float] = {}
    for point in points:
        rank = max(0, min(len(ordered) - 1, round(point / 100.0 * len(ordered)) - 1))
        out[f"p{point:g}"] = ordered[rank]
    return out


def write_bench_json(
    name: str,
    payload: dict[str, Any],
    *,
    results_dir: str | pathlib.Path | None = None,
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` next to the text reports.

    ``payload`` is augmented with the experiment name; everything must be
    JSON-serializable (floats, ints, strings, lists, dicts).  The default
    directory is ``benchmarks/_results/`` relative to the repo root, the
    same place ``benchmarks/conftest.py`` drops text reports.
    """
    if results_dir is None:
        results_dir = pathlib.Path(__file__).resolve().parents[3] / (
            "benchmarks/_results"
        )
    directory = pathlib.Path(results_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps({"experiment": name, **payload}, indent=2) + "\n")
    return path


def format_table(headers: list[str], rows: list[list[Any]]) -> str:
    """Simple fixed-width table for benchmark reports."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    def line(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    out = [line(headers), line(["-" * width for width in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)

"""The S-Store engine: streaming OLTP on top of H-Store.

:class:`SStoreEngine` extends :class:`repro.hstore.engine.HStoreEngine` with
the four constructs the paper adds — streams, windows, triggers, workflows —
plus the stream-oriented transaction model (batch-defined TEs, ordering
guarantees, TE scoping) and upstream-backup fault tolerance.

Client-facing flow::

    engine = SStoreEngine()
    engine.execute_ddl("CREATE STREAM votes_in (...)")
    engine.execute_ddl("CREATE WINDOW trending ON validated ROWS 100 SLIDE 1 OWNED BY update_leaderboard")
    engine.register_procedure(ValidateVote)       # border SP
    engine.register_procedure(UpdateLeaderboard)  # interior SP

    wf = WorkflowSpec("leaderboard")
    wf.add_node("validate_vote", input_stream="votes_in", batch_size=1,
                output_streams=("validated",))
    wf.add_node("update_leaderboard", input_stream="validated")
    engine.deploy_workflow(wf)

    engine.ingest("votes_in", [(phone, contestant_id), ...])  # push!

``ingest`` is the only client call a pure streaming workload needs: one
client↔PE round trip delivers a whole batch of tuples, and PE triggers drive
every downstream transaction engine-side.  The H-Store baseline needs one
client call *per procedure per tuple* — that difference is the paper's
throughput result (experiments E3/E4).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.config import ObsConfig

from repro.core.batch import Batch, BatchFactory
from repro.core.gc import StreamGarbageCollector
from repro.core.latency import LatencyTracker
from repro.core.scheduler import StreamScheduler, StreamTask
from repro.core.scope import WindowScopes
from repro.core.stream import StreamRegistry
from repro.core.transaction import TERecord
from repro.core.triggers import EETrigger
from repro.core.window import (
    WindowKind,
    WindowSpec,
    WindowState,
    timestamp_offset_of,
)
from repro.core.workflow import WorkflowNode, WorkflowSpec, plan_table_access
from repro.errors import (
    CatalogError,
    ConstraintViolationError,
    ReproError,
    StreamingError,
    TransactionAborted,
    UnknownObjectError,
    WorkflowError,
)
from repro.hstore.catalog import Schema, TableEntry, TableKind
from repro.hstore.clock import LogicalClock
from repro.hstore.cmdlog import LogRecord
from repro.hstore.engine import HStoreEngine
from repro.hstore.executor import VECTOR_MIN_ROWS, ResultSet
from repro.hstore.parser import (
    CreateStreamStmt,
    CreateViewStmt,
    CreateWindowStmt,
    DropViewStmt,
    SelectStmt,
    parse,
)
from repro.hstore.planner import Plan, SelectPlan, SeqScan
from repro.ivm import DeltaView, ViewRead, derive_view_shape, match_plan
from repro.hstore.procedure import (
    ProcedureContext,
    ProcedureResult,
    StoredProcedure,
)
from repro.hstore.stats import EngineStats
from repro.hstore.txn import TransactionContext

__all__ = ["SStoreEngine", "StreamContext", "StreamProcedure"]

#: pseudo-procedure names used in the command log for streaming records
_INGEST_RECORD = "<ingest>"
_TICK_RECORD = "<tick>"


class StreamProcedure(StoredProcedure):
    """Base class for workflow stored procedures.

    A stream procedure's ``run`` receives no client parameters — its input
    is the batch, available as ``ctx.batch`` — and it reports results by
    emitting to output streams and/or writing tables.
    """

    def run(self, ctx: "StreamContext", *params: Any) -> Any:  # type: ignore[override]
        raise NotImplementedError


class StreamContext(ProcedureContext):
    """Procedure context with streaming extensions.

    Adds the input ``batch`` and :meth:`emit`, and enforces the S-Store
    access rules on every statement: window scoping, and no direct DML on
    stream/window state (streams are written via ``emit``; windows only by
    the engine's native maintenance).
    """

    def __init__(
        self,
        engine: "SStoreEngine",
        procedure: StoredProcedure,
        txn: TransactionContext,
        partition_id: int,
        batch: Batch | None = None,
    ) -> None:
        super().__init__(engine, procedure, txn, partition_id)
        self._sstore = engine
        self._batch = batch

    @property
    def batch(self) -> Batch:
        if self._batch is None:
            raise StreamingError(
                f"procedure {self.procedure_name!r} was not invoked with an "
                f"input batch (it is not running as a workflow TE)"
            )
        return self._batch

    @property
    def has_batch(self) -> bool:  # noqa: D401 - see base class
        return self._batch is not None

    # -- statement execution with S-Store access rules ------------------------

    def execute(self, statement_name: str, *params: Any) -> ResultSet | int:
        plan = self._procedure.plans.get(statement_name)
        if plan is not None:
            self._sstore.check_plan_access(plan, self.procedure_name)
        return super().execute(statement_name, *params)

    # -- streaming -------------------------------------------------------------

    def emit(self, stream_name: str, rows: list[tuple[Any, ...]]) -> int:
        """Append tuples to an output stream, inside this transaction.

        The tuples become part of this TE's output batch: when the TE
        commits, PE triggers hand exactly these tuples to the downstream
        stored procedure(s).  Costs one PE↔EE round trip for the insert;
        any windows over the stream are maintained in-EE for free.
        """
        if not rows:
            return 0
        if self._partition_id != 0:
            # Stream state lives on partition 0 (the paper demonstrates the
            # single-sited case); an emit from another partition would write
            # stream tuples the scheduler never sees.
            raise StreamingError(
                f"emit into {stream_name!r} from partition "
                f"{self._partition_id}; streaming state is single-sited on "
                f"partition 0 — route emitting procedures there"
            )
        self._sstore.authorize_emit(self._procedure, stream_name)
        self._engine.stats.pe_ee_roundtrips += 1
        rowids = self._txn.ee.insert_rows(self._txn, stream_name, list(rows))
        emissions = self._txn.notes.setdefault("emissions", {})
        record = emissions.setdefault(
            stream_name.lower(), {"rows": [], "high_rowid": -1}
        )
        table = self._txn.ee.table(stream_name)
        record["rows"].extend(tuple(table.get(rowid)) for rowid in rowids)
        record["high_rowid"] = max(record["high_rowid"], max(rowids))
        self._engine.stats.bump("stream_tuples_emitted", len(rowids))
        return len(rowids)

    def insert_rows(
        self, table_name: str, rows: list[tuple[Any, ...]] | list[list[Any]]
    ) -> list[int]:
        """Bulk insert, with S-Store write protection for stream state."""
        entry = self._sstore.catalog.table(table_name)
        if entry.kind is TableKind.STREAM:
            raise StreamingError(
                f"direct insert into stream {table_name!r}; use ctx.emit(...)"
            )
        if entry.kind is TableKind.WINDOW:
            raise StreamingError(
                f"direct insert into window {table_name!r}; windows are "
                f"maintained natively by the EE"
            )
        return super().insert_rows(table_name, rows)


class SStoreEngine(HStoreEngine):
    """H-Store plus native stream processing — the paper's system."""

    def __init__(
        self,
        partitions: int = 1,
        *,
        log_group_size: int = 1,
        snapshot_interval: int | None = None,
        clock: LogicalClock | None = None,
        stats: EngineStats | None = None,
        eager: bool = True,
        command_logging: bool = True,
        obs: "ObsConfig | None" = None,
        compile: bool = True,
        vectorize: bool = True,
        vector_min_rows: int = VECTOR_MIN_ROWS,
        plan_cache_size: int = 128,
    ) -> None:
        super().__init__(
            partitions,
            log_group_size=log_group_size,
            snapshot_interval=snapshot_interval,
            clock=clock,
            stats=stats,
            command_logging=command_logging,
            obs=obs,
            compile=compile,
            vectorize=vectorize,
            vector_min_rows=vector_min_rows,
            plan_cache_size=plan_cache_size,
        )
        self.streams = StreamRegistry()
        self.windows: dict[str, WindowState] = {}
        self.scopes = WindowScopes()
        #: delta views by name (repro.ivm), and by backing window table for
        #: plan lowering — empty dicts keep the no-view path zero-cost
        self.delta_views: dict[str, DeltaView] = {}
        self._views_of_table: dict[str, list[DeltaView]] = {}
        self.batch_factory = BatchFactory()
        self.scheduler = StreamScheduler()
        self.workflows: dict[str, WorkflowSpec] = {}
        self.gc = StreamGarbageCollector(
            self.streams, self.partitions[0].ee, self.stats
        )
        #: committed-TE history for the schedule validator (E9)
        self.schedule_history: list[TERecord] = []
        self._commit_seq = 0
        #: per-stream commit ledger: (input_stream, batch rows) appended at
        #: each TE commit — the differential ordering oracle compares this
        #: across deployments (kept out of fingerprints: it is observational)
        self.stream_commits: list[tuple[str, tuple[tuple[Any, ...], ...]]] = []
        #: (procedure, stream, origin batch id) of the TE whose failure is
        #: currently propagating — lets the cluster worker loop attribute a
        #: serialized error to the batch that caused it
        self._failed_te: tuple[str, str, int] | None = None
        #: procedure name → (workflow, node) for deployed workflow members
        self._node_of: dict[str, tuple[WorkflowSpec, WorkflowNode]] = {}
        #: border stream → consuming BSP node
        self._border_consumer: dict[str, tuple[WorkflowSpec, WorkflowNode]] = {}
        #: border stream → tuples awaiting batch formation
        self._ingest_buffers: dict[str, list[tuple[Any, ...]]] = {}
        self._ee_triggers: dict[str, list[EETrigger]] = {}
        #: run TEs immediately on ingest (False = manual run_until_quiescent)
        self.eager = eager
        self._in_drain = False
        #: batch_id → high rowid of the emitted tuples backing the batch
        #: (consumer cursor advances to it when the consuming TE finishes)
        self._batch_high_rowids: dict[int, int] = {}
        #: wall-clock pipeline latency per origin batch (observational)
        self.latency = LatencyTracker()

    # ------------------------------------------------------------------
    # DDL: streams and windows
    # ------------------------------------------------------------------

    def execute_ddl(self, sql: str) -> None:
        statement = parse(sql)
        if isinstance(statement, CreateStreamStmt):
            entry = TableEntry(
                name=statement.name,
                schema=Schema(list(statement.columns)),
                kind=TableKind.STREAM,
            )
            self._install_table(entry)
            self.streams.add(entry.name)
            self._ingest_buffers.setdefault(entry.name, [])
            return
        if isinstance(statement, CreateWindowStmt):
            self.create_window(
                statement.name,
                statement.stream,
                kind=statement.kind,
                size=statement.size,
                slide=statement.slide,
                owner=statement.owner,
            )
            return
        if isinstance(statement, CreateViewStmt):
            self.create_delta_view(statement.name, statement.select, sql=sql)
            return
        if isinstance(statement, DropViewStmt):
            self.drop_delta_view(statement.name)
            return
        super().execute_ddl(sql)

    def create_window(
        self,
        name: str,
        source: str,
        *,
        kind: str = "ROWS",
        size: int,
        slide: int | None = None,
        owner: str | None = None,
    ) -> WindowState:
        """Define a window over a stream (or over another window).

        The window's backing table shares the source's schema and is
        maintained natively by the EE: tuple arrival on the source inserts /
        expires window rows inside the same transaction.
        """
        source_entry = self.catalog.table(source)
        if source_entry.kind is TableKind.TABLE:
            raise CatalogError(
                f"windows are defined over streams, not regular tables "
                f"({source!r} is a TABLE)"
            )
        window_kind = WindowKind.TUPLE if kind.upper() == "ROWS" else WindowKind.TIME
        spec = WindowSpec(
            name=name.lower(),
            stream=source_entry.name,
            kind=window_kind,
            size=size,
            slide=slide if slide is not None else size,
        )
        entry = TableEntry(
            name=spec.name,
            schema=source_entry.schema,
            kind=TableKind.WINDOW,
        )
        self._install_table(entry)

        ts_offset = timestamp_offset_of(
            [(col.name, col.sql_type) for col in source_entry.schema]
        )
        state = WindowState(
            spec,
            self.partitions[0].ee,
            self.stats,
            timestamp_offset=ts_offset,
        )
        self.windows[spec.name] = state

        def _maintain(txn: TransactionContext, table_name: str, rowids: list[int]) -> None:
            if not self._hooks_active(spec.stream):
                return
            table = self.partitions[0].ee.table(table_name)
            rows = [table.get(rowid) for rowid in rowids]
            # window maintenance is per-EE-event granularity, like per-
            # statement sql spans — both live behind the microscope flag
            if self.tracer.sql_spans:
                with self.tracer.span("window", spec.name, tuples=len(rows)):
                    state.on_stream_insert(txn, rows, self.clock.now)
            else:
                state.on_stream_insert(txn, rows, self.clock.now)

        self.partitions[0].ee.add_insert_hook(spec.stream, _maintain)
        if owner is not None:
            self.scopes.assign(spec.name, owner)
        return state

    def assign_window_owner(self, window_name: str, procedure_name: str) -> None:
        """Scope a window to its owning stored procedure (paper's TE scope)."""
        if window_name.lower() not in self.windows:
            raise UnknownObjectError(f"no window named {window_name!r}")
        self.scopes.assign(window_name, procedure_name)

    # ------------------------------------------------------------------
    # Delta views (repro.ivm): incrementally maintained window aggregates
    # ------------------------------------------------------------------

    def create_delta_view(
        self, name: str, select: "SelectStmt | str", *, sql: str = ""
    ) -> DeltaView:
        """Register an incrementally maintained view over a window.

        The definition must be a plain grouped aggregate over one window
        (``SELECT cols..., aggs... FROM window GROUP BY cols...``).  From
        registration on, the window folds its admit/expire deltas into the
        view inside the maintaining transaction, and eligible compiled
        SELECTs are lowered to O(groups) view reads.  Registration bumps the
        catalog version, so cached ad-hoc plans re-plan and pick the view
        up lazily — the same DDL invalidation discipline compiled plans use.
        """
        name = name.lower()
        if name in self.delta_views:
            raise CatalogError(f"view {name!r} already exists")
        if isinstance(select, str):
            statement = parse(select)
            if not isinstance(statement, SelectStmt):
                raise CatalogError("a view is defined by a SELECT statement")
            select = statement
        plan = self.planner.plan(select)
        table_name, group_offsets, specs = derive_view_shape(plan)
        entry = self.catalog.table(table_name)
        if entry.kind is not TableKind.WINDOW:
            raise CatalogError(
                f"delta views are maintained over windows; {table_name!r} "
                f"is a {entry.kind.value}"
            )
        window = self.windows[table_name]
        view = DeltaView(
            name, table_name, group_offsets, specs, self.stats, sql=sql
        )
        if self.metrics is not None:
            view.bind_metrics(self.metrics)
        # seed from whatever the window already holds, then ride the deltas
        view.rebuild(self.partitions[0].ee.table(table_name))
        window.views.append(view)
        self.delta_views[name] = view
        self._views_of_table.setdefault(table_name, []).append(view)
        # invalidate cached ad-hoc plans and re-lower pre-planned procedure
        # statements so existing aggregate scans pick the view up
        self.catalog.bump_version()
        for procedure in self.procedures.values():
            for proc_plan in procedure.plans.values():
                self._attach_view_read(proc_plan)
        return view

    def drop_delta_view(self, name: str) -> None:
        """Unregister a delta view and detach every plan lowered onto it."""
        name = name.lower()
        view = self.delta_views.pop(name, None)
        if view is None:
            raise UnknownObjectError(f"no view named {name!r}")
        self.windows[view.table_name].views.remove(view)
        table_views = self._views_of_table.get(view.table_name, [])
        if view in table_views:
            table_views.remove(view)
        if not table_views:
            self._views_of_table.pop(view.table_name, None)
        self.catalog.bump_version()
        for procedure in self.procedures.values():
            for proc_plan in procedure.plans.values():
                read = getattr(proc_plan, "view_read", None)
                if read is not None and read.view is view:
                    proc_plan.view_read = None

    def _attach_view_read(self, plan: Plan) -> None:
        """Lower an eligible compiled aggregate SELECT onto a delta view.

        Eligibility: a SeqScan over a viewed window, no joins or WHERE,
        grouped, group keys and aggregates matching what the view maintains.
        The interpreter stays the differential oracle: with
        ``compile=False`` plans are never lowered, so interpreted execution
        always scans.
        """
        if not self._views_of_table or not isinstance(plan, SelectPlan):
            return
        if plan.compiled is None or plan.view_read is not None:
            return
        if plan.joins or plan.where is not None or not plan.grouped:
            return
        if not isinstance(plan.access, SeqScan):
            return
        for view in self._views_of_table.get(plan.access.table, ()):
            agg_map = match_plan(view, plan)
            if agg_map is not None:
                plan.view_read = ViewRead(view, agg_map)
                return

    def _plan_statement(self, sql: str, label: str):
        plan = super()._plan_statement(sql, label)
        self._attach_view_read(plan)
        return plan

    # ------------------------------------------------------------------
    # EE triggers (SQL-level)
    # ------------------------------------------------------------------

    def create_ee_trigger(
        self,
        name: str,
        on_stream: str,
        sql: str,
        param_columns: list[str] | tuple[str, ...] = (),
    ) -> EETrigger:
        """Attach a SQL statement that fires in-EE per tuple inserted into
        ``on_stream``, with ``param_columns`` of the new tuple bound to the
        statement's ``?`` parameters."""
        source_entry = self.catalog.table(on_stream)
        if source_entry.kind is TableKind.TABLE:
            raise CatalogError(
                "EE triggers attach to streams/windows, not regular tables"
            )
        plan = self.planner.plan(parse(sql))
        offsets = tuple(
            source_entry.schema.offset_of(column) for column in param_columns
        )
        trigger = EETrigger(
            name=name.lower(),
            on_table=source_entry.name,
            plan=plan,
            param_offsets=offsets,
            sql=sql,
        )
        self._ee_triggers.setdefault(source_entry.name, []).append(trigger)

        def _fire(txn: TransactionContext, table_name: str, rowids: list[int]) -> None:
            if not self._hooks_active(source_entry.name):
                return
            table = self.partitions[0].ee.table(table_name)
            rows = [table.get(rowid) for rowid in rowids]
            # EE triggers fire inside the EE like individual statements, so
            # their spans ride the same microscope flag as sql spans
            if self.tracer.sql_spans:
                with self.tracer.span(
                    "trigger", f"ee:{trigger.name}", tuples=len(rows)
                ):
                    trigger.fire(self.partitions[0].ee, self.stats, txn, rows)
            else:
                trigger.fire(self.partitions[0].ee, self.stats, txn, rows)

        self.partitions[0].ee.add_insert_hook(source_entry.name, _fire)
        return trigger

    # ------------------------------------------------------------------
    # Workflow deployment
    # ------------------------------------------------------------------

    def deploy_workflow(self, spec: WorkflowSpec) -> WorkflowSpec:
        if spec.name in self.workflows:
            raise WorkflowError(f"workflow {spec.name!r} already deployed")
        spec.finalize(self.catalog, self.procedures)

        for node in spec.nodes.values():
            if not self.streams.has(node.input_stream):
                raise WorkflowError(
                    f"workflow {spec.name!r}: input stream "
                    f"{node.input_stream!r} does not exist"
                )
            for stream in node.output_streams:
                if not self.streams.has(stream):
                    raise WorkflowError(
                        f"workflow {spec.name!r}: output stream {stream!r} "
                        f"does not exist"
                    )
            if node.procedure_name in self._node_of:
                raise WorkflowError(
                    f"procedure {node.procedure_name!r} already belongs to a "
                    f"deployed workflow"
                )

        for node in spec.nodes.values():
            self._node_of[node.procedure_name] = (spec, node)
            # A node placed on another cluster worker keeps no local cursor:
            # its input stream's local copy then has no consumers, so GC
            # reclaims producer-side tuples immediately after each drain.
            if self._node_runs_locally(node):
                self.streams.get(node.input_stream).add_consumer(
                    node.procedure_name
                )
            for stream in node.output_streams:
                self.streams.set_producer(stream, node.procedure_name)

        for name in spec.border_procedures:
            node = spec.nodes[name]
            existing = self._border_consumer.get(node.input_stream)
            if existing is not None:
                raise WorkflowError(
                    f"border stream {node.input_stream!r} already feeds "
                    f"{existing[1].procedure_name!r}; one BSP per border stream"
                )
            self._border_consumer[node.input_stream] = (spec, node)
            self._ingest_buffers.setdefault(node.input_stream, [])

        self.workflows[spec.name] = spec
        return spec

    # ------------------------------------------------------------------
    # Ingestion (the push-based client path)
    # ------------------------------------------------------------------

    def ingest(self, stream_name: str, rows: list[tuple[Any, ...]]) -> int:
        """Push tuples into a border stream: ONE client↔PE round trip.

        Tuples are made durable (upstream backup: the command log records the
        raw input), buffered, cut into batches of the consuming BSP's batch
        size, and — in eager mode — processed to quiescence before returning.
        Returns the number of tuples accepted.
        """
        self._require_alive()
        stream_name = stream_name.lower()
        if not self.streams.has(stream_name):
            raise UnknownObjectError(f"no stream named {stream_name!r}")
        if self.streams.get(stream_name).producer is not None:
            raise StreamingError(
                f"stream {stream_name!r} is produced by a workflow procedure; "
                f"clients cannot ingest into interior streams"
            )
        if not rows:
            return 0
        rows = [tuple(row) for row in rows]

        if self.tracer.enabled:
            # root span of the whole pipeline instance: in eager mode every
            # downstream TE/trigger span nests under it via the span stack
            with self.tracer.span(
                "workflow", f"ingest:{stream_name}", tuples=len(rows)
            ):
                self._ingest_body(stream_name, rows)
        else:
            self._ingest_body(stream_name, rows)
        return len(rows)

    def _ingest_body(self, stream_name: str, rows: list[tuple[Any, ...]]) -> None:
        if not self._replaying:
            self.stats.client_pe_roundtrips += 1
            self.command_log.append(
                txn_id=self._next_txn_id,
                procedure=_INGEST_RECORD,
                params=(stream_name, tuple(rows)),
                partition=0,
                logical_time=self.clock.now,
                meta={"kind": "ingest"},
            )
            self._next_txn_id += 1

        self.stats.stream_tuples_ingested += len(rows)
        self._buffer_and_cut(stream_name, rows)
        if self.eager:
            self.run_until_quiescent()
        if not self._replaying:
            # counted after the work so an auto-snapshot covers this ingest
            self._note_logged_command()

    def _buffer_and_cut(self, stream_name: str, rows: list[tuple[Any, ...]]) -> None:
        buffer = self._ingest_buffers.setdefault(stream_name, [])
        buffer.extend(rows)
        consumer = self._border_consumer.get(stream_name)
        if consumer is None:
            return  # no workflow deployed yet; tuples wait in the buffer
        spec, node = consumer
        # border TEs join the ingest's trace even when they run later
        # (non-eager mode drains the scheduler outside the ingest span)
        trace_ctx = (
            self.tracer.current_context() if self.tracer.enabled else None
        )
        while len(buffer) >= node.batch_size:
            batch_rows = buffer[: node.batch_size]
            del buffer[: node.batch_size]
            batch = self.batch_factory.origin_batch(stream_name, batch_rows)
            self.latency.record_enqueue(batch.origin_batch_id)
            self.scheduler.enqueue(
                StreamTask(
                    procedure_name=node.procedure_name,
                    batch=batch,
                    depth=node.depth,
                    workflow_name=spec.name,
                    trace_ctx=trace_ctx,
                )
            )

    # ------------------------------------------------------------------
    # The scheduler loop
    # ------------------------------------------------------------------

    def run_until_quiescent(self) -> int:
        """Process pending TEs (in the S-Store serializable order) until none
        remain, then garbage-collect streams.  Returns TEs executed."""
        if self._in_drain:
            return 0
        self._in_drain = True
        executed = 0
        try:
            while self.scheduler.has_pending:
                task = self.scheduler.pop_next()
                self._execute_stream_te(task)
                executed += 1
        finally:
            self._in_drain = False
        if executed:
            self._collect_garbage()
        return executed

    def _collect_garbage(self) -> None:
        partition = self.partitions[0]
        txn = TransactionContext(self._next_txn_id, partition.ee, "<gc>")
        self._next_txn_id += 1
        self.gc.collect(txn)
        txn.commit()
        self.stats.bump("gc_passes")

    def workflow_status(self) -> dict[str, Any]:
        """Operational snapshot of the streaming layer.

        Pending TEs, per-stream buffered tuples and consumer cursors, live
        stream/window tuple counts, and pipeline latency so far — what an
        operator dashboard for the engine would poll.
        """
        streams = {}
        for info in self.streams.all():
            streams[info.name] = {
                "live_tuples": self.partitions[0].ee.table(info.name).row_count(),
                "buffered": len(self._ingest_buffers.get(info.name, [])),
                "producer": info.producer,
                "cursors": dict(info.cursors),
            }
        windows = {
            name: {
                "live_tuples": self.partitions[0].ee.table(name).row_count(),
                "staged": state.staged_count,
                "spec": (
                    state.spec.kind.value,
                    state.spec.size,
                    state.spec.slide,
                ),
                "owner": self.scopes.windows().get(name),
            }
            for name, state in self.windows.items()
        }
        return {
            "pending_tes": self.scheduler.pending_count,
            "committed_tes": len(self.schedule_history),
            "workflows": {
                name: {
                    "border": spec.border_procedures,
                    "interior": spec.interior_procedures,
                    "serial_required": spec.serial_required,
                }
                for name, spec in self.workflows.items()
            },
            "streams": streams,
            "windows": windows,
            "latency": self.latency.summary(),
        }

    # ------------------------------------------------------------------
    # Stream TE execution
    # ------------------------------------------------------------------

    def _execute_stream_te(self, task: StreamTask) -> None:
        tracer = self.tracer
        metered = self.metrics is not None
        if not (tracer.enabled or metered):
            self._execute_stream_te_body(task)
            return
        started_ns = time.perf_counter_ns() if metered else 0
        # a TE popped outside its ingest's span (non-eager drain, replay)
        # re-joins the originating trace via the context the task carries
        activated = tracer.enabled and tracer.depth == 0 and task.trace_ctx is not None
        if activated:
            tracer.activate(task.trace_ctx)
        try:
            with tracer.span(
                "txn",
                task.procedure_name,
                batch_id=task.batch.batch_id,
                depth=task.depth,
                workflow=task.workflow_name,
            ) as span:
                outcome = self._execute_stream_te_body(task)
                # direct attrs store — the span's dict already exists, and
                # set(**kwargs) would build a second dict per transaction
                span.attrs["outcome"] = outcome
        finally:
            if activated:
                tracer.deactivate()
        if metered:
            duration_us = (time.perf_counter_ns() - started_ns) / 1000.0
            buf = self._txn_obs
            if buf is None:
                self._observe_txn(
                    task.procedure_name, duration_us, outcome == "committed"
                )
            else:
                buf.append((task.procedure_name, duration_us, outcome == "committed"))

    def _execute_stream_te_body(self, task: StreamTask) -> str:
        procedure = self.procedure(task.procedure_name)
        partition = self.partitions[0]
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        txn = TransactionContext(txn_id, partition.ee, procedure.name)
        ctx = StreamContext(self, procedure, txn, 0, batch=task.batch)

        window_backup = {
            name: state.dump_state() for name, state in self.windows.items()
        }
        spec, node = self._node_of[task.procedure_name]
        is_border = (
            task.depth == 0 and node.input_stream == task.batch.stream
        )

        input_high = -1
        partition.acquire()
        try:
            if is_border:
                # The batch enters stream state transactionally at TE start;
                # EE hooks (windows, SQL triggers) fire inside this txn.
                self.stats.pe_ee_roundtrips += 1
                rowids = partition.ee.insert_rows(
                    txn, node.input_stream, list(task.batch.rows)
                )
                input_high = max(rowids)
            procedure.run(ctx)
        except (TransactionAborted, ConstraintViolationError) as exc:
            txn.abort()
            self._restore_windows(window_backup)
            self.stats.txns_aborted += 1
            self.stats.bump("stream_te_aborts")
            # The batch is consumed even on abort (it will never be retried),
            # so the cursor still advances and GC can reclaim the tuples.
            self._advance_input_cursor(task, node, input_high)
            return "aborted"
        except ReproError:
            txn.abort()
            self._restore_windows(window_backup)
            self.stats.txns_aborted += 1
            self._failed_te = (
                procedure.name,
                task.batch.stream,
                task.batch.origin_batch_id,
            )
            raise
        except BaseException:
            self._failed_te = (
                procedure.name,
                task.batch.stream,
                task.batch.origin_batch_id,
            )
            raise
        finally:
            partition.release()

        txn.commit()
        self.stats.txns_committed += 1
        self.latency.record_commit(task.batch.origin_batch_id)
        self._advance_input_cursor(task, node, input_high)
        self.schedule_history.append(
            TERecord(
                seq=self._commit_seq,
                procedure=procedure.name,
                origin_batch_id=task.batch.origin_batch_id,
                depth=task.depth,
                workflow=task.workflow_name,
            )
        )
        self._commit_seq += 1
        self.stream_commits.append((node.input_stream, tuple(task.batch.rows)))
        self._dispatch_emissions(txn, origin=task.batch)
        return "committed"

    def _advance_input_cursor(
        self, task: StreamTask, node: WorkflowNode, border_high: int
    ) -> None:
        """Mark the TE's input batch consumed so GC can reclaim the tuples.

        Border TEs know the rowids they inserted themselves; interior TEs
        consume the rowids the upstream emission recorded for their batch.
        """
        info = self.streams.get(node.input_stream)
        if border_high >= 0:
            info.advance_cursor(node.procedure_name, border_high)
            return
        recorded = self._batch_high_rowids.pop(task.batch.batch_id, None)
        if recorded is not None:
            info.advance_cursor(node.procedure_name, recorded)

    def _restore_windows(self, backup: dict[str, dict[str, Any]]) -> None:
        for name, state in backup.items():
            self.windows[name].load_state(state)

    # ------------------------------------------------------------------
    # PE triggers: commit-time dispatch of emitted batches
    # ------------------------------------------------------------------

    def _dispatch_emissions(
        self, txn: TransactionContext, origin: Batch | None
    ) -> None:
        emissions: dict[str, dict[str, Any]] = txn.notes.get("emissions", {})
        tracer = self.tracer
        for stream_name, record in emissions.items():
            rows = record["rows"]
            if not rows:
                continue
            if not self._stream_consumed_locally(stream_name):
                # the consuming node lives on another cluster worker: hand
                # the batch to the dispatch buffer instead of the scheduler
                self._dispatch_remote(stream_name, rows)
                continue
            for spec, node in self._consumers_of(stream_name):
                if origin is not None:
                    batch = self.batch_factory.derived_batch(
                        origin, stream_name, rows
                    )
                else:
                    batch = self.batch_factory.origin_batch(stream_name, rows)
                self._batch_high_rowids[batch.batch_id] = record["high_rowid"]
                self.stats.pe_trigger_firings += 1
                trigger_span = None
                if tracer.enabled:
                    # the trigger span is the causal hinge: the downstream
                    # TE parents under it, tying the pipeline into one trace
                    trigger_span = tracer.start_span(
                        "trigger",
                        f"pe:{stream_name}->{node.procedure_name}",
                        {"tuples": len(rows)},
                    )
                self.scheduler.enqueue(
                    StreamTask(
                        procedure_name=node.procedure_name,
                        batch=batch,
                        depth=node.depth,
                        workflow_name=spec.name,
                        trace_ctx=tracer.current_context()
                        if trigger_span is not None
                        else None,
                    )
                )
                if trigger_span is not None:
                    tracer.end_span(trigger_span)

    def _consumers_of(self, stream_name: str) -> list[tuple[WorkflowSpec, WorkflowNode]]:
        result: list[tuple[WorkflowSpec, WorkflowNode]] = []
        for spec in self.workflows.values():
            for node in spec.consumers_of_stream(stream_name):
                result.append((spec, node))
        return result

    # ------------------------------------------------------------------
    # Distribution hooks (repro.dstream overrides these)
    # ------------------------------------------------------------------
    # In a single-process engine every workflow node, stream and hook is
    # local, so these are constants.  StreamShardEngine overrides them with
    # placement-aware versions so one engine instance per cluster worker can
    # run just its share of a workflow.

    def _node_runs_locally(self, node: WorkflowNode) -> bool:
        return True

    def _stream_consumed_locally(self, stream_name: str) -> bool:
        return True

    def _hooks_active(self, stream_name: str) -> bool:
        """Whether window/EE-trigger hooks on ``stream_name`` fire here."""
        return True

    def _dispatch_remote(
        self, stream_name: str, rows: list[tuple[Any, ...]]
    ) -> None:
        raise StreamingError(
            f"stream {stream_name!r} has no local consumer and this engine "
            f"cannot dispatch remotely"
        )

    # ------------------------------------------------------------------
    # Emission / access authorization
    # ------------------------------------------------------------------

    def authorize_emit(self, procedure: StoredProcedure, stream_name: str) -> None:
        stream_name = stream_name.lower()
        if not self.streams.has(stream_name):
            raise UnknownObjectError(f"no stream named {stream_name!r}")
        info = self.streams.get(stream_name)
        membership = self._node_of.get(procedure.name)
        if membership is not None:
            _spec, node = membership
            if stream_name not in node.output_streams:
                raise StreamingError(
                    f"procedure {procedure.name!r} did not declare "
                    f"{stream_name!r} as an output stream"
                )
            return
        # Non-workflow (OLTP) procedures may emit into client-style border
        # streams only — they act as in-engine data sources.
        if info.producer is not None:
            raise StreamingError(
                f"stream {stream_name!r} is produced by "
                f"{info.producer!r}; {procedure.name!r} cannot emit into it"
            )

    def check_plan_access(self, plan: Plan, procedure_name: str | None) -> None:
        """Enforce window scoping and stream/window write protection."""
        reads, writes = plan_table_access(plan)
        self.scopes.check_access(reads | writes, procedure_name)
        for table_name in writes:
            if not self.catalog.has_table(table_name):
                continue
            kind = self.catalog.table(table_name).kind
            if kind is TableKind.STREAM:
                raise StreamingError(
                    f"direct DML on stream {table_name!r}; streams are "
                    f"written with ctx.emit(...) so the engine can batch and "
                    f"trigger downstream work"
                )
            if kind is TableKind.WINDOW:
                raise StreamingError(
                    f"direct DML on window {table_name!r}; window contents "
                    f"are maintained natively by the EE"
                )

    def _check_adhoc_plan(self, plan: Any) -> None:
        self.check_plan_access(plan, None)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    def advance_time(self, ticks: int = 1) -> int:
        """Advance the logical clock; time-based windows slide accordingly.

        Durable: a tick record lands in the command log so recovery replays
        the same timeline.
        """
        self._require_alive()
        now = self.clock.advance(ticks)
        if not self._replaying:
            self.command_log.append(
                txn_id=self._next_txn_id,
                procedure=_TICK_RECORD,
                params=(ticks,),
                partition=0,
                logical_time=now,
                meta={"kind": "tick"},
            )
            self._next_txn_id += 1
        self._slide_time_windows()
        if not self._replaying:
            self._note_logged_command()
        return now

    def _slide_time_windows(self) -> None:
        time_windows = [
            state
            for state in self.windows.values()
            if state.spec.kind is WindowKind.TIME
        ]
        if not time_windows:
            return
        partition = self.partitions[0]
        txn = TransactionContext(self._next_txn_id, partition.ee, "<tick>")
        self._next_txn_id += 1
        for state in time_windows:
            state.advance_time(txn, self.clock.now)
        txn.commit()

    # ------------------------------------------------------------------
    # OLTP entry points (drain stream work around them)
    # ------------------------------------------------------------------

    def call_procedure(self, name: str, *params: Any) -> ProcedureResult:
        self.run_until_quiescent()
        result = super().call_procedure(name, *params)
        self.run_until_quiescent()
        return result

    def _make_context(
        self,
        procedure: StoredProcedure,
        txn: TransactionContext,
        partition_id: int,
    ) -> ProcedureContext:
        return StreamContext(self, procedure, txn, partition_id, batch=None)

    def _after_commit(
        self,
        procedure: StoredProcedure,
        ctx: ProcedureContext,
        txn: TransactionContext,
        params: tuple[Any, ...],
        result: ProcedureResult,
    ) -> None:
        # An OLTP procedure that emitted into a border stream starts a fresh
        # pipeline instance (its own origin batch).
        self._dispatch_emissions(txn, origin=None)

    # ------------------------------------------------------------------
    # Durability: snapshots + upstream-backup replay
    # ------------------------------------------------------------------

    def take_snapshot(self):
        self.run_until_quiescent()
        return super().take_snapshot()

    def _snapshot_extra(self) -> dict[str, Any]:
        return {
            "streams": self.streams.dump_state(),
            "windows": {
                name: state.dump_state() for name, state in self.windows.items()
            },
            "batch_factory": self.batch_factory.dump_state(),
            "ingest_buffers": {
                name: [list(row) for row in rows]
                for name, rows in self._ingest_buffers.items()
            },
        }

    def _restore_extra(self, extra: dict[str, Any]) -> None:
        self.scheduler.clear()
        self._batch_high_rowids.clear()
        self.stream_commits.clear()
        self.streams.load_state(extra.get("streams", {}))
        window_states = extra.get("windows", {})
        for name, state in self.windows.items():
            if name in window_states:
                state.load_state(window_states[name])
            else:
                state.reset()
        self.batch_factory.load_state(extra.get("batch_factory", {}))
        buffers = extra.get("ingest_buffers", {})
        for name in self._ingest_buffers:
            restored = buffers.get(name, [])
            self._ingest_buffers[name] = [tuple(row) for row in restored]

    def _replay_invocation(self, record: LogRecord) -> None:
        if record.procedure == _INGEST_RECORD:
            stream_name, rows = record.params
            self.stats.stream_tuples_ingested += len(rows)
            self._buffer_and_cut(stream_name, [tuple(row) for row in rows])
            self.run_until_quiescent()
            return
        if record.procedure == _TICK_RECORD:
            # clock was already advanced to record.logical_time by recover()
            self._slide_time_windows()
            return
        super()._replay_invocation(record)
        self.run_until_quiescent()

"""Input batches: the unit that defines a streaming transaction.

From the paper (§2): *"An S-Store transaction is defined by two things: a
stored procedure definition and a batch of input tuples."*  A border stored
procedure's (BSP) batch is cut from the raw input stream at a user-specified
size; an interior stored procedure's (ISP) batch is whatever appeared on the
output stream of the immediately upstream transaction execution.

Batches carry two identifiers:

``batch_id``
    Globally unique, for bookkeeping.

``origin_batch_id``
    The BSP batch this work descends from.  All TEs processing the same
    origin batch form one pipeline instance; the scheduler orders pending
    TEs by ``(origin_batch_id, workflow depth)`` which yields exactly the
    serializable schedules the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import StreamingError

__all__ = ["Batch", "BatchFactory"]


@dataclass(frozen=True)
class Batch:
    """An immutable batch of input tuples bound for one stored procedure."""

    batch_id: int
    origin_batch_id: int
    stream: str
    rows: tuple[tuple[Any, ...], ...]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    def __post_init__(self) -> None:
        if not self.rows:
            raise StreamingError("a batch must contain at least one tuple")


class BatchFactory:
    """Allocates batch ids; owned by the streaming engine.

    The counters are part of durable state (they are captured in snapshots)
    so that recovery continues the same numbering.
    """

    def __init__(self) -> None:
        self._next_batch_id = 0
        self._next_origin_id = 0

    def origin_batch(self, stream: str, rows: list[tuple[Any, ...]]) -> Batch:
        """A new BSP input batch (becomes its own origin)."""
        origin_id = self._next_origin_id
        self._next_origin_id += 1
        batch = Batch(
            batch_id=self._next_batch_id,
            origin_batch_id=origin_id,
            stream=stream,
            rows=tuple(tuple(row) for row in rows),
        )
        self._next_batch_id += 1
        return batch

    def derived_batch(
        self, origin: Batch, stream: str, rows: list[tuple[Any, ...]]
    ) -> Batch:
        """An ISP batch descending from ``origin`` (same pipeline instance)."""
        batch = Batch(
            batch_id=self._next_batch_id,
            origin_batch_id=origin.origin_batch_id,
            stream=stream,
            rows=tuple(tuple(row) for row in rows),
        )
        self._next_batch_id += 1
        return batch

    # -- snapshot support ----------------------------------------------------

    def dump_state(self) -> dict[str, int]:
        return {
            "next_batch_id": self._next_batch_id,
            "next_origin_id": self._next_origin_id,
        }

    def load_state(self, state: dict[str, int]) -> None:
        self._next_batch_id = int(state.get("next_batch_id", 0))
        self._next_origin_id = int(state.get("next_origin_id", 0))

"""Pipeline latency tracking.

Streaming systems are judged on end-to-end latency as much as throughput.
The tracker records, per *origin batch* (one pipeline instance), the wall
time from batch formation (the scheduler accepted it) to the commit of its
last transaction execution — i.e., queueing delay plus every TE in the
pipeline.

Latencies are observational only: they are not part of durable state and do
not participate in recovery (wall time is inherently non-replayable).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["LatencySummary", "LatencyTracker"]


@dataclass(frozen=True)
class LatencySummary:
    """Distribution of completed pipeline latencies, in milliseconds."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    max_ms: float

    @staticmethod
    def empty() -> "LatencySummary":
        return LatencySummary(count=0, mean_ms=0.0, p50_ms=0.0, p95_ms=0.0,
                              max_ms=0.0)


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


class LatencyTracker:
    """Enqueue→last-commit latency per origin batch."""

    def __init__(self, clock: "callable[[], float]" = time.perf_counter) -> None:
        self._clock = clock
        self._enqueued_at: dict[int, float] = {}
        self._latest_commit: dict[int, float] = {}

    def record_enqueue(self, origin_batch_id: int) -> None:
        """Called when a BSP batch is cut; first call per origin wins."""
        self._enqueued_at.setdefault(origin_batch_id, self._clock())

    def record_commit(self, origin_batch_id: int) -> None:
        """Called at each TE commit; the last one defines completion."""
        if origin_batch_id in self._enqueued_at:
            self._latest_commit[origin_batch_id] = self._clock()

    # ------------------------------------------------------------------

    @property
    def completed_count(self) -> int:
        return len(self._latest_commit)

    def latencies_ms(self) -> list[float]:
        return [
            (self._latest_commit[origin] - self._enqueued_at[origin]) * 1000.0
            for origin in self._latest_commit
        ]

    def summary(self) -> LatencySummary:
        values = sorted(self.latencies_ms())
        if not values:
            return LatencySummary.empty()
        return LatencySummary(
            count=len(values),
            mean_ms=sum(values) / len(values),
            p50_ms=_percentile(values, 0.50),
            p95_ms=_percentile(values, 0.95),
            max_ms=values[-1],
        )

    def reset(self) -> None:
        self._enqueued_at.clear()
        self._latest_commit.clear()

"""Workflows: DAGs of stored procedures connected by streams.

A workflow (paper §2) is a pipeline of dependent stored procedures: each
node consumes an input stream and may emit to output streams that feed
downstream nodes.  The node whose input stream is fed by clients is a
*border stored procedure* (BSP); every other node is an *interior stored
procedure* (ISP).  BSP transaction executions are defined by user-specified
batch sizes; ISP executions by the output batches of their upstream TE.

The workflow also determines the correctness regime:

* TEs of the same procedure must run in natural (batch) order;
* for one input batch, upstream TEs must precede downstream TEs
  (a serializable schedule);
* if two procedures in the workflow access a *shared writable table* —
  a regular TABLE written by at least one of them and accessed by another —
  the paper requires serial, contiguous execution of the workflow's
  procedures per batch.  :meth:`WorkflowSpec.analyze_sharing` detects this
  automatically from the procedures' pre-planned statements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import WorkflowError
from repro.hstore.catalog import Catalog, TableKind
from repro.hstore.planner import (
    DeletePlan,
    InsertPlan,
    Plan,
    SelectPlan,
    UpdatePlan,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hstore.procedure import StoredProcedure

__all__ = ["WorkflowNode", "WorkflowSpec", "plan_table_access"]


def _subquery_reads(plan: Plan) -> set[str]:
    """Tables read by planned subqueries embedded in the plan's expressions."""
    from repro.hstore.expression import (
        Expression,
        PlannedExists,
        PlannedInSubquery,
        walk,
    )

    expressions: list[Expression] = []
    if isinstance(plan, SelectPlan):
        if plan.where is not None:
            expressions.append(plan.where)
        for step in plan.joins:
            if step.on is not None:
                expressions.append(step.on)
        expressions.extend(plan.post_exprs)
        if plan.post_having is not None:
            expressions.append(plan.post_having)
    elif isinstance(plan, (UpdatePlan, DeletePlan)):
        if plan.where is not None:
            expressions.append(plan.where)
        if isinstance(plan, UpdatePlan):
            expressions.extend(expr for _offset, expr in plan.assignments)

    reads: set[str] = set()
    for expression in expressions:
        for node in walk(expression):
            if isinstance(node, (PlannedInSubquery, PlannedExists)):
                inner_reads, _writes = plan_table_access(node.plan)
                reads |= inner_reads
    return reads


def plan_table_access(plan: Plan) -> tuple[set[str], set[str]]:
    """(read set, write set) of table names one plan touches.

    Includes tables read by uncorrelated subqueries in WHERE/HAVING/SET
    clauses, so the workflow sharing analysis cannot be blinded by them.
    The result is memoized on the plan — plans are immutable once built,
    and the scoping check runs per statement *execution*, not per plan.
    """
    cached = getattr(plan, "_table_access", None)
    if cached is not None:
        return cached
    reads: set[str] = set()
    writes: set[str] = set()
    if isinstance(plan, SelectPlan):
        reads.add(plan.access.table)
        for step in plan.joins:
            reads.add(step.access.table)
    elif isinstance(plan, InsertPlan):
        writes.add(plan.table)
        if plan.select is not None:
            inner_reads, _ = plan_table_access(plan.select)
            reads |= inner_reads
    elif isinstance(plan, (UpdatePlan, DeletePlan)):
        writes.add(plan.table)
        reads.add(plan.table)
    reads |= _subquery_reads(plan)
    plan._table_access = (reads, writes)
    return reads, writes


@dataclass
class WorkflowNode:
    """One stored procedure in a workflow."""

    procedure_name: str
    input_stream: str
    #: BSP only: how many input tuples form one transaction execution
    batch_size: int = 1
    #: streams this node emits to (declared; ``emit`` enforces membership)
    output_streams: tuple[str, ...] = ()
    #: filled by ``finalize``: distance from the border (BSP = 0)
    depth: int = 0

    def __post_init__(self) -> None:
        self.procedure_name = self.procedure_name.lower()
        self.input_stream = self.input_stream.lower()
        self.output_streams = tuple(s.lower() for s in self.output_streams)
        if self.batch_size < 1:
            raise WorkflowError(
                f"node {self.procedure_name!r}: batch size must be >= 1"
            )


class WorkflowSpec:
    """A validated workflow definition.

    Build with :meth:`add_node`, then the streaming engine finalizes it at
    deployment (:meth:`finalize`), which classifies border vs. interior
    procedures, computes depths, rejects cycles and fan-in, and analyzes
    table sharing.
    """

    def __init__(self, name: str) -> None:
        self.name = name.lower()
        self.nodes: dict[str, WorkflowNode] = {}
        #: procedures whose input stream has no producer inside the workflow
        self.border_procedures: list[str] = []
        self.interior_procedures: list[str] = []
        #: regular tables accessed by >= 2 nodes with >= 1 write
        self.shared_writable_tables: set[str] = set()
        self._finalized = False

    # -- construction --------------------------------------------------------

    def add_node(
        self,
        procedure_name: str,
        *,
        input_stream: str,
        batch_size: int = 1,
        output_streams: tuple[str, ...] | list[str] = (),
    ) -> WorkflowNode:
        if self._finalized:
            raise WorkflowError(f"workflow {self.name!r} is already deployed")
        node = WorkflowNode(
            procedure_name=procedure_name,
            input_stream=input_stream,
            batch_size=batch_size,
            output_streams=tuple(output_streams),
        )
        if node.procedure_name in self.nodes:
            raise WorkflowError(
                f"procedure {node.procedure_name!r} appears twice in "
                f"workflow {self.name!r}"
            )
        self.nodes[node.procedure_name] = node
        return node

    # -- finalization ------------------------------------------------------------

    @property
    def finalized(self) -> bool:
        return self._finalized

    def finalize(
        self,
        catalog: Catalog,
        procedures: dict[str, "StoredProcedure"],
    ) -> None:
        """Validate the DAG and compute scheduling metadata."""
        if self._finalized:
            raise WorkflowError(f"workflow {self.name!r} already finalized")
        if not self.nodes:
            raise WorkflowError(f"workflow {self.name!r} has no procedures")

        producers: dict[str, str] = {}
        for node in self.nodes.values():
            for stream in node.output_streams:
                if stream in producers:
                    raise WorkflowError(
                        f"stream {stream!r} has two producers "
                        f"({producers[stream]!r} and {node.procedure_name!r})"
                    )
                producers[stream] = node.procedure_name

        consumers_of: dict[str, list[str]] = {}
        for node in self.nodes.values():
            consumers_of.setdefault(node.input_stream, []).append(
                node.procedure_name
            )

        # fan-in check: one input stream per node is structural; two nodes
        # may share an input stream (fan-out of the stream), which is fine.
        for node in self.nodes.values():
            if node.input_stream in node.output_streams:
                raise WorkflowError(
                    f"node {node.procedure_name!r} reads and writes the same "
                    f"stream {node.input_stream!r}"
                )

        # classify border vs. interior
        self.border_procedures = sorted(
            node.procedure_name
            for node in self.nodes.values()
            if node.input_stream not in producers
        )
        self.interior_procedures = sorted(
            node.procedure_name
            for node in self.nodes.values()
            if node.input_stream in producers
        )
        if not self.border_procedures:
            raise WorkflowError(
                f"workflow {self.name!r} has no border procedure — it must "
                f"contain a cycle"
            )

        # depths via BFS from the border; also detects cycles
        depth_of: dict[str, int] = {name: 0 for name in self.border_procedures}
        frontier = list(self.border_procedures)
        visited = set(frontier)
        while frontier:
            next_frontier: list[str] = []
            for name in frontier:
                node = self.nodes[name]
                for stream in node.output_streams:
                    for consumer in consumers_of.get(stream, ()):  # fan-out ok
                        candidate_depth = depth_of[name] + 1
                        if candidate_depth > len(self.nodes):
                            raise WorkflowError(
                                f"workflow {self.name!r} contains a cycle"
                            )
                        if candidate_depth > depth_of.get(consumer, -1):
                            depth_of[consumer] = candidate_depth
                            next_frontier.append(consumer)
                        visited.add(consumer)
            frontier = next_frontier

        unreachable = set(self.nodes) - visited
        if unreachable:
            raise WorkflowError(
                f"workflow {self.name!r}: procedures {sorted(unreachable)} are "
                f"not reachable from any border procedure"
            )
        for name, depth in depth_of.items():
            self.nodes[name].depth = depth

        # procedure existence + sharing analysis
        self.shared_writable_tables = self.analyze_sharing(catalog, procedures)
        self._finalized = True

    def analyze_sharing(
        self,
        catalog: Catalog,
        procedures: dict[str, "StoredProcedure"],
    ) -> set[str]:
        """Regular tables shared by >= 2 workflow nodes with >= 1 writer."""
        access: dict[str, tuple[set[str], set[str]]] = {}
        for name in self.nodes:
            if name not in procedures:
                raise WorkflowError(
                    f"workflow {self.name!r} references unregistered "
                    f"procedure {name!r}"
                )
            reads: set[str] = set()
            writes: set[str] = set()
            for plan in procedures[name].plans.values():
                plan_reads, plan_writes = plan_table_access(plan)
                reads |= plan_reads
                writes |= plan_writes
            access[name] = (reads, writes)

        shared: set[str] = set()
        names = sorted(access)
        for i, first in enumerate(names):
            for second in names[i + 1 :]:
                reads_a, writes_a = access[first]
                reads_b, writes_b = access[second]
                overlap = (writes_a & (reads_b | writes_b)) | (
                    writes_b & (reads_a | writes_a)
                )
                for table_name in overlap:
                    if (
                        catalog.has_table(table_name)
                        and catalog.table(table_name).kind is TableKind.TABLE
                    ):
                        shared.add(table_name)
        return shared

    @property
    def serial_required(self) -> bool:
        """Whether the paper's shared-writable-table rule forces serial
        (contiguous per-batch) execution of this workflow's procedures."""
        return bool(self.shared_writable_tables)

    # -- introspection ---------------------------------------------------------

    def node(self, procedure_name: str) -> WorkflowNode:
        try:
            return self.nodes[procedure_name.lower()]
        except KeyError:
            raise WorkflowError(
                f"workflow {self.name!r} has no procedure {procedure_name!r}"
            ) from None

    def consumers_of_stream(self, stream: str) -> list[WorkflowNode]:
        stream = stream.lower()
        return [
            node for node in self.nodes.values() if node.input_stream == stream
        ]

    def max_depth(self) -> int:
        return max(node.depth for node in self.nodes.values())

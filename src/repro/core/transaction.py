"""Transaction executions and the S-Store schedule validator.

A *transaction execution* (TE) is one run of a stored procedure on one input
batch.  The paper's extended transaction model imposes three ordering rules
on any legal ("S-Store serializable") schedule:

1. **Natural order** — the i-th TE of a stored procedure precedes its
   (i+1)-th TE (per-procedure batches are processed in arrival order).
2. **Workflow order** — for a given input batch, if SP_a precedes SP_b in
   the workflow, SP_a's TE on that batch precedes SP_b's TE on it.
3. **Contiguity under sharing** — when workflow procedures share writable
   tables, each batch's pipeline of TEs must run serially, with no TEs of
   *other* batches of the same workflow interleaved.

:func:`validate_schedule` checks a recorded history against these rules and
returns every violation.  The S-Store scheduler produces histories that pass
by construction; the naive H-Store baseline (client-driven, arrival-order
execution) produces histories that fail — which is experiment E9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.workflow import WorkflowSpec

__all__ = ["TERecord", "ScheduleViolation", "validate_schedule"]


@dataclass(frozen=True)
class TERecord:
    """One committed transaction execution in a history."""

    seq: int  # global commit order (0, 1, 2, ...)
    procedure: str
    origin_batch_id: int
    depth: int
    workflow: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "procedure", self.procedure.lower())
        object.__setattr__(self, "workflow", self.workflow.lower())


@dataclass(frozen=True)
class ScheduleViolation:
    """One broken ordering rule."""

    rule: str  # "natural-order" | "workflow-order" | "contiguity"
    description: str
    first_seq: int
    second_seq: int


def validate_schedule(
    records: Iterable[TERecord],
    workflow: WorkflowSpec,
) -> list[ScheduleViolation]:
    """All ordering violations in a history, for one workflow's TEs."""
    history = [
        record
        for record in sorted(records, key=lambda r: r.seq)
        if record.workflow == workflow.name
    ]
    violations: list[ScheduleViolation] = []
    violations.extend(_check_natural_order(history))
    violations.extend(_check_workflow_order(history))
    if workflow.serial_required:
        violations.extend(_check_contiguity(history))
    return violations


def _check_natural_order(history: list[TERecord]) -> list[ScheduleViolation]:
    """Per procedure, origin batch ids must be non-decreasing."""
    violations: list[ScheduleViolation] = []
    last_seen: dict[str, TERecord] = {}
    for record in history:
        previous = last_seen.get(record.procedure)
        if previous is not None and record.origin_batch_id < previous.origin_batch_id:
            violations.append(
                ScheduleViolation(
                    rule="natural-order",
                    description=(
                        f"{record.procedure} ran batch "
                        f"{record.origin_batch_id} after batch "
                        f"{previous.origin_batch_id}"
                    ),
                    first_seq=previous.seq,
                    second_seq=record.seq,
                )
            )
        last_seen[record.procedure] = record
    return violations


def _check_workflow_order(history: list[TERecord]) -> list[ScheduleViolation]:
    """Per batch, depths must be non-decreasing (upstream before downstream)."""
    violations: list[ScheduleViolation] = []
    deepest: dict[int, TERecord] = {}
    for record in history:
        previous = deepest.get(record.origin_batch_id)
        if previous is not None and record.depth < previous.depth:
            violations.append(
                ScheduleViolation(
                    rule="workflow-order",
                    description=(
                        f"batch {record.origin_batch_id}: "
                        f"{record.procedure} (depth {record.depth}) ran after "
                        f"{previous.procedure} (depth {previous.depth})"
                    ),
                    first_seq=previous.seq,
                    second_seq=record.seq,
                )
            )
        if previous is None or record.depth >= previous.depth:
            deepest[record.origin_batch_id] = record
    return violations


def _check_contiguity(history: list[TERecord]) -> list[ScheduleViolation]:
    """Batch pipelines must not interleave when sharing is present."""
    violations: list[ScheduleViolation] = []
    finished: set[int] = set()
    current: TERecord | None = None
    for record in history:
        if record.origin_batch_id in finished:
            violations.append(
                ScheduleViolation(
                    rule="contiguity",
                    description=(
                        f"batch {record.origin_batch_id} resumed "
                        f"({record.procedure}) after other batches ran"
                    ),
                    first_seq=current.seq if current is not None else -1,
                    second_seq=record.seq,
                )
            )
            continue
        if current is not None and record.origin_batch_id != current.origin_batch_id:
            finished.add(current.origin_batch_id)
        current = record
    return violations

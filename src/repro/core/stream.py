"""Streams: continuously flowing state with hidden, garbage-collected storage.

Per the paper's *Uniform State Management* (§2), stream state is held in
ordinary H-Store in-memory tables — making access "both efficient and
transactionally safe" — but differs from regular tables in lifespan: a
stream tuple only lives until every registered consumer has read past it,
at which point the automatic garbage collector removes it.

A :class:`StreamInfo` tracks, per stream:

* the backing table name (same name, ``TableKind.STREAM`` in the catalog);
* the registered consumers (downstream stored procedures and windows), each
  with a *cursor*: the highest rowid it has fully consumed;
* which workflow procedure produces into it (at most one producer).

Garbage collection (see :mod:`repro.core.gc`) deletes every row whose rowid
is <= the minimum cursor across consumers.  A stream with no consumers keeps
nothing (its tuples are collectible immediately after the producing
transaction commits) — matching the intuition that unobserved stream state
is pure exhaust.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import DuplicateObjectError, StreamingError, UnknownObjectError

__all__ = ["StreamInfo", "StreamRegistry"]


@dataclass
class StreamInfo:
    """Streaming metadata for one stream table."""

    name: str
    #: consumer name → highest rowid consumed (-1 = nothing yet)
    cursors: dict[str, int] = field(default_factory=dict)
    #: workflow procedure that emits into this stream (None = client-ingested)
    producer: str | None = None

    def add_consumer(self, consumer: str) -> None:
        if consumer in self.cursors:
            raise DuplicateObjectError(
                f"consumer {consumer!r} already registered on stream {self.name!r}"
            )
        self.cursors[consumer] = -1

    def advance_cursor(self, consumer: str, rowid: int) -> None:
        """Mark everything up to ``rowid`` (inclusive) consumed by ``consumer``."""
        try:
            current = self.cursors[consumer]
        except KeyError:
            raise UnknownObjectError(
                f"stream {self.name!r} has no consumer {consumer!r}"
            ) from None
        if rowid > current:
            self.cursors[consumer] = rowid

    def collectible_watermark(self) -> int | None:
        """Highest rowid safe to garbage-collect (inclusive).

        ``None`` means "everything" (no consumers registered).
        """
        if not self.cursors:
            return None
        return min(self.cursors.values())


class StreamRegistry:
    """All streams of one S-Store engine."""

    def __init__(self) -> None:
        self._streams: dict[str, StreamInfo] = {}

    def add(self, name: str) -> StreamInfo:
        name = name.lower()
        if name in self._streams:
            raise DuplicateObjectError(f"stream {name!r} already registered")
        info = StreamInfo(name)
        self._streams[name] = info
        return info

    def get(self, name: str) -> StreamInfo:
        try:
            return self._streams[name.lower()]
        except KeyError:
            raise UnknownObjectError(f"no stream named {name!r}") from None

    def has(self, name: str) -> bool:
        return name.lower() in self._streams

    def all(self) -> list[StreamInfo]:
        return list(self._streams.values())

    def set_producer(self, stream_name: str, procedure_name: str) -> None:
        info = self.get(stream_name)
        if info.producer is not None and info.producer != procedure_name:
            raise StreamingError(
                f"stream {stream_name!r} already has producer "
                f"{info.producer!r}; a stream has at most one producer"
            )
        info.producer = procedure_name

    # -- snapshot support -----------------------------------------------------

    def dump_state(self) -> dict[str, Any]:
        return {
            name: {"cursors": dict(info.cursors), "producer": info.producer}
            for name, info in self._streams.items()
        }

    def load_state(self, state: dict[str, Any]) -> None:
        for name, payload in state.items():
            info = self._streams.get(name)
            if info is None:
                continue  # stream created after the snapshot; replay rebuilds
            info.cursors = {
                consumer: int(rowid)
                for consumer, rowid in payload.get("cursors", {}).items()
            }
            info.producer = payload.get("producer")

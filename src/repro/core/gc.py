"""Automatic garbage collection of expired stream state.

The paper's *Uniform State Management*: "Unlike regular tables, stream and
window state has a short lifespan determined by the queries accessing it.
To support this, S-Store provides automatic garbage collection mechanisms
for tuples that expire from stream or window state."

Window expiry happens inline at slide time (:mod:`repro.core.window`).
Stream GC happens here: after the engine reaches quiescence (no pending
TEs), every stream tuple at or below the minimum consumer cursor is dead —
nobody will ever read it — and is deleted in a small system transaction.

Experiment E6 shows that with GC enabled the live tuple count of a stream
stays bounded regardless of how many tuples have flowed through it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.stream import StreamRegistry
from repro.hstore.stats import EngineStats
from repro.hstore.txn import TransactionContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hstore.executor import ExecutionEngine

__all__ = ["StreamGarbageCollector"]


class StreamGarbageCollector:
    """Deletes fully consumed stream tuples."""

    def __init__(
        self,
        registry: StreamRegistry,
        ee: "ExecutionEngine",
        stats: EngineStats,
    ) -> None:
        self._registry = registry
        self._ee = ee
        self._stats = stats

    def collect(self, txn: TransactionContext) -> int:
        """One GC pass inside ``txn``; returns tuples collected."""
        collected = 0
        for info in self._registry.all():
            table = self._ee.table(info.name)
            watermark = info.collectible_watermark()
            if watermark is None:
                dead = table.rowids()
            else:
                dead = [rowid for rowid in table.rowids() if rowid <= watermark]
            if dead:
                self._ee.delete_rows(txn, info.name, dead)
                collected += len(dead)
        if collected:
            self._stats.stream_tuples_gced += collected
        return collected

    def live_tuples(self, stream_name: str) -> int:
        """Current live tuple count of one stream (bench/test helper)."""
        return self._ee.table(stream_name).row_count()

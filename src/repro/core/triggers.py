"""Triggers: data-driven processing at both engine layers.

The paper defines two trigger levels matching H-Store's two-layer engine:

**EE triggers** (query level)
    Attached to a stream or window; fire *inside the same transaction* when
    new tuples are inserted, enabling "continuous processing within a given
    transaction execution" with no PE↔EE round trip.  An EE trigger here is
    a pre-planned SQL statement executed once per newly inserted tuple, its
    parameters bound from the tuple's columns.  (Native window maintenance
    is a built-in EE trigger implemented in :mod:`repro.core.window`.)

**PE triggers** (stored-procedure level)
    Attached to a stream; fire *on commit* of the producing transaction
    execution and enqueue the downstream stored procedure with the emitted
    batch — "continuous processing across multiple transaction executions
    that are part of a common workflow".  PE triggers are what remove the
    client from the loop: downstream procedures are invoked engine-side
    instead of via client polling.  They are represented by workflow edges
    (:mod:`repro.core.workflow`) and fired by the streaming engine's
    post-commit hook.

S-Store triggers are *control* triggers, not generic SQL data triggers: they
react to the arrival of data from a well-defined source, and they only exist
on stream/window state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import StreamingError
from repro.hstore.planner import Plan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hstore.executor import ExecutionEngine
    from repro.hstore.stats import EngineStats
    from repro.hstore.txn import TransactionContext

__all__ = ["EETrigger", "PETrigger"]


@dataclass
class EETrigger:
    """A SQL statement fired in-EE for each tuple inserted into a stream.

    ``param_offsets`` selects which columns of the new tuple bind to the
    statement's ``?`` parameters, in order.
    """

    name: str
    on_table: str
    plan: Plan
    param_offsets: tuple[int, ...]
    sql: str

    def fire(
        self,
        ee: "ExecutionEngine",
        stats: "EngineStats",
        txn: "TransactionContext",
        rows: list[tuple[Any, ...]],
    ) -> None:
        """Execute the trigger statement once per new tuple, in-transaction.

        Counts EE trigger firings but **no** PE↔EE round trips: the whole
        point of EE triggers is that the crossing never happens.
        """
        for row in rows:
            params = tuple(row[offset] for offset in self.param_offsets)
            stats.ee_trigger_firings += 1
            ee.execute(self.plan, params, txn)
            # ee.execute counted an ee_statement; undo the implicit
            # assumption that every statement is PE-issued is unnecessary —
            # pe_ee_roundtrips is only incremented by the PE layer.


@dataclass(frozen=True)
class PETrigger:
    """A workflow edge: commit of ``producer`` batches ``stream`` tuples
    emitted by that TE into an input batch for ``consumer``."""

    stream: str
    producer: str | None  # None = client-ingested border stream
    consumer: str
    #: topological depth of the consumer in its workflow (scheduling key)
    consumer_depth: int

    def __post_init__(self) -> None:
        if self.consumer_depth < 0:
            raise StreamingError("consumer depth cannot be negative")

"""Windows: finite chunks of state over (possibly unbounded) streams.

The paper adds *windows* "to define finite chunks of state over (possibly
unbounded) streams" and maintains them natively inside the execution engine:
when new tuples land in a stream, an internal EE trigger moves them into the
window's backing table and expires old tuples — all within the inserting
transaction, with **zero** extra PE↔EE round trips.  (The H-Store baseline
must issue explicit INSERT/DELETE/COUNT statements for the same effect; the
difference is benchmark E5.)

Two window kinds are supported, both with a ``slide``:

``ROWS size SLIDE slide`` (tuple-based)
    After the ``k * slide``-th arrival, the window holds the most recent
    ``size`` tuples.  ``slide == size`` is a tumbling window, ``slide == 1``
    a fully sliding one.  Between slide boundaries the window's visible
    contents do not change (classic slide semantics).

``RANGE size SLIDE slide`` (time-based)
    The window holds tuples whose timestamp column lies in
    ``(boundary - size, boundary]`` where ``boundary`` is the latest
    multiple of ``slide`` not after the engine's logical clock.  The
    timestamp column is the first TIMESTAMP-typed column of the stream.

Window state *carries over* between transaction executions of the owning
procedure — that is the whole reason the paper introduces transaction-
execution scoping (see :mod:`repro.core.scope`).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import WindowError
from repro.hstore.stats import EngineStats
from repro.hstore.types import SqlType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hstore.executor import ExecutionEngine
    from repro.hstore.txn import TransactionContext

__all__ = ["WindowKind", "WindowSpec", "WindowState"]


class WindowKind(enum.Enum):
    TUPLE = "ROWS"
    TIME = "RANGE"


@dataclass(frozen=True)
class WindowSpec:
    """Validated window definition."""

    name: str
    stream: str
    kind: WindowKind
    size: int
    slide: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise WindowError(f"window {self.name!r}: size must be >= 1")
        if self.slide < 1:
            raise WindowError(f"window {self.name!r}: slide must be >= 1")
        if self.kind is WindowKind.TUPLE and self.slide > self.size:
            raise WindowError(
                f"window {self.name!r}: slide {self.slide} > size {self.size} "
                f"would drop tuples silently; use a smaller slide"
            )


class WindowState:
    """Runtime state of one window, maintained natively by the EE.

    The visible contents live in the window's backing table (queryable with
    plain SQL by the owning procedure); this object holds the incremental
    bookkeeping that decides what enters and leaves at each slide.
    """

    def __init__(
        self,
        spec: WindowSpec,
        ee: "ExecutionEngine",
        stats: EngineStats,
        timestamp_offset: int | None = None,
    ) -> None:
        self.spec = spec
        self._ee = ee
        self._stats = stats
        self._timestamp_offset = timestamp_offset
        if spec.kind is WindowKind.TIME and timestamp_offset is None:
            raise WindowError(
                f"time-based window {spec.name!r} requires the stream to have "
                f"a TIMESTAMP column"
            )
        #: arrivals since the stream began (tuple windows)
        self._arrivals = 0
        #: tuples awaiting the next slide boundary, oldest first
        self._staging: deque[tuple[Any, ...]] = deque()
        #: rowids currently in the backing table, oldest first
        self._live_rowids: deque[int] = deque()
        #: last boundary applied (time windows)
        self._last_boundary = -1
        #: attached delta views (repro.ivm.DeltaView); admits/expires are
        #: folded into each as (rowid, row, ±1) inside the maintaining txn
        self.views: list[Any] = []

    # ------------------------------------------------------------------
    # EE-trigger entry points (called inside the inserting transaction)
    # ------------------------------------------------------------------

    def on_stream_insert(
        self,
        txn: "TransactionContext",
        rows: list[tuple[Any, ...]],
        now: int,
    ) -> None:
        """New tuples arrived on the source stream: stage and maybe slide."""
        if self.spec.kind is WindowKind.TUPLE:
            self._on_tuples(txn, rows)
        else:
            self._staging.extend(rows)
            self.advance_time(txn, now)

    def advance_time(self, txn: "TransactionContext", now: int) -> None:
        """Apply time-window maintenance at logical time ``now``.

        Two distinct events are handled:

        * a *slide*: the boundary moved to a later multiple of ``slide``,
          so tuples older than ``boundary - size`` expire;
        * *late admission*: tuples staged for the current extent (arrived
          after the boundary was already current) enter without a slide.
        """
        if self.spec.kind is not WindowKind.TIME:
            return
        boundary = (now // self.spec.slide) * self.spec.slide
        if boundary < self._last_boundary:
            return
        slid = boundary > self._last_boundary
        self._last_boundary = boundary
        low = boundary - self.spec.size
        assert self._timestamp_offset is not None

        # admit staged tuples inside the current window extent; tuples with
        # a future timestamp stay staged, tuples older than the extent drop.
        # Empty staging skips the whole admission pass — ticks on a quiet
        # stream must not pay a per-window list scan and deque rebuild.
        if self._staging:
            ts = self._timestamp_offset
            admit = [
                row for row in self._staging if low < row[ts] <= boundary
            ]
            keep = [row for row in self._staging if row[ts] > boundary]
            if len(keep) != len(self._staging):
                self._staging = deque(keep)
        else:
            admit = []
        if admit:
            rowids = self._ee.insert_rows(
                txn, self.spec.name, admit, fire_hooks=True
            )
            self._live_rowids.extend(rowids)
            for view in self.views:
                view.apply(rowids, admit, 1)

        if not slid and not admit:
            return
        self._stats.ee_trigger_firings += 1
        if slid:
            self._stats.window_slides += 1
            # expire tuples that fell off the back of the extent
            table = self._ee.table(self.spec.name)
            expired: list[int] = []
            expired_rows: list[tuple[Any, ...]] = []
            while self._live_rowids:
                rowid = self._live_rowids[0]
                row = table.get(rowid)
                if row[self._timestamp_offset] <= low:
                    expired.append(self._live_rowids.popleft())
                    expired_rows.append(row)
                else:
                    break
            if expired:
                self._ee.delete_rows(txn, self.spec.name, expired)
                self._stats.window_expired_rows += len(expired)
                for view in self.views:
                    view.apply(expired, expired_rows, -1)

    def _on_tuples(
        self, txn: "TransactionContext", rows: list[tuple[Any, ...]]
    ) -> None:
        for row in rows:
            self._staging.append(row)
            self._arrivals += 1
            if self._arrivals % self.spec.slide == 0:
                self._slide_tuple_window(txn)

    def _slide_tuple_window(self, txn: "TransactionContext") -> None:
        """Admit staged tuples, then trim to the newest ``size`` tuples."""
        self._stats.ee_trigger_firings += 1
        self._stats.window_slides += 1
        if self._staging:
            staged = list(self._staging)
            rowids = self._ee.insert_rows(
                txn, self.spec.name, staged, fire_hooks=True
            )
            self._live_rowids.extend(rowids)
            self._staging.clear()
            for view in self.views:
                view.apply(rowids, staged, 1)
        overflow = len(self._live_rowids) - self.spec.size
        if overflow > 0:
            expired = [self._live_rowids.popleft() for _ in range(overflow)]
            if self.views:
                # fetch the doomed rows before the delete: -1 deltas carry
                # the row values so views can unfeed the right group
                table = self._ee.table(self.spec.name)
                expired_rows = [table.get(rowid) for rowid in expired]
            self._ee.delete_rows(txn, self.spec.name, expired)
            self._stats.window_expired_rows += len(expired)
            if self.views:
                for view in self.views:
                    view.apply(expired, expired_rows, -1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def live_count(self) -> int:
        return len(self._live_rowids)

    @property
    def staged_count(self) -> int:
        return len(self._staging)

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def dump_state(self) -> dict[str, Any]:
        return {
            "arrivals": self._arrivals,
            "staging": [list(row) for row in self._staging],
            "live_rowids": list(self._live_rowids),
            "last_boundary": self._last_boundary,
        }

    def load_state(self, state: dict[str, Any]) -> None:
        self._arrivals = int(state.get("arrivals", 0))
        self._staging = deque(tuple(row) for row in state.get("staging", []))
        self._live_rowids = deque(int(r) for r in state.get("live_rowids", []))
        self._last_boundary = int(state.get("last_boundary", -1))
        # the backing table was restored (recovery) or rolled back (abort)
        # before this call: attached views re-derive from it deterministically
        if self.views:
            table = self._ee.table(self.spec.name)
            for view in self.views:
                view.rebuild(table)

    def reset(self) -> None:
        self.load_state({})


def timestamp_offset_of(schema_columns: list[tuple[str, SqlType]]) -> int | None:
    """Offset of the first TIMESTAMP column (None if the schema has none)."""
    for offset, (_name, sql_type) in enumerate(schema_columns):
        if sql_type is SqlType.TIMESTAMP:
            return offset
    return None

"""Transaction-execution scoping for window state.

From the paper (§2): *"A window in SPi may contain state that was produced
by previous TEs of SPi.  Such state must be protected from the access of
arbitrary TEs.  Thus, we introduce the notion of 'scope of a transaction
execution' to restrict window access to only consecutive TEs of a given
stored procedure."*

Concretely: every window has exactly one *owner* stored procedure.  Any
statement that reads or writes the window's backing table from a different
procedure (or from ad-hoc SQL) raises :class:`ScopeViolationError`.  The
streaming engine consults this registry on every statement execution.
"""

from __future__ import annotations

from repro.errors import DuplicateObjectError, ScopeViolationError, UnknownObjectError

__all__ = ["WindowScopes"]


class WindowScopes:
    """Registry of window → owning stored procedure."""

    def __init__(self) -> None:
        self._owners: dict[str, str] = {}

    def assign(self, window_name: str, owner_procedure: str) -> None:
        window_name = window_name.lower()
        owner_procedure = owner_procedure.lower()
        existing = self._owners.get(window_name)
        if existing is not None and existing != owner_procedure:
            raise DuplicateObjectError(
                f"window {window_name!r} is already scoped to "
                f"{existing!r}; a window has exactly one owner"
            )
        self._owners[window_name] = owner_procedure

    def owner_of(self, window_name: str) -> str:
        try:
            return self._owners[window_name.lower()]
        except KeyError:
            raise UnknownObjectError(
                f"window {window_name!r} has no scope assignment"
            ) from None

    def is_window(self, table_name: str) -> bool:
        return table_name.lower() in self._owners

    def check_access(self, table_names: set[str], procedure_name: str | None) -> None:
        """Raise unless every window in ``table_names`` is owned by the
        accessing procedure (``None`` = ad-hoc / client access)."""
        for table_name in table_names:
            owner = self._owners.get(table_name.lower())
            if owner is None:
                continue
            if procedure_name is None or procedure_name.lower() != owner:
                accessor = procedure_name or "<ad-hoc client access>"
                raise ScopeViolationError(
                    f"window {table_name!r} is scoped to procedure {owner!r}; "
                    f"access from {accessor!r} violates transaction-execution "
                    f"scoping"
                )

    def windows(self) -> dict[str, str]:
        return dict(self._owners)

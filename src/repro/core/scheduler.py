"""The streaming transaction scheduler.

Pending transaction executions are kept in a priority queue ordered by
``(origin_batch_id, workflow depth, enqueue sequence)``.  Popping in that
order yields exactly the schedules the paper's transaction model demands:

* **natural order** — a procedure's TEs are enqueued in batch order and
  origin ids are monotone, so per-procedure order is preserved;
* **workflow order** — a downstream TE is only *created* when its upstream
  TE commits (push-based PE triggers), so dependencies are structural;
* **contiguity under sharing** — an origin batch's pipeline
  ``(b, depth 0), (b, depth 1), ...`` sorts strictly before any later
  batch ``(b+1, 0)``, so each pipeline instance runs to completion before
  the next batch starts — the serial execution the paper requires for
  workflows with shared writable tables, applied uniformly.

The scheduler is deliberately *not* work-conserving across batches: it
prioritizes finishing pipeline instances over starting new ones, trading a
little latency for the ordering guarantee.  The naive H-Store baseline has
no scheduler at all — clients submit in arrival order — which is what
experiments E1/E2/E9 exploit.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.core.batch import Batch
from repro.errors import SchedulingError

__all__ = ["StreamTask", "StreamScheduler"]


@dataclass(frozen=True)
class StreamTask:
    """One pending transaction execution."""

    procedure_name: str
    batch: Batch
    depth: int
    workflow_name: str
    #: tracing lineage: context of the span that created this task, so the
    #: downstream TE joins the same trace as the ingest that caused it
    trace_ctx: Any = None


@dataclass(order=True)
class _HeapEntry:
    priority: tuple[int, int, int]
    task: StreamTask = field(compare=False)


class StreamScheduler:
    """Priority queue of pending stream TEs."""

    def __init__(self) -> None:
        self._heap: list[_HeapEntry] = []
        self._enqueue_seq = 0

    def enqueue(self, task: StreamTask) -> None:
        entry = _HeapEntry(
            priority=(task.batch.origin_batch_id, task.depth, self._enqueue_seq),
            task=task,
        )
        self._enqueue_seq += 1
        heapq.heappush(self._heap, entry)

    def pop_next(self) -> StreamTask:
        if not self._heap:
            raise SchedulingError("no pending transaction executions")
        return heapq.heappop(self._heap).task

    @property
    def pending_count(self) -> int:
        return len(self._heap)

    @property
    def has_pending(self) -> bool:
        return bool(self._heap)

    def peek_priorities(self) -> list[tuple[int, int, int]]:
        """Sorted snapshot of pending priorities (test/debug helper)."""
        return sorted(entry.priority for entry in self._heap)

    def clear(self) -> int:
        dropped = len(self._heap)
        self._heap.clear()
        return dropped

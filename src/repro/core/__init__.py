"""``repro.core`` — the S-Store streaming layer (the paper's contribution).

Adds to the H-Store substrate: streams (hidden, garbage-collected state),
windows (native, EE-maintained finite chunks over streams), EE and PE
triggers (data-driven processing inside and across transactions), workflows
(DAGs of dependent stored procedures), the stream-oriented transaction model
(batch-defined TEs, ordering guarantees, TE scoping), and upstream-backup
fault tolerance.
"""

from repro.core.batch import Batch, BatchFactory
from repro.core.engine import SStoreEngine, StreamContext, StreamProcedure
from repro.core.latency import LatencySummary, LatencyTracker
from repro.core.recovery import (
    StreamingRecoveryReport,
    crash_and_recover_streaming,
    state_fingerprint,
)
from repro.core.scheduler import StreamScheduler, StreamTask
from repro.core.scope import WindowScopes
from repro.core.stream import StreamInfo, StreamRegistry
from repro.core.transaction import ScheduleViolation, TERecord, validate_schedule
from repro.core.triggers import EETrigger, PETrigger
from repro.core.window import WindowKind, WindowSpec, WindowState
from repro.core.workflow import WorkflowNode, WorkflowSpec

__all__ = [
    "Batch",
    "BatchFactory",
    "LatencySummary",
    "LatencyTracker",
    "SStoreEngine",
    "StreamContext",
    "StreamProcedure",
    "StreamingRecoveryReport",
    "crash_and_recover_streaming",
    "state_fingerprint",
    "StreamScheduler",
    "StreamTask",
    "WindowScopes",
    "StreamInfo",
    "StreamRegistry",
    "ScheduleViolation",
    "TERecord",
    "validate_schedule",
    "EETrigger",
    "PETrigger",
    "WindowKind",
    "WindowSpec",
    "WindowState",
    "WorkflowNode",
    "WorkflowSpec",
]

"""Upstream-backup fault tolerance for streaming workflows.

The paper (§2): *"we leverage H-Store's command logging mechanism to provide
an upstream backup based fault tolerance technique for our streaming
transaction workflows."*

Upstream backup means: only the *inputs at the border* are made durable.
Interior work is never logged — it is deterministically recomputable from
the border inputs.  Concretely, in this reproduction:

* every ``ingest()`` call appends one command-log record carrying the raw
  tuples (the upstream backup itself);
* every ``advance_time()`` call appends a tick record (the timeline is an
  input too);
* OLTP procedure invocations are command-logged exactly as in H-Store;
* **no stream TE is ever logged** — border TEs are re-derived from ingest
  records by the deterministic batch cutter, and interior TEs are re-created
  by PE triggers during replay.

Recovery = load latest snapshot, then replay the log suffix in LSN order,
draining the scheduler to quiescence after each record.  Because the live
engine also drains eagerly around every client interaction, the replayed
interleaving is identical to the original and the recovered state is
bit-for-bit the state an uninterrupted run would have produced (asserted by
the integration tests and experiment E7).

This module provides the measurement/verification helpers; the mechanism
itself lives in :class:`repro.core.engine.SStoreEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import SStoreEngine

__all__ = [
    "StreamingRecoveryReport",
    "crash_and_recover_streaming",
    "state_fingerprint",
    "window_fingerprint",
]


@dataclass(frozen=True)
class StreamingRecoveryReport:
    """Outcome of one streaming crash/recover cycle."""

    lost_log_records: int
    replayed_records: int
    had_snapshot: bool
    fingerprint_before: dict[str, Any]
    fingerprint_after: dict[str, Any]

    @property
    def state_matches(self) -> bool:
        return self.fingerprint_before == self.fingerprint_after


def state_fingerprint(engine: "SStoreEngine") -> dict[str, Any]:
    """A comparable digest of all durable-relevant engine state.

    Covers every regular table's rows (sorted), every window's contents, and
    stream live contents — the state a user can observe.

    Multi-process clusters (:class:`repro.parallel.ParallelHStoreEngine`)
    hold their partitions in worker processes rather than in
    ``engine.partitions``; they expose the same digest shape via
    ``cluster_state_fingerprint()``, which this helper dispatches to so the
    recovery-equivalence machinery treats both deployments identically.
    """
    cluster = getattr(engine, "cluster_state_fingerprint", None)
    if cluster is not None:
        return cluster()
    fingerprint: dict[str, Any] = {}
    for partition in engine.partitions:
        for name, table in partition.ee.tables().items():
            key = f"p{partition.partition_id}:{name}"
            fingerprint[key] = sorted(table.rows())
    return fingerprint


def window_fingerprint(engine: "SStoreEngine") -> dict[str, Any]:
    """Per-window digest beyond the live rows (those are table state).

    Captures each window's staged-but-not-yet-admitted tuples, arrival
    counter and slide boundary — the bookkeeping that must survive recovery
    for the next slide to behave identically.  Engines without a streaming
    layer (plain H-Store) fingerprint as empty.
    """
    fingerprint: dict[str, Any] = {}
    for name, state in getattr(engine, "windows", {}).items():
        dump = state.dump_state()
        fingerprint[name] = {
            "arrivals": dump.get("arrivals", 0),
            "staged": [tuple(row) for row in dump.get("staging", [])],
            "last_boundary": dump.get("last_boundary", -1),
            "live_rowids": [int(r) for r in dump.get("live_rowids", [])],
        }
    return fingerprint


def crash_and_recover_streaming(engine: "SStoreEngine") -> StreamingRecoveryReport:
    """Crash the engine, recover it, and verify state equivalence."""
    engine.run_until_quiescent()
    before = state_fingerprint(engine)
    had_snapshot = engine.snapshots.latest is not None
    lost = engine.crash()
    replayed = engine.recover()
    after = state_fingerprint(engine)
    return StreamingRecoveryReport(
        lost_log_records=lost,
        replayed_records=replayed,
        had_snapshot=had_snapshot,
        fingerprint_before=before,
        fingerprint_after=after,
    )

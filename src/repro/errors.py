"""Exception hierarchy for the S-Store reproduction.

Every error raised by the package derives from :class:`ReproError`, so
applications can catch a single base class.  The hierarchy mirrors the two
engine layers described in the paper: catalog/SQL errors originate in the
execution engine (EE), transaction and scheduling errors in the partition
engine (PE), and streaming errors in the S-Store extensions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


# ---------------------------------------------------------------------------
# Catalog / DDL errors
# ---------------------------------------------------------------------------


class CatalogError(ReproError):
    """A DDL or catalog-lookup problem (unknown table, duplicate column...)."""


class DuplicateObjectError(CatalogError):
    """An object with the same name already exists in the catalog."""


class UnknownObjectError(CatalogError):
    """A referenced table, stream, window, index or column does not exist."""


# ---------------------------------------------------------------------------
# Type system errors
# ---------------------------------------------------------------------------


class TypeSystemError(ReproError):
    """A value does not conform to its declared SQL type."""


class NullViolationError(TypeSystemError):
    """NULL supplied for a NOT NULL column."""


# ---------------------------------------------------------------------------
# SQL front-end errors
# ---------------------------------------------------------------------------


class SqlError(ReproError):
    """Base class for SQL lexing/parsing/planning problems."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class PlanningError(SqlError):
    """The statement parsed but could not be planned (semantic error)."""


class BindingError(SqlError):
    """Parameter count/placement mismatch at execution time."""


# ---------------------------------------------------------------------------
# Storage / constraint errors
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Low-level storage problem in the execution engine."""


class ConstraintViolationError(StorageError):
    """A table constraint (primary key, unique) was violated."""


class PrimaryKeyViolationError(ConstraintViolationError):
    """Duplicate primary key."""


class UniqueViolationError(ConstraintViolationError):
    """Duplicate value in a UNIQUE index."""


# ---------------------------------------------------------------------------
# Transaction / partition-engine errors
# ---------------------------------------------------------------------------


class TransactionError(ReproError):
    """Base class for transaction lifecycle errors."""


class TransactionAborted(TransactionError):
    """Raised inside a stored procedure to abort the current transaction.

    User code may raise this directly (``raise TransactionAborted("reason")``)
    or it is raised by the engine when a constraint violation forces a
    rollback.  The partition engine catches it, undoes the transaction and
    reports the abort to the caller.
    """


class NoActiveTransactionError(TransactionError):
    """An operation required an active transaction but none was open."""


class ProcedureError(ReproError):
    """Stored-procedure registration or invocation problem."""


class PartitionError(ReproError):
    """Partition routing or multi-partition coordination problem."""


# ---------------------------------------------------------------------------
# Durability / recovery errors
# ---------------------------------------------------------------------------


class RecoveryError(ReproError):
    """Snapshot or command-log replay failed."""


# ---------------------------------------------------------------------------
# Fault injection (repro.faults)
# ---------------------------------------------------------------------------


class InjectedFault(ReproError):
    """Base class for faults raised by the deterministic fault injector.

    From the engine's point of view an injected fault is a process death:
    in-memory state is gone and the next step is recovery from the durable
    directory.  Harnesses (``RecoveryEquivalenceChecker``, the fault tests)
    catch this base class to drive the crash/recover cycle.
    """


class InjectedCrash(InjectedFault):
    """The fault plan killed the simulated process at an injection point."""


class InjectedIOError(InjectedFault, OSError):
    """A simulated I/O failure (disk-full, EIO) at an injection point.

    Also an :class:`OSError`, so code (and tests) exercising "what if the
    disk write fails" observe the realistic exception type, ``errno``
    included.
    """


# ---------------------------------------------------------------------------
# Network front door (repro.net)
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for errors raised by the TCP front door (``repro.net``)."""


class ProtocolError(NetworkError):
    """A malformed wire frame: bad version, unknown type, oversized length,
    or a payload that is not a JSON object.

    The server answers the offending connection with one protocol-error
    frame and closes it — a client speaking garbage can never crash or wedge
    the server, only lose its own connection.
    """


class ServerBusyError(NetworkError):
    """Admission control fast-rejected the request (``SERVER_BUSY``).

    Raised client-side when the server's in-flight budget is exhausted.
    The request was *not* queued and *not* executed; retrying after a
    backoff is always safe.
    """


class ConnectionClosedError(NetworkError):
    """The TCP connection closed while requests were still outstanding."""


# ---------------------------------------------------------------------------
# Streaming (S-Store core) errors
# ---------------------------------------------------------------------------


class StreamingError(ReproError):
    """Base class for errors in the S-Store streaming extensions."""


class WindowError(StreamingError):
    """Invalid window specification or window-state operation."""


class ScopeViolationError(StreamingError):
    """Window state accessed from outside its owning stored procedure.

    The paper introduces the "scope of a transaction execution" to restrict
    window access to consecutive TEs of a single stored procedure; any other
    access is a correctness bug and raises this error.
    """


class WorkflowError(StreamingError):
    """Invalid workflow definition (cycles, unknown streams, ...)."""


class SchedulingError(StreamingError):
    """The streaming scheduler detected an impossible or illegal schedule."""

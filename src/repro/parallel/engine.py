"""The coordinator facade: one engine API over N partition processes.

:class:`ParallelHStoreEngine` looks like an
:class:`~repro.hstore.engine.HStoreEngine` from the outside — same
``execute_ddl`` / ``register_procedure`` / ``call_procedure`` /
``execute_sql`` / ``crash`` / ``recover`` surface — but routes every
transaction to a :class:`~repro.parallel.worker.PartitionWorker` process.

Execution semantics mirror the in-process engine exactly:

* **single-partition transactions** route by ``stable_hash`` of the
  partitioning parameter and execute on one worker while the others keep
  running — the true parallelism the in-process engine can only simulate;
* **multi-partition (run-everywhere) transactions** use a fence protocol:
  every worker *prepares* (runs the procedure, holds its partition acquired
  with the transaction open), the coordinator collects all outcomes, then
  broadcasts one commit/abort *decide*.  All-or-nothing across the cluster.
  Known weakness (documented, tested around): each worker logs its own
  shard of the commit, so cross-worker durability of an everywhere-txn is
  not atomic under a coordinator crash between decides;
* **ad-hoc DML** is broadcast to every worker (replicated deployment-style
  writes — how apps seed reference tables); **ad-hoc SELECT** is
  scatter-gathered, refusing grouped/ordered/limited queries on multi-worker
  clusters rather than returning per-shard-wrong answers;
* **durability** is worker-local (``<root>/worker-<id>/``); ``crash()`` /
  ``recover()`` / ``restore_from_disk()`` fan out and aggregate, keeping
  the :class:`~repro.faults.checker.RecoveryEquivalenceChecker` contract.

Every coordinator↔worker exchange increments ``ipc_roundtrips`` in the
coordinator's local stats, which the net simulator charges at
``LatencyModel.ipc_us`` — the cost model's honest accounting of what the
process hop buys and costs.
"""

from __future__ import annotations

import pathlib
import pickle
import time
import weakref
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    InjectedCrash,
    InjectedIOError,
    PartitionError,
    ReproError,
)
from repro.hstore.executor import ResultSet
from repro.hstore.procedure import ProcedureResult, StoredProcedure
from repro.hstore.recovery import RecoveryReport
from repro.hstore.stats import EngineStats
from repro.obs.config import ObsConfig
from repro.obs.trace import NULL_TRACER
from repro.parallel import messages as msg
from repro.parallel.router import Router
from repro.parallel.worker import PartitionWorker, WorkerConfig

__all__ = ["BatchResult", "ParallelHStoreEngine"]


@dataclass
class BatchResult:
    """Outcome of one :meth:`ParallelHStoreEngine.call_many` fan-out."""

    committed: int
    aborted: int
    #: wall-clock seconds from first send to last reply (coordinator view)
    wall_s: float
    #: per-worker CPU seconds actually burned executing the sub-batch
    worker_cpu_s: list[float] = field(default_factory=list)
    #: per-worker wall seconds inside the worker loop
    worker_wall_s: list[float] = field(default_factory=list)
    #: first few (batch_index, error) pairs from aborted invocations
    errors: list[tuple[int, str]] = field(default_factory=list)
    #: microsecond latencies per call, when requested
    latencies_us: list[float] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.committed + self.aborted

    @property
    def max_worker_cpu_s(self) -> float:
        """The makespan-determining shard: the busiest worker's CPU time."""
        return max(self.worker_cpu_s, default=0.0)


class _ClusterCommandLog:
    """The facade's ``engine.command_log`` view over per-worker logs.

    Supports exactly what callers of the in-process attribute use: ``flush``,
    ``all_records``, ``enabled`` and ``len`` — each fanned out and
    aggregated.  Records come back ordered by worker id, then per-worker log
    order; cross-worker order is not meaningful (shards are independent
    histories) and nothing in the repo depends on it.
    """

    def __init__(self, engine: "ParallelHStoreEngine") -> None:
        self._engine = engine

    @property
    def enabled(self) -> bool:
        return self._engine._command_logging

    def flush(self) -> int:
        return sum(self._engine._broadcast(msg.OP_FLUSH_LOG))

    def all_records(self) -> list:
        records: list = []
        for chunk in self._engine._broadcast(msg.OP_LOG_RECORDS):
            records.extend(chunk)
        return records

    def __len__(self) -> int:
        return len(self.all_records())


class ParallelHStoreEngine:
    """N OS processes, one serial partition each, one engine facade."""

    #: which engine each worker process hosts (subclasses override)
    _ENGINE_KIND = "hstore"

    def __init__(
        self,
        workers: int = 2,
        *,
        log_group_size: int = 1,
        snapshot_interval: int | None = None,
        command_logging: bool = True,
        obs: ObsConfig | None = None,
    ) -> None:
        if workers < 1:
            raise PartitionError("cluster requires at least one worker")
        self.router = Router(workers)
        self._command_logging = command_logging
        #: observability: the coordinator traces client calls and IPC hops;
        #: workers trace their own txn/sql work and ship spans back with
        #: every reply, so the coordinator's collector holds the whole story
        self.obs = obs
        self.tracer = NULL_TRACER
        self.metrics = None
        if obs is not None:
            if obs.tracing:
                from repro.obs.trace import TraceCollector, Tracer

                self.tracer = Tracer(
                    process="coordinator",
                    collector=TraceCollector(obs.trace_capacity),
                    sql_spans=obs.sql_spans,
                )
            if obs.metrics:
                from repro.obs.metrics import MetricsRegistry

                self.metrics = MetricsRegistry()
        self._call_hists: dict[str, Any] = {}
        #: partition-labeled instrument caches + latest hot-key sketch per
        #: worker, fed by the telemetry deltas piggybacked on replies
        self._partition_counters: dict[tuple[int, str], Any] = {}
        self._partition_hists: dict[int, Any] = {}
        self._partition_sketches: dict[int, dict[str, Any]] = {}
        self._partition_totals: dict[int, dict[str, int]] = {}
        #: local procedure instances, for routing metadata only — execution
        #: state lives in the workers
        self.procedures: dict[str, StoredProcedure] = {}
        #: coordinator-side counters (client round trips, IPC hops); the
        #: ``stats`` property folds the workers' counters in
        self.stats_local = EngineStats()
        self.command_log = _ClusterCommandLog(self)
        self.last_recovery_report: RecoveryReport | None = None
        self._crashed = False
        self._dead = False  # an injected crash killed the simulated node
        self._injector = None  # coordinator copy; plan is ground truth
        self._durability_root: pathlib.Path | None = None
        self.workers = [
            PartitionWorker(
                WorkerConfig(
                    worker_id=wid,
                    worker_count=workers,
                    log_group_size=log_group_size,
                    snapshot_interval=snapshot_interval,
                    command_logging=command_logging,
                    obs=obs,
                    engine_kind=self._ENGINE_KIND,
                )
            )
            for wid in range(workers)
        ]
        self._finalizer = weakref.finalize(
            self, _stop_workers, list(self.workers)
        )
        self._config = (workers, log_group_size, snapshot_interval, command_logging)
        # fail fast if a worker never came up
        self._broadcast(msg.OP_PING)

    # ------------------------------------------------------------------
    # Mailbox plumbing
    # ------------------------------------------------------------------

    def _rpc(self, worker: PartitionWorker, op: str, payload: Any = None) -> Any:
        """One request/reply exchange; the unit ``ipc_roundtrips`` counts."""
        if self.tracer.enabled:
            with self.tracer.span("ipc", op, worker=worker.worker_id):
                seq = worker.send(op, payload, self.tracer.current_context())
                return self._collect(worker, seq, op)
        seq = worker.send(op, payload)
        return self._collect(worker, seq, op)

    def _collect(self, worker: PartitionWorker, seq: int, op: str) -> Any:
        self.stats_local.ipc_roundtrips += 1
        status, payload, fired, spans, telemetry = worker.recv(seq)
        if spans and self.tracer.enabled:
            self.tracer.collector.absorb(spans)
        if telemetry is not None and self.metrics is not None:
            self._absorb_telemetry(worker.worker_id, telemetry)
        if fired:
            self._note_fired(fired, reinstall=op != msg.OP_INSTALL_FAULTS)
        if status == msg.STATUS_OK:
            return payload
        if status == msg.STATUS_FAULT:
            raise self._fault_exception(payload)
        raise msg.load_exception(*payload)

    def _broadcast(self, op: str, payload: Any = None) -> list[Any]:
        """Send to every worker sequentially, first fault/error wins.

        Used for fault-sensitive operations (durability, DDL, ad-hoc SQL)
        where stopping at the first failure mirrors the in-process engine's
        serial seams.
        """
        return [self._rpc(worker, op, payload) for worker in self.workers]

    def _scatter(self, requests: list[tuple[int, str, Any]]) -> list[Any]:
        """Post all requests first, then collect replies in worker order.

        This is the parallel path: while the coordinator waits on worker 0,
        workers 1..N-1 are already executing.  Raises the first failure
        *after* draining every posted reply (no mailbox desync).
        """
        if not requests:
            return []
        if self.tracer.enabled:
            # one span covers the whole fan-out (spans nest LIFO, so a span
            # per in-flight request would corrupt the tracer's stack); every
            # worker's spans parent under it via the shipped context
            with self.tracer.span(
                "ipc", f"scatter:{requests[0][1]}", fanout=len(requests)
            ):
                return self._scatter_body(requests)
        return self._scatter_body(requests)

    def _scatter_body(self, requests: list[tuple[int, str, Any]]) -> list[Any]:
        trace_ctx = (
            self.tracer.current_context() if self.tracer.enabled else None
        )
        posted: list[tuple[PartitionWorker, int, str]] = []
        for wid, op, payload in requests:
            worker = self.workers[wid]
            posted.append((worker, worker.send(op, payload, trace_ctx), op))
        results: list[Any] = []
        failure: Exception | None = None
        for worker, seq, op in posted:
            try:
                results.append(self._collect(worker, seq, op))
            except Exception as exc:  # noqa: BLE001 - re-raised after drain
                results.append(None)
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure
        return results

    def _note_fired(self, fired: tuple, *, reinstall: bool = True) -> None:
        """Sync worker-side fault firings into the coordinator's plan copy."""
        if self._injector is None:
            return
        plan = self._injector.plan
        changed = False
        for index, label in fired:
            spec = plan.specs[index]
            if not spec.fired:
                spec.fired = True
                self._injector.fired_log.append(label)
                changed = True
        if changed and reinstall and not self._dead:
            # one-shot specs must not re-fire on a sibling worker
            for worker in self.workers:
                if worker.alive:
                    self._rpc(worker, msg.OP_INSTALL_FAULTS, plan)

    def _fault_exception(self, payload: dict[str, Any]) -> Exception:
        if payload["kind"] == "io":
            return InjectedIOError(payload["errno"], payload["message"])
        # a crash-kind fault killed the simulated node: like the in-process
        # engine, the object is garbage — build a fresh one and restore
        self._dead = True
        return InjectedCrash(payload["message"])

    def _require_alive(self) -> None:
        if self._dead:
            raise ReproError(
                "an injected fault killed this cluster; build a fresh "
                "ParallelHStoreEngine and restore_from_disk()"
            )
        if self._crashed:
            raise ReproError("engine has crashed; call recover() first")

    # ------------------------------------------------------------------
    # Deployment (DDL, procedures, durability, faults)
    # ------------------------------------------------------------------

    def execute_ddl(self, sql: str) -> None:
        """Schema statements replicate to every worker (shared catalog)."""
        self._require_alive()
        self._broadcast(msg.OP_DDL, sql)

    def register_procedure(
        self, procedure_class: type[StoredProcedure]
    ) -> StoredProcedure:
        """Ship the procedure *class* to every worker.

        Classes pickle by reference, so the class must be importable in the
        worker process: defined at module level, not inside a function or
        test body.  The check here turns the obscure child-side
        ``AttributeError`` that would otherwise result into an actionable
        coordinator-side error.
        """
        self._require_alive()
        try:
            pickle.dumps(procedure_class)
        except Exception as exc:
            raise ReproError(
                f"procedure {procedure_class.__name__} cannot cross a process "
                f"boundary: {exc}. Define it at module level so workers can "
                f"import it by reference."
            ) from exc
        self._broadcast(msg.OP_REGISTER, procedure_class)
        instance = procedure_class()
        self.procedures[instance.name] = instance
        return instance

    def enable_durability(self, path: Any) -> pathlib.Path:
        """Give each worker its own log+snapshot directory under ``path``."""
        self._require_alive()
        if not self._command_logging:
            raise ReproError(
                "cannot enable durability: this engine was built with "
                "command_logging=False, so there is no history to persist"
            )
        root = pathlib.Path(path)
        root.mkdir(parents=True, exist_ok=True)
        for worker in self.workers:
            self._rpc(
                worker,
                msg.OP_ENABLE_DURABILITY,
                str(root / f"worker-{worker.worker_id}"),
            )
        self._durability_root = root
        return root

    def install_fault_injector(self, injector: Any) -> Any:
        """Arm every worker with the injector's plan.

        The coordinator keeps ``injector`` as the authoritative copy: specs
        that fire inside a worker are reported back in the reply and marked
        on this plan (and appended to ``injector.fired_log``), then the
        updated plan is re-broadcast so one-shot specs cannot re-fire on a
        sibling worker.  Occurrence counting is per worker.
        """
        self._injector = injector
        plan = injector.plan if injector is not None else None
        self._broadcast(msg.OP_INSTALL_FAULTS, plan)
        return injector

    # ------------------------------------------------------------------
    # Invocation paths
    # ------------------------------------------------------------------

    def call_procedure(self, name: str, *params: Any) -> ProcedureResult:
        """Client entry point: one client↔PE round trip per call."""
        self._require_alive()
        self.stats_local.client_pe_roundtrips += 1
        if self.tracer.enabled or self.metrics is not None:
            return self._call_observed(name, params)
        return self.invoke(name, params)

    def _call_observed(
        self, name: str, params: tuple[Any, ...]
    ) -> ProcedureResult:
        started_ns = time.perf_counter_ns() if self.metrics is not None else 0
        if self.tracer.enabled:
            with self.tracer.span("call", name) as span:
                result = self.invoke(name, params)
                span.set(success=result.success)
        else:
            result = self.invoke(name, params)
        if self.metrics is not None:
            histogram = self._call_hists.get(name)
            if histogram is None:
                histogram = self.metrics.histogram(
                    "call_latency_us",
                    "client call round-trip latency in microseconds",
                    procedure=name,
                )
                self._call_hists[name] = histogram
            histogram.observe((time.perf_counter_ns() - started_ns) / 1000.0)
            self.metrics.counter(
                "calls_total",
                "client calls by procedure and outcome",
                procedure=name,
                outcome="committed" if result.success else "aborted",
            ).inc()
        return result

    def invoke(self, name: str, params: tuple[Any, ...]) -> ProcedureResult:
        procedure = self._procedure(name)
        if procedure.run_everywhere:
            return self._invoke_everywhere(procedure, params)
        wid = self.router.route(procedure, params)
        return self._rpc(self.workers[wid], msg.OP_INVOKE, (name, tuple(params)))

    def _procedure(self, name: str) -> StoredProcedure:
        try:
            return self.procedures[name]
        except KeyError:
            from repro.errors import UnknownObjectError

            raise UnknownObjectError(f"no procedure named {name!r}") from None

    def _invoke_everywhere(
        self, procedure: StoredProcedure, params: tuple[Any, ...]
    ) -> ProcedureResult:
        """The fence protocol: prepare on all workers, then one decision.

        Phase 1 posts ``prepare`` to every worker in parallel; each runs the
        procedure and *holds its partition acquired* with the transaction
        open (the fence).  Phase 2 broadcasts commit if every prepare
        succeeded, abort otherwise.  A worker that failed to prepare has
        nothing held, so it receives no decide.
        """
        payload = (procedure.name, tuple(params))
        outcomes = self._scatter(
            [(wid, msg.OP_PREPARE, payload) for wid in range(len(self.workers))]
        )
        commit = all(result is not None and result.success for result in outcomes)
        decided: list[ProcedureResult | None] = self._scatter(
            [
                (wid, msg.OP_DECIDE, commit)
                for wid, result in enumerate(outcomes)
                if result is not None and result.success
            ]
        )
        # workers count their shard's commit/abort; the merged stats report
        # everywhere-txns per shard touched, so no coordinator-side count
        if commit:
            return ProcedureResult(
                success=True,
                data=[result.data for result in decided],
                txn_id=decided[0].txn_id if decided else -1,
            )
        failed = next(
            result for result in outcomes if result is not None and not result.success
        )
        return ProcedureResult(success=False, error=failed.error, txn_id=failed.txn_id)

    def call_many(
        self, name: str, rows: list[tuple[Any, ...]], *, latencies: bool = False
    ) -> BatchResult:
        """Shard a batch of single-partition invocations across the cluster.

        Each worker receives its sub-batch in one message and executes it
        serially; the sub-batches execute *concurrently* across workers.
        This is the benchmark path — per-call ``call_procedure`` round trips
        would measure pipe latency, not execution.
        """
        self._require_alive()
        procedure = self._procedure(name)
        self.stats_local.client_pe_roundtrips += len(rows)
        shards = self.router.shard(procedure, rows)
        wall_start = time.perf_counter()
        replies = self._scatter(
            [
                (wid, msg.OP_INVOKE_BATCH, (name, shard, latencies))
                for wid, shard in enumerate(shards)
                if shard
            ]
        )
        wall_s = time.perf_counter() - wall_start
        result = BatchResult(
            committed=sum(reply["committed"] for reply in replies),
            aborted=sum(reply["aborted"] for reply in replies),
            wall_s=wall_s,
            worker_cpu_s=[reply["cpu_s"] for reply in replies],
            worker_wall_s=[reply["wall_s"] for reply in replies],
        )
        for reply in replies:
            result.errors.extend(reply["errors"])
            if latencies and reply["latencies_us"]:
                result.latencies_us.extend(reply["latencies_us"])
        return result

    # ------------------------------------------------------------------
    # Ad-hoc SQL
    # ------------------------------------------------------------------

    def execute_sql(self, sql: str, *params: Any) -> ResultSet | int:
        """Broadcast DML, scatter-gather SELECT.

        DML replicates to every worker — matching how applications use
        ad-hoc SQL here: deployment-time seeding of reference tables that
        every partition needs (the in-process engine's partition 0 is this
        cluster's everywhere).  The reported rowcount is worker 0's.

        SELECT merges per-worker row sets.  Grouped, ordered or limited
        queries are refused on multi-worker clusters: each worker would
        apply the clause to its shard only, silently returning wrong
        answers — the same reason the in-process planner fences such
        queries onto one partition.
        """
        self._require_alive()
        self.stats_local.client_pe_roundtrips += 1
        replies = self._broadcast(msg.OP_SQL, (sql, tuple(params)))
        first = replies[0]
        if first["select"] is None:
            return first["result"]  # DML rowcount (identical on every worker)
        flags = first["select"]
        if len(self.workers) > 1 and any(flags.values()):
            clause = ", ".join(sorted(name for name, on in flags.items() if on))
            raise PartitionError(
                f"ad-hoc SELECT with {clause} clause(s) cannot scatter-gather "
                f"across {len(self.workers)} workers: each shard would apply "
                f"the clause locally and the merged answer would be wrong. "
                f"Run it via a stored procedure or a single-worker cluster."
            )
        merged = ResultSet(columns=list(first["result"].columns), rows=[])
        for reply in replies:
            merged.rows.extend(reply["result"].rows)
        return merged

    # ------------------------------------------------------------------
    # Durability / recovery
    # ------------------------------------------------------------------

    def take_snapshot(self) -> list[int]:
        """Checkpoint every worker; returns per-worker snapshot ids."""
        self._require_alive()
        return self._broadcast(msg.OP_SNAPSHOT)

    def crash(self) -> int:
        """Crash all workers (in-memory loss); returns total lost records."""
        if not self._command_logging:
            from repro.errors import RecoveryError

            raise RecoveryError(
                "cannot crash-and-recover: this engine was built with "
                "command_logging=False, so a crash would silently lose "
                "every transaction — enable command logging for durability"
            )
        self._require_alive()
        lost = sum(self._broadcast(msg.OP_CRASH))
        self._crashed = True
        return lost

    def recover(self) -> int:
        """Recover every worker; returns total replayed transactions."""
        if self._dead:
            raise ReproError(
                "an injected fault killed this cluster; build a fresh "
                "ParallelHStoreEngine and restore_from_disk()"
            )
        replayed = sum(self._broadcast(msg.OP_RECOVER))
        self._crashed = False
        return replayed

    def restore_from_disk(self, path: Any) -> int:
        """Restore each worker from its ``<path>/worker-<id>`` directory."""
        self._require_alive()
        root = pathlib.Path(path)
        totals = {"replayed": 0, "torn": 0, "snapshots_skipped": 0}
        had_snapshot = False
        for worker in self.workers:
            report = self._rpc(
                worker, msg.OP_RESTORE, str(root / f"worker-{worker.worker_id}")
            )
            totals["replayed"] += report["replayed"]
            totals["torn"] += report["torn"]
            totals["snapshots_skipped"] += report["snapshots_skipped"]
            had_snapshot = had_snapshot or report["had_snapshot"]
        self._durability_root = root
        self.last_recovery_report = RecoveryReport(
            lost_log_records=0,
            replayed_transactions=totals["replayed"],
            had_snapshot=had_snapshot,
            torn_records=totals["torn"],
            snapshots_skipped=totals["snapshots_skipped"],
        )
        return totals["replayed"]

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def _absorb_telemetry(self, worker_id: int, telemetry: dict[str, Any]) -> None:
        """Fold one reply's piggybacked load delta into labeled metrics.

        Counter deltas become ``partition.<counter>{partition=N}``, the op
        latency lands in ``partition.op_us{partition=N}``, and the latest
        hot-key sketch state replaces the previous one (it is cumulative
        worker-side, not a delta).
        """
        metrics = self.metrics
        label = str(worker_id)
        totals = self._partition_totals.setdefault(worker_id, {})
        for name, delta in telemetry["stats"].items():
            totals[name] = totals.get(name, 0) + delta
            counter = self._partition_counters.get((worker_id, name))
            if counter is None:
                counter = metrics.counter(
                    f"partition.{name}",
                    f"per-partition engine counter: {name}",
                    partition=label,
                )
                self._partition_counters[(worker_id, name)] = counter
            counter.inc(delta)
        histogram = self._partition_hists.get(worker_id)
        if histogram is None:
            histogram = metrics.histogram(
                "partition.op_us",
                "worker-side op handling latency (µs)",
                partition=label,
            )
            self._partition_hists[worker_id] = histogram
        histogram.observe(telemetry["op_us"])
        sketch = telemetry.get("sketch")
        if sketch is not None:
            self._partition_sketches[worker_id] = sketch

    def partition_skew(self) -> dict[str, Any]:
        """The coordinator's per-partition load + hot-key view.

        Built entirely from piggybacked telemetry (no extra IPC): committed
        txn totals per partition, the resulting max/mean skew ratio, and
        each partition's Space-Saving top-K with its error bound.  This is
        the signal the ROADMAP's elastic-repartitioning item triggers on.
        """
        from repro.obs.telemetry import SpaceSaving

        partitions: dict[int, dict[str, Any]] = {}
        committed: list[int] = []
        for wid in range(len(self.workers)):
            totals = self._partition_totals.get(wid, {})
            sketch_state = self._partition_sketches.get(wid)
            hot: list[tuple[Any, int, int]] = []
            error_bound = 0.0
            if sketch_state is not None:
                sketch = SpaceSaving.from_state(
                    sketch_state["capacity"],
                    sketch_state["total"],
                    sketch_state["top"],
                )
                hot = sketch.top(8)
                error_bound = sketch.error_bound
            txns = totals.get("txns_committed", 0)
            committed.append(txns)
            partitions[wid] = {
                "txns_committed": txns,
                "ops": dict(totals),
                "hot_keys": hot,
                "hot_key_error_bound": error_bound,
            }
        total = sum(committed)
        mean = total / len(committed) if committed else 0.0
        return {
            "partitions": partitions,
            "total_txns": total,
            "max_txns": max(committed, default=0),
            "skew_ratio": (max(committed, default=0) / mean) if mean else 0.0,
        }

    @property
    def stats(self) -> EngineStats:
        """Coordinator counters merged with every worker's counters."""
        return self.stats_local.copy().merge(*self.worker_stats())

    def worker_stats(self) -> list[EngineStats]:
        return self._broadcast(msg.OP_STATS)

    def cluster_state_fingerprint(self) -> dict[str, Any]:
        """Same shape as :func:`repro.core.recovery.state_fingerprint`."""
        fingerprint: dict[str, Any] = {}
        for worker, reply in zip(self.workers, self._broadcast(msg.OP_FINGERPRINT)):
            for name, rows in reply["tables"].items():
                fingerprint[f"p{worker.worker_id}:{name}"] = rows
        return fingerprint

    def cluster_fingerprint(self) -> dict[str, Any]:
        """Same shape as :func:`repro.faults.checker.full_fingerprint`."""
        fingerprint: dict[str, Any] = {}
        clocks: list[int] = []
        for worker, reply in zip(self.workers, self._broadcast(msg.OP_FINGERPRINT)):
            for name, rows in reply["tables"].items():
                fingerprint[f"table:p{worker.worker_id}:{name}"] = rows
            clocks.append(reply["clock"])
        fingerprint["clock"] = tuple(clocks)
        return fingerprint

    def table_rows(self, table_name: str, partition_id: int | None = None) -> list:
        """All rows of a table, cluster-wide or for one worker's shard."""
        self._require_alive()
        if partition_id is not None:
            return self._rpc(self.workers[partition_id], msg.OP_TABLE_ROWS, table_name)
        rows: list = []
        for chunk in self._broadcast(msg.OP_TABLE_ROWS, table_name):
            rows.extend(chunk)
        return rows

    def describe(self) -> str:
        header = (
            f"ParallelHStoreEngine: {len(self.workers)} worker processes, "
            f"command_logging={self._command_logging}\n"
        )
        body = self._rpc(self.workers[0], msg.OP_DESCRIBE)
        return header + body

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every worker process.  Idempotent; also runs at GC exit."""
        self._finalizer()

    def __enter__(self) -> "ParallelHStoreEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        alive = sum(1 for worker in self.workers if worker.alive)
        return (
            f"ParallelHStoreEngine(workers={len(self.workers)}, "
            f"alive={alive}, procedures={len(self.procedures)})"
        )


def _stop_workers(workers: list[PartitionWorker]) -> None:
    for worker in workers:
        try:
            worker.stop()
        except Exception:  # pragma: no cover - best-effort teardown
            pass

"""One partition's OS process: a serial ``HStoreEngine`` behind a mailbox.

Each :class:`PartitionWorker` owns a child process running
:func:`_worker_main`: a single-partition :class:`HStoreEngine` (its slice of
the shared-nothing database) plus a request loop over an inbox/outbox pipe
pair.  The loop is strictly serial — one message handled at a time — which
*is* the paper's per-partition serial execution: no locks, no latches, the
mailbox is the transaction queue.

Durability is worker-local: each worker keeps its own command log and
snapshots (under ``<root>/worker-<id>`` when file durability is enabled), so
a crash/recover cycle replays every shard independently and deterministically.

Fault injection: the coordinator ships the (picklable) ``FaultPlan`` into
each worker, which arms a local ``FaultInjector`` on its engine.  Occurrence
counting is therefore *per worker* — ``log.flush#3`` fires on whichever
worker reaches its third flush — and any spec that fires is reported back in
the reply so the coordinator can mark its authoritative plan copy (one-shot
specs must not re-fire on a sibling).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Any

from repro.errors import InjectedCrash, InjectedFault, ReproError
from repro.faults.injector import FaultInjector
from repro.hstore.engine import HStoreEngine, PreparedInvocation
from repro.hstore.parser import parse
from repro.hstore.planner import SelectPlan
from repro.obs.config import ObsConfig
from repro.parallel import messages as msg

__all__ = ["WorkerConfig", "PartitionWorker"]

#: transaction ops whose tracing follows the coordinator's head-based
#: sampling decision: no trace context on one of these means the trace was
#: deliberately not rooted, so the worker suspends its tracer for the op
#: rather than recording an orphaned worker-local trace.  Every other op
#: (workflow drains, ticks, stats) keeps its local spans — those are
#: engine-internal activity, not per-request work.
_SAMPLED_OPS = frozenset({msg.OP_INVOKE, msg.OP_INVOKE_BATCH})


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to build its engine shard."""

    worker_id: int
    worker_count: int
    log_group_size: int = 1
    snapshot_interval: int | None = None
    command_logging: bool = True
    #: observability config shared with the coordinator (None = off); the
    #: worker builds its own tracer from it and ships span batches back
    obs: ObsConfig | None = None
    #: which engine the worker hosts: "hstore" (plain OLTP shard) or
    #: "dstream" (a StreamShardEngine running its share of the workflows)
    engine_kind: str = "hstore"


class PartitionWorker:
    """Transport handle for one partition process: spawn, send, recv, stop."""

    def __init__(self, config: WorkerConfig) -> None:
        self.config = config
        self.worker_id = config.worker_id
        # the mailbox pair: inbox carries requests down, outbox replies up
        inbox_recv, inbox_send = multiprocessing.Pipe(duplex=False)
        outbox_recv, outbox_send = multiprocessing.Pipe(duplex=False)
        self._inbox = inbox_send
        self._outbox = outbox_recv
        self._seq = 0
        self.process = multiprocessing.Process(
            target=_worker_main,
            args=(config, inbox_recv, outbox_send),
            name=f"repro-partition-{config.worker_id}",
            daemon=True,
        )
        self.process.start()
        # the child inherited its ends across fork/spawn; drop ours
        inbox_recv.close()
        outbox_send.close()

    # ------------------------------------------------------------------

    def send(self, op: str, payload: Any = None, trace_ctx: Any = None) -> int:
        """Post one request to the worker's inbox; returns its seq."""
        seq = self._seq
        self._seq += 1
        try:
            self._inbox.send((seq, op, payload, trace_ctx))
        except (BrokenPipeError, OSError) as exc:
            raise ReproError(
                f"partition worker {self.worker_id} is gone "
                f"(cannot send {op!r}): {exc}"
            ) from exc
        return seq

    def recv(self, expect_seq: int) -> tuple[str, Any, tuple, tuple, Any]:
        """Take one reply; returns (status, payload, fired, spans, telemetry)."""
        try:
            seq, status, payload, fired, spans, telemetry = self._outbox.recv()
        except (EOFError, OSError) as exc:
            raise ReproError(
                f"partition worker {self.worker_id} died mid-request "
                f"(mailbox closed): {exc}"
            ) from exc
        if seq != expect_seq:
            raise ReproError(
                f"partition worker {self.worker_id} protocol desync: "
                f"expected reply #{expect_seq}, got #{seq}"
            )
        return status, payload, fired, spans, telemetry

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self, timeout: float = 2.0) -> None:
        """Best-effort orderly shutdown; escalates to terminate."""
        if self.process.is_alive():
            try:
                self._inbox.send((self._seq, msg.OP_SHUTDOWN, None, None))
                self._seq += 1
            except (BrokenPipeError, OSError):
                pass
            self.process.join(timeout)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout)
        self._inbox.close()
        self._outbox.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.alive else "stopped"
        return f"PartitionWorker({self.worker_id}, {state})"


# ---------------------------------------------------------------------------
# child-process side
# ---------------------------------------------------------------------------


def _worker_main(config: WorkerConfig, inbox: Any, outbox: Any) -> None:
    """The partition process: build the engine shard, serve the mailbox."""
    if config.engine_kind == "dstream":
        from repro.dstream.shard import StreamShardEngine

        engine = StreamShardEngine(
            worker_id=config.worker_id,
            worker_count=config.worker_count,
            log_group_size=config.log_group_size,
            snapshot_interval=config.snapshot_interval,
            command_logging=config.command_logging,
            obs=config.obs,
        )
    else:
        engine = HStoreEngine(
            partitions=1,
            log_group_size=config.log_group_size,
            snapshot_interval=config.snapshot_interval,
            command_logging=config.command_logging,
            obs=config.obs,
        )
    # origin worker_id+1 keeps span ids disjoint from the coordinator's
    # (origin 0) and every sibling's across the whole cluster
    engine.set_tracer_identity(
        f"worker-{config.worker_id}", config.worker_id + 1
    )
    telemetry = None
    if (
        config.obs is not None
        and config.obs.metrics
        and config.obs.partition_telemetry
    ):
        from repro.obs.telemetry import PartitionTelemetry

        telemetry = PartitionTelemetry(
            config.worker_id, config.obs.heavy_hitter_k
        )
    state = _WorkerState(config, engine)
    while True:
        try:
            seq, op, payload, trace_ctx = inbox.recv()
        except (EOFError, OSError):
            break  # coordinator is gone; nothing left to serve
        plan = state.fault_plan()
        fired_before = [spec.fired for spec in plan.specs] if plan else []
        tracer = engine.tracer
        suspended = False
        if tracer.enabled:
            if trace_ctx is not None:
                tracer.activate(trace_ctx)
            elif op in _SAMPLED_OPS:
                # the coordinator sampled this transaction out (see
                # NetServer.trace_sample): honor the head-based decision
                # instead of recording an orphaned worker-local trace
                tracer.suspend()
                suspended = True
        op_start = time.perf_counter()
        if telemetry is not None:
            state.offer_hot_keys(telemetry, op, payload)
        try:
            result = state.handle(op, payload)
            status, reply = msg.STATUS_OK, result
        except InjectedFault as exc:
            state.take_failed_te()  # discard: faults are attributed by label
            status, reply = msg.STATUS_FAULT, _fault_payload(exc)
        except Exception as exc:  # noqa: BLE001 - serialized, not swallowed
            failed_proc, failed_stream, failed_batch = state.take_failed_te()
            status, reply = msg.STATUS_ERROR, msg.dump_exception(
                exc,
                worker_id=config.worker_id,
                txn=failed_proc or _txn_label(op, payload),
                stream=failed_stream,
                batch_id=failed_batch,
            )
        finally:
            if suspended:
                tracer.resume()
            elif tracer.enabled:
                tracer.deactivate()
        fired = state.newly_fired(fired_before)
        # finished spans ride home with the reply; the worker-side collector
        # is only a staging buffer, the coordinator's is the source of truth
        spans = tuple(tracer.collector.drain()) if tracer.enabled else ()
        # bounded telemetry delta piggybacks on the same reply: no extra
        # round trip, and an idle partition ships an empty stats delta
        telemetry_payload = (
            telemetry.drain(
                engine.stats.snapshot(),
                op,
                (time.perf_counter() - op_start) * 1e6,
            )
            if telemetry is not None
            else None
        )
        try:
            outbox.send((seq, status, reply, fired, spans, telemetry_payload))
        except (BrokenPipeError, OSError):
            break
        if op == msg.OP_SHUTDOWN:
            break


def _txn_label(op: str, payload: Any) -> str | None:
    """The procedure name an op was executing, for error attribution."""
    if op in (msg.OP_INVOKE, msg.OP_INVOKE_BATCH, msg.OP_PREPARE) and isinstance(
        payload, tuple
    ) and payload:
        return payload[0]
    if op == msg.OP_SQL:
        return "<adhoc>"
    if op == msg.OP_INGEST:
        return "<ingest>"
    if op == msg.OP_STREAM_TASK:
        return "<task>"
    return None


def _fault_payload(exc: InjectedFault) -> dict[str, Any]:
    kind = "crash" if isinstance(exc, InjectedCrash) else "io"
    # OSError.__str__ prepends "[Errno N]"; ship the bare strerror so the
    # coordinator-side rebuild does not double the prefix
    message = getattr(exc, "strerror", None) or str(exc)
    return {
        "kind": kind,
        "message": message,
        "errno": getattr(exc, "errno", None),
    }


class _WorkerState:
    """The child-side dispatcher around one engine shard."""

    def __init__(self, config: WorkerConfig, engine: HStoreEngine) -> None:
        self.config = config
        self.engine = engine
        #: the fenced transaction of an in-flight multi-partition commit
        self.held: PreparedInvocation | None = None
        self.injector: FaultInjector | None = None

    def fault_plan(self):
        return self.injector.plan if self.injector is not None else None

    def take_failed_te(self) -> tuple[str | None, str | None, int | None]:
        """Consume the engine's failed-TE attribution, if any.

        The streaming engine records which TE's failure is propagating
        (procedure, originating stream, origin batch id); the worker loop
        folds that into the serialized error so the coordinator's traceback
        names the batch that blew up, not just the op that carried it.
        """
        failed = getattr(self.engine, "_failed_te", None)
        if failed is None:
            return (None, None, None)
        self.engine._failed_te = None
        return failed

    def newly_fired(self, fired_before: list[bool]) -> tuple:
        plan = self.fault_plan()
        if plan is None:
            return ()
        return tuple(
            (index, spec.label)
            for index, spec in enumerate(plan.specs)
            if spec.fired and (index >= len(fired_before) or not fired_before[index])
        )

    # ------------------------------------------------------------------

    def handle(self, op: str, payload: Any) -> Any:
        handler = self._HANDLERS.get(op)
        if handler is None:
            raise ReproError(f"worker {self.config.worker_id}: unknown op {op!r}")
        return handler(self, payload)

    def offer_hot_keys(self, telemetry: Any, op: str, payload: Any) -> None:
        """Feed this op's routing keys into the partition's hot-key sketch.

        The keys offered are exactly what the router hashed to land the op
        here — the signal elastic repartitioning would split on.  Streams
        have no per-row routing key, so an ingest offers the stream name
        weighted by its row count.
        """
        if op in (msg.OP_INVOKE, msg.OP_PREPARE):
            name, params = payload
            procedure = self.engine.procedures.get(name)
            index = getattr(procedure, "partition_param", None)
            if index is not None and index < len(params):
                telemetry.offer_key(params[index])
        elif op == msg.OP_INVOKE_BATCH:
            name, rows, _ = payload
            procedure = self.engine.procedures.get(name)
            index = getattr(procedure, "partition_param", None)
            if index is not None:
                for params in rows:
                    if index < len(params):
                        telemetry.offer_key(params[index])
        elif op == msg.OP_INGEST:
            stream_name, rows = payload
            if rows:
                telemetry.offer_key(f"stream:{stream_name}", len(rows))

    # -- deployment ----------------------------------------------------

    def _op_ddl(self, sql: str) -> None:
        self.engine.execute_ddl(sql)

    def _op_register(self, procedure_class: type) -> None:
        self.engine.register_procedure(procedure_class)

    def _op_enable_durability(self, path: str) -> None:
        self.engine.enable_durability(path)

    def _op_install_faults(self, plan: Any) -> None:
        if plan is None:
            self.injector = None
            self.engine.install_fault_injector(None)
            return
        if self.injector is None:
            self.injector = FaultInjector(plan)
            self.engine.install_fault_injector(self.injector)
        else:
            # keep the occurrence counts: a plan refresh (the coordinator
            # syncing fired flags) is not a process restart
            self.injector.plan = plan

    # -- transactions --------------------------------------------------

    def _op_sql(self, payload: tuple[str, tuple[Any, ...]]) -> dict[str, Any]:
        sql, params = payload
        plan = self.engine.planner.plan(parse(sql))
        select_flags = None
        if isinstance(plan, SelectPlan):
            select_flags = {
                "grouped": bool(plan.grouped),
                "ordered": bool(plan.order_by),
                "limited": plan.limit is not None,
            }
        authority = getattr(self.engine, "adhoc_authority", None)
        authoritative = authority(plan) if authority is not None else True
        if not authoritative and select_flags is None:
            # Non-owner DML on a workflow-owned table: skip it entirely —
            # no execution and no <adhoc> log record, so replay re-derives
            # the same skip.  (SELECTs still run; the coordinator discards
            # the non-authoritative result.)
            return {"result": 0, "select": None, "authoritative": False}
        result = self.engine._execute_sql(sql, tuple(params))
        return {
            "result": result,
            "select": select_flags,
            "authoritative": authoritative,
        }

    def _op_invoke(self, payload: tuple[str, tuple[Any, ...]]) -> Any:
        name, params = payload
        self.engine._require_alive()
        return self.engine.invoke(name, tuple(params))

    def _op_invoke_batch(self, payload: tuple[str, list, bool]) -> dict[str, Any]:
        name, rows, want_latencies = payload
        self.engine._require_alive()
        committed = 0
        aborted = 0
        errors: list[tuple[int, str]] = []
        latencies_us: list[float] | None = [] if want_latencies else None
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        for index, params in enumerate(rows):
            call_start = time.perf_counter() if want_latencies else 0.0
            result = self.engine.invoke(name, tuple(params))
            if want_latencies:
                latencies_us.append((time.perf_counter() - call_start) * 1e6)
            if result.success:
                committed += 1
            else:
                aborted += 1
                if len(errors) < 5:
                    errors.append((index, result.error or ""))
        return {
            "committed": committed,
            "aborted": aborted,
            "errors": errors,
            "wall_s": time.perf_counter() - wall_start,
            "cpu_s": time.process_time() - cpu_start,
            "latencies_us": latencies_us,
        }

    def _op_prepare(self, payload: tuple[str, tuple[Any, ...]]) -> Any:
        if self.held is not None:
            raise ReproError(
                f"worker {self.config.worker_id}: prepare while a fenced "
                f"transaction is already held (fence protocol violated)"
            )
        name, params = payload
        result, prepared = self.engine.prepare_invoke(name, tuple(params))
        self.held = prepared
        return result

    def _op_decide(self, commit: bool) -> Any:
        if self.held is None:
            raise ReproError(
                f"worker {self.config.worker_id}: decide with no fenced "
                f"transaction held (fence protocol violated)"
            )
        prepared, self.held = self.held, None
        if commit:
            return self.engine.commit_prepared(prepared)
        self.engine.abort_prepared(prepared)
        return None

    # -- durability / recovery -----------------------------------------

    def _op_crash(self, _payload: None) -> int:
        return self.engine.crash()

    def _op_recover(self, _payload: None) -> int:
        return self.engine.recover()

    def _op_snapshot(self, _payload: None) -> int:
        return self.engine.take_snapshot().snapshot_id

    def _op_flush_log(self, _payload: None) -> int:
        return self.engine.command_log.flush()

    def _op_restore(self, path: str) -> dict[str, int | bool]:
        replayed = self.engine.restore_from_disk(path)
        report = self.engine.last_recovery_report
        return {
            "replayed": replayed,
            "torn": report.torn_records if report else 0,
            "snapshots_skipped": report.snapshots_skipped if report else 0,
            "had_snapshot": bool(report.had_snapshot) if report else False,
        }

    # -- observation ---------------------------------------------------

    def _op_log_records(self, _payload: None) -> list:
        return self.engine.command_log.all_records()

    def _op_stats(self, _payload: None):
        return self.engine.stats

    def _op_fingerprint(self, _payload: None) -> dict[str, Any]:
        tables = {
            name: sorted(table.rows())
            for name, table in self.engine.partitions[0].ee.tables().items()
        }
        return {"tables": tables, "clock": self.engine.clock.now}

    def _op_table_rows(self, table_name: str) -> list:
        return self.engine.table_rows(table_name)

    def _op_describe(self, _payload: None) -> str:
        return self.engine.describe()

    # -- distributed streaming -----------------------------------------

    def _shard(self):
        from repro.dstream.shard import StreamShardEngine

        if not isinstance(self.engine, StreamShardEngine):
            raise ReproError(
                f"worker {self.config.worker_id}: streaming op on a "
                f"non-streaming worker (engine_kind="
                f"{self.config.engine_kind!r}); build a DStreamEngine"
            )
        return self.engine

    def _op_deploy_workflow(self, payload: tuple) -> dict[str, Any]:
        spec, node_placement = payload
        return self._shard().deploy_placed_workflow(spec, node_placement)

    def _op_ingest(self, payload: tuple) -> dict[str, Any]:
        stream_name, rows = payload
        engine = self._shard()
        accepted = engine.ingest(stream_name, [tuple(row) for row in rows])
        return {"accepted": accepted, "dispatches": engine.take_outbound()}

    def _op_stream_task(self, payload: tuple) -> dict[str, Any]:
        stream_name, token, rows = payload
        engine = self._shard()
        applied = engine.apply_stream_task(stream_name, token, rows)
        return {"applied": applied, "dispatches": engine.take_outbound()}

    def _op_tick(self, payload: tuple) -> dict[str, Any]:
        ticks, seq = payload
        engine = self._shard()
        now = engine.apply_tick(ticks, seq)
        return {"now": now, "dispatches": engine.take_outbound()}

    def _op_wf_drain(self, _payload: None) -> dict[str, Any]:
        engine = self._shard()
        executed = engine.run_until_quiescent()
        return {"executed": executed, "dispatches": engine.take_outbound()}

    def _op_take_dispatches(self, _payload: None) -> list:
        return self._shard().take_outbound()

    def _op_dstream_state(self, _payload: None) -> dict[str, Any]:
        return self._shard().dstream_state()

    # -- lifecycle -----------------------------------------------------

    def _op_ping(self, _payload: None) -> int:
        return self.config.worker_id

    def _op_shutdown(self, _payload: None) -> None:
        return None

    _HANDLERS = {
        msg.OP_DDL: _op_ddl,
        msg.OP_REGISTER: _op_register,
        msg.OP_ENABLE_DURABILITY: _op_enable_durability,
        msg.OP_INSTALL_FAULTS: _op_install_faults,
        msg.OP_SQL: _op_sql,
        msg.OP_INVOKE: _op_invoke,
        msg.OP_INVOKE_BATCH: _op_invoke_batch,
        msg.OP_PREPARE: _op_prepare,
        msg.OP_DECIDE: _op_decide,
        msg.OP_CRASH: _op_crash,
        msg.OP_RECOVER: _op_recover,
        msg.OP_SNAPSHOT: _op_snapshot,
        msg.OP_FLUSH_LOG: _op_flush_log,
        msg.OP_RESTORE: _op_restore,
        msg.OP_LOG_RECORDS: _op_log_records,
        msg.OP_STATS: _op_stats,
        msg.OP_FINGERPRINT: _op_fingerprint,
        msg.OP_TABLE_ROWS: _op_table_rows,
        msg.OP_DESCRIBE: _op_describe,
        msg.OP_DEPLOY_WORKFLOW: _op_deploy_workflow,
        msg.OP_INGEST: _op_ingest,
        msg.OP_STREAM_TASK: _op_stream_task,
        msg.OP_TICK: _op_tick,
        msg.OP_WF_DRAIN: _op_wf_drain,
        msg.OP_TAKE_DISPATCHES: _op_take_dispatches,
        msg.OP_DSTREAM_STATE: _op_dstream_state,
        msg.OP_PING: _op_ping,
        msg.OP_SHUTDOWN: _op_shutdown,
    }

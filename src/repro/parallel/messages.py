"""The coordinator↔worker mailbox protocol.

Every exchange is a request/reply pair over a worker's mailbox pipes:

* request: ``(seq, op, payload, trace_ctx)`` — ``seq`` is a per-worker
  monotonically increasing integer the reply must echo (a cheap
  protocol-desync tripwire); ``op`` is one of the ``OP_*`` constants; the
  payload shape is per-op; ``trace_ctx`` is the coordinator's active
  :class:`~repro.obs.trace.TraceContext` (or ``None``), which the worker
  adopts so its spans join the same trace.
* reply: ``(seq, status, payload, fired, spans, telemetry)`` — ``status``
  is ``"ok"``, ``"error"`` (an engine exception, serialized by name +
  message) or ``"fault"`` (the deterministic fault injector fired inside
  the worker); ``fired`` lists fault-plan specs that newly fired while
  handling the request, as ``(spec_index, label)`` pairs, so the
  coordinator can keep its authoritative plan copy in sync (one-shot specs
  must not re-fire on a sibling worker); ``spans`` is the batch of finished
  worker-side spans (empty when tracing is off), absorbed into the
  coordinator's collector; ``telemetry`` is the partition's bounded load
  delta (nonzero ``EngineStats`` counters since the previous reply, op
  latency, hot-key sketch — see :mod:`repro.obs.telemetry`), or ``None``
  when partition telemetry is off.

Everything crossing a mailbox is a plain picklable value: SQL text,
parameter tuples, procedure *classes* (pickled by reference, which is why
registered procedures must be module-level classes), dataclasses
(``ProcedureResult``, ``EngineStats``, ``LogRecord``) and primitive
containers.
"""

from __future__ import annotations

import traceback
from typing import Any

from repro import errors as _errors
from repro.errors import ReproError

__all__ = [
    "OP_DDL",
    "OP_REGISTER",
    "OP_SQL",
    "OP_INVOKE",
    "OP_INVOKE_BATCH",
    "OP_PREPARE",
    "OP_DECIDE",
    "OP_CRASH",
    "OP_RECOVER",
    "OP_SNAPSHOT",
    "OP_FLUSH_LOG",
    "OP_LOG_RECORDS",
    "OP_STATS",
    "OP_FINGERPRINT",
    "OP_TABLE_ROWS",
    "OP_DESCRIBE",
    "OP_ENABLE_DURABILITY",
    "OP_RESTORE",
    "OP_INSTALL_FAULTS",
    "OP_PING",
    "OP_SHUTDOWN",
    "OP_DEPLOY_WORKFLOW",
    "OP_INGEST",
    "OP_STREAM_TASK",
    "OP_TICK",
    "OP_WF_DRAIN",
    "OP_TAKE_DISPATCHES",
    "OP_DSTREAM_STATE",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_FAULT",
    "dump_exception",
    "load_exception",
]

# -- deployment / setup ops --------------------------------------------------
OP_DDL = "ddl"                            # payload: sql str
OP_REGISTER = "register"                  # payload: StoredProcedure subclass
OP_ENABLE_DURABILITY = "enable_durability"  # payload: directory path str
OP_INSTALL_FAULTS = "install_faults"      # payload: FaultPlan | None

# -- transaction ops ---------------------------------------------------------
OP_SQL = "sql"                            # payload: (sql, params)
OP_INVOKE = "invoke"                      # payload: (procedure, params)
OP_INVOKE_BATCH = "invoke_batch"          # payload: (procedure, rows, latencies?)
OP_PREPARE = "prepare"                    # payload: (procedure, params)
OP_DECIDE = "decide"                      # payload: commit bool

# -- durability / recovery ops ----------------------------------------------
OP_CRASH = "crash"                        # payload: None
OP_RECOVER = "recover"                    # payload: None
OP_SNAPSHOT = "snapshot"                  # payload: None
OP_FLUSH_LOG = "flush_log"                # payload: None
OP_RESTORE = "restore"                    # payload: directory path str

# -- observation ops ---------------------------------------------------------
OP_LOG_RECORDS = "log_records"            # payload: None
OP_STATS = "stats"                        # payload: None
OP_FINGERPRINT = "fingerprint"            # payload: None
OP_TABLE_ROWS = "table_rows"              # payload: table name str
OP_DESCRIBE = "describe"                  # payload: None

# -- distributed streaming ops (dstream clusters only) ------------------------
# Streaming replies carry a "dispatches" list of (stream, token, rows)
# cross-worker tasks the op produced; the coordinator pump forwards each to
# the stream's authoritative worker via OP_STREAM_TASK until quiescent.
OP_DEPLOY_WORKFLOW = "deploy_workflow"    # payload: (WorkflowSpec, placement)
OP_INGEST = "ingest"                      # payload: (stream, rows)
OP_STREAM_TASK = "stream_task"            # payload: (stream, token, rows)
OP_TICK = "tick"                          # payload: (ticks, seq)
OP_WF_DRAIN = "wf_drain"                  # payload: None
OP_TAKE_DISPATCHES = "take_dispatches"    # payload: None
OP_DSTREAM_STATE = "dstream_state"        # payload: None

# -- lifecycle ---------------------------------------------------------------
OP_PING = "ping"                          # payload: None
OP_SHUTDOWN = "shutdown"                  # payload: None

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_FAULT = "fault"

#: exception classes that may cross a mailbox, resolvable by name
_ERROR_TYPES: dict[str, type[Exception]] = {
    name: obj
    for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, Exception)
}


def dump_exception(
    exc: BaseException,
    *,
    worker_id: int | None = None,
    txn: str | None = None,
    stream: str | None = None,
    batch_id: int | None = None,
    where: str | None = None,
    side: str = "worker",
) -> tuple[str, str]:
    """Serialize an exception for an ``"error"`` reply.

    Engine exceptions travel as (class name, message).  Anything else is a
    worker-side bug; its traceback is folded into the message so the
    coordinator surfaces it instead of hiding it in a child process.

    ``worker_id`` and ``txn`` (the procedure being invoked, when the op
    carried one) are prefixed onto the message so a coordinator-side
    traceback says *which* shard and transaction blew up — otherwise N
    identical workers are indistinguishable in the error text.  For stream
    TEs the op payload names only the border stream, not the failing
    transaction, so the worker additionally attributes the originating
    ``stream`` and origin ``batch_id`` of the TE whose failure propagated.

    The network front door (``repro.net``) reuses this serialization for
    its typed error frames: ``where`` is a free-form location prefix
    (``"net conn 3, call 'validate_vote'"``) used when the sender is not a
    partition worker, and ``side`` names the failing side in the fallback
    message for non-engine exceptions (``"worker"`` or ``"server"``).
    """
    prefix = ""
    if where is not None:
        prefix = f"[{where}] "
    elif worker_id is not None:
        location = f"worker {worker_id}"
        if txn:
            location += f", txn {txn!r}"
        if stream is not None:
            location += f", stream {stream!r}"
            if batch_id is not None:
                location += f", batch {batch_id}"
        prefix = f"[{location}] "
    if isinstance(exc, ReproError):
        return type(exc).__name__, prefix + str(exc)
    detail = "".join(traceback.format_exception(exc)).strip()
    return "ReproError", f"{prefix}{side}-side {type(exc).__name__}: {detail}"


def load_exception(class_name: str, message: str) -> Exception:
    """Rebuild the coordinator-side exception for an ``"error"`` reply."""
    cls = _ERROR_TYPES.get(class_name, ReproError)
    return cls(message)

"""Multi-process shared-nothing partition execution (``repro.parallel``).

The in-process :class:`~repro.hstore.engine.HStoreEngine` simulates its
partitions inside one Python interpreter, so added partitions buy zero real
parallelism — the GIL caps the whole node at one core.  This subsystem
deploys the same engine the way H-Store actually runs: **one OS process per
partition**, each executing its transactions serially against its own slice
of the database, coordinated over explicit mailboxes.

* :class:`PartitionWorker` — one partition's process plus its inbox/outbox
  mailbox pair (simplex OS pipes).
* :class:`Router` — deterministic value routing (same ``stable_hash`` the
  in-process engine uses, so a workload replays onto the same shards).
* :class:`ParallelHStoreEngine` — the coordinator facade.  It speaks the
  existing engine API (``execute_ddl`` / ``register_procedure`` /
  ``call_procedure`` / ``execute_sql`` / ``crash`` / ``recover`` /
  ``take_snapshot`` / ``enable_durability`` / ``restore_from_disk``), so
  applications, benchmarks and the fault checker drive a real process
  cluster unmodified.

See ``docs/INTERNALS.md`` § "Process model" for the message sequences.
"""

from repro.parallel.engine import BatchResult, ParallelHStoreEngine
from repro.parallel.router import Router
from repro.parallel.worker import PartitionWorker, WorkerConfig

__all__ = [
    "BatchResult",
    "ParallelHStoreEngine",
    "PartitionWorker",
    "Router",
    "WorkerConfig",
]

"""Deterministic transaction routing for the process cluster.

The coordinator owns no data; it only decides *which worker* runs each
single-partition transaction.  Routing reuses the exact
``stable_hash``/``route_value`` the in-process engine uses for its
partitions, so the same invocation stream lands on the same shards across
runs, processes and restarts — the property command-log replay and the
recovery-equivalence checker depend on.
"""

from __future__ import annotations

from typing import Any

from repro.errors import PartitionError
from repro.hstore.partition import route_value
from repro.hstore.procedure import StoredProcedure

__all__ = ["Router"]


class Router:
    """Maps (procedure, params) → worker id, exactly as the PE routes."""

    def __init__(self, worker_count: int) -> None:
        if worker_count < 1:
            raise PartitionError("cluster requires at least one worker")
        self.worker_count = worker_count

    def route(self, procedure: StoredProcedure, params: tuple[Any, ...]) -> int:
        """Worker id for one invocation (run-everywhere procedures have none)."""
        if procedure.run_everywhere:
            raise PartitionError(
                f"procedure {procedure.name!r} runs everywhere; it has no "
                f"single routing target"
            )
        if procedure.partition_param is None:
            return 0
        if procedure.partition_param >= len(params):
            raise PartitionError(
                f"procedure {procedure.name!r} routes on parameter "
                f"#{procedure.partition_param}, got only {len(params)} params"
            )
        return route_value(params[procedure.partition_param], self.worker_count)

    def shard(
        self, procedure: StoredProcedure, rows: list[tuple[Any, ...]]
    ) -> list[list[tuple[Any, ...]]]:
        """Split an invocation batch into per-worker sub-batches.

        Per-worker arrival order is preserved — each worker executes its
        sub-batch serially, which is what makes the sharded run equivalent
        to the serial run for single-partition transactions.
        """
        buckets: list[list[tuple[Any, ...]]] = [[] for _ in range(self.worker_count)]
        for row in rows:
            params = tuple(row)
            buckets[self.route(procedure, params)].append(params)
        return buckets

"""Stored procedures: parameterized transactions.

H-Store transactions are pre-defined parameterized stored procedures — SQL
statements embedded in control code — invoked by name with parameter values.
Here a procedure is a subclass of :class:`StoredProcedure` declaring its SQL
statements as a class-level dict; the engine pre-plans every statement at
registration time (exactly like H-Store compiles procedures at deployment),
and ``run`` is the control code.

Example::

    class CountVotes(StoredProcedure):
        name = "count_votes"
        statements = {
            "count": "SELECT COUNT(*) FROM votes WHERE contestant_id = ?",
        }

        def run(self, ctx, contestant_id):
            return ctx.execute("count", contestant_id).scalar()

Determinism contract: ``run`` must be a deterministic function of its
parameters and the database state (no wall-clock reads, no randomness) so
that command-log replay reproduces the same state — the same contract the
H-Store recovery paper [7] imposes.  The logical clock is available as
``ctx.now`` and *is* safe: its value is captured in the command log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import ProcedureError, TransactionAborted
from repro.hstore.executor import ResultSet
from repro.hstore.planner import Plan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hstore.engine import HStoreEngine
    from repro.hstore.executor import ExecutionEngine
    from repro.hstore.txn import TransactionContext

__all__ = ["StoredProcedure", "ProcedureContext", "ProcedureResult"]


class StoredProcedure:
    """Base class for stored procedures.

    Class attributes:

    ``name``
        Unique procedure name used in ``call_procedure``.
    ``statements``
        Mapping of statement name → SQL text; pre-planned at registration.
    ``partition_param``
        Index into the invocation parameters whose value routes the
        transaction to a partition (``None`` → partition 0).
    ``run_everywhere``
        If true, the procedure is a multi-partition transaction executed on
        every partition (H-Store's "run at all partitions" style); ``run``
        is invoked once per partition.
    ``read_only``
        Read-only procedures skip command logging.
    """

    name: str = ""
    statements: dict[str, str] = {}
    partition_param: int | None = None
    run_everywhere: bool = False
    read_only: bool = False

    def __init__(self) -> None:
        if not self.name:
            raise ProcedureError(
                f"{type(self).__name__} must define a class attribute 'name'"
            )
        #: filled by the engine at registration: statement name → plan
        self.plans: dict[str, Plan] = {}

    def run(self, ctx: "ProcedureContext", *params: Any) -> Any:
        """The transaction's control code; override in subclasses."""
        raise NotImplementedError


@dataclass
class ProcedureResult:
    """Outcome of one procedure invocation as seen by the client."""

    success: bool
    data: Any = None
    error: str | None = None
    txn_id: int | None = None
    partition: int | None = None

    def __bool__(self) -> bool:
        return self.success


class ProcedureContext:
    """Everything a running procedure may touch.

    Statement execution crosses the PE→EE boundary, so each ``execute`` call
    increments ``pe_ee_roundtrips`` — the crossing S-Store's EE triggers
    avoid.  The streaming subclass (:class:`repro.core.engine.StreamContext`)
    adds ``emit`` for writing to output streams.
    """

    def __init__(
        self,
        engine: "HStoreEngine",
        procedure: StoredProcedure,
        txn: "TransactionContext",
        partition_id: int,
    ) -> None:
        self._engine = engine
        self._procedure = procedure
        self._txn = txn
        self._partition_id = partition_id

    # -- introspection -------------------------------------------------------

    @property
    def txn(self) -> "TransactionContext":
        return self._txn

    @property
    def partition_id(self) -> int:
        return self._partition_id

    @property
    def now(self) -> int:
        """Current logical time (safe for deterministic replay)."""
        return self._engine.clock.now

    @property
    def procedure_name(self) -> str:
        return self._procedure.name

    @property
    def has_batch(self) -> bool:
        """Whether this invocation carries a streaming input batch.

        Always false on plain H-Store; the S-Store context overrides it.
        Having it here lets one procedure class serve both deployments
        (the Voter benchmark registers the same SP1/SP3 on both engines).
        """
        return False

    # -- statement execution --------------------------------------------------

    def execute(self, statement_name: str, *params: Any) -> ResultSet | int:
        """Run one of the procedure's pre-planned statements.

        Counts one PE↔EE round trip, exactly like H-Store shipping a plan
        fragment from the Java PE to the C++ EE.
        """
        try:
            plan = self._procedure.plans[statement_name]
        except KeyError:
            raise ProcedureError(
                f"procedure {self._procedure.name!r} has no statement "
                f"{statement_name!r}; declared: {sorted(self._procedure.plans)}"
            ) from None
        self._engine.stats.pe_ee_roundtrips += 1
        tracer = self._engine.tracer
        if tracer.enabled and tracer.sql_spans:
            with tracer.span("sql", statement_name):
                return self._txn.ee.execute(plan, params, self._txn)
        return self._txn.ee.execute(plan, params, self._txn)

    def insert_rows(
        self, table_name: str, rows: list[tuple[Any, ...]] | list[list[Any]]
    ) -> list[int]:
        """Bulk insert without per-row SQL (one PE↔EE round trip)."""
        self._engine.stats.pe_ee_roundtrips += 1
        return self._txn.ee.insert_rows(self._txn, table_name, rows)

    # -- control flow -----------------------------------------------------------

    def abort(self, reason: str = "aborted by procedure") -> None:
        """Abort the surrounding transaction (raises)."""
        raise TransactionAborted(reason)

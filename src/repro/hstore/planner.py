"""Query planner: compiles parsed statements into physical plans.

H-Store pre-plans every statement of a stored procedure at registration time
(procedures are "pre-defined parameterized stored procedures"), so planning
happens once and execution binds parameters only.  The planner:

* resolves every column reference against the catalog (errors surface at
  registration, not mid-transaction);
* picks access paths — hash-index point lookups for equality predicates,
  ordered-index range scans for range predicates, sequential scans otherwise;
* builds left-deep join trees, using index nested-loop joins when the inner
  table has a usable index on the join key;
* expands ``*`` projections and rewrites aggregate queries into an
  aggregate + post-projection pipeline.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import PlanningError
from repro.hstore.catalog import Catalog
from repro.hstore.expression import (
    AggregateCall,
    Between,
    BooleanOp,
    ColumnRef,
    Comparison,
    Exists,
    Expression,
    InSubquery,
    Parameter,
    PlannedExists,
    PlannedInSubquery,
    PlannedScalarSubquery,
    ScalarSubquery,
    Star,
    rewrite as rewrite_expr,
    walk,
)
from repro.hstore.parser import (
    CreateIndexStmt,
    CreateStreamStmt,
    CreateTableStmt,
    CreateViewStmt,
    CreateWindowStmt,
    DeleteStmt,
    DropViewStmt,
    InsertStmt,
    SelectStmt,
    Statement,
    TableRef,
    UpdateStmt,
)

__all__ = [
    "Planner",
    "Plan",
    "SelectPlan",
    "InsertPlan",
    "UpdatePlan",
    "DeletePlan",
    "DdlPlan",
    "AccessPath",
    "SeqScan",
    "IndexEqScan",
    "IndexRangeScan",
]


# ---------------------------------------------------------------------------
# Access paths
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AccessPath:
    """How to produce candidate rows of one table."""

    table: str
    alias: str


@dataclass(frozen=True)
class SeqScan(AccessPath):
    """Full scan in insertion order."""


@dataclass(frozen=True)
class IndexEqScan(AccessPath):
    """Point lookup: ``index`` probed with the values of ``key_exprs``.

    ``key_exprs`` may reference parameters and outer-row columns (when used
    as the inner side of an index nested-loop join).
    """

    index: str
    key_exprs: tuple[Expression, ...]


@dataclass(frozen=True)
class IndexRangeScan(AccessPath):
    """Range scan over an ordered single-column index."""

    index: str
    low: Expression | None
    high: Expression | None
    low_inclusive: bool
    high_inclusive: bool


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


class Plan:
    """Base class for physical plans."""

    #: filled by the planner: the source SQL statement type, for diagnostics
    statement: Statement


@dataclass
class JoinStep:
    """One inner table of a left-deep join pipeline."""

    access: AccessPath
    #: residual predicate evaluated against the combined row (may be None)
    on: Expression | None
    #: column map contribution of this table (combined-row offsets)
    base_offset: int = 0
    #: LEFT OUTER: emit unmatched outer rows padded with NULLs
    left_outer: bool = False
    #: width of the inner table's row (for NULL padding)
    inner_width: int = 0


@dataclass
class SelectPlan(Plan):
    statement: SelectStmt
    access: AccessPath
    joins: list[JoinStep]
    #: residual WHERE predicate over the combined row (None if consumed)
    where: Expression | None
    #: combined-row column map used to evaluate every expression
    columns: dict[str, int]
    #: projection expressions and output names (post-aggregate when grouped)
    output_exprs: list[Expression]
    output_names: list[str]
    #: aggregate pipeline (empty group_exprs + empty aggregates = no grouping)
    group_exprs: list[Expression]
    aggregates: list[AggregateCall]
    grouped: bool
    having: Expression | None
    order_by: list[tuple[Expression, bool]]
    limit: int | None
    offset: int | None
    distinct: bool
    #: number of parameters the statement expects
    param_count: int = 0
    #: post-aggregation pipeline: expressions rewritten to reference the
    #: extended row (group keys + aggregate values) via ``ext_columns``;
    #: for ungrouped queries these equal the originals / ``columns``
    post_exprs: list[Expression] = dataclasses.field(default_factory=list)
    post_having: Expression | None = None
    post_order: list[tuple[Expression, bool]] = dataclasses.field(default_factory=list)
    ext_columns: dict[str, int] = dataclasses.field(default_factory=dict)
    #: closure-compiled artifact (repro.hstore.compile.CompiledSelect);
    #: None = interpreted execution (the correctness oracle)
    compiled: Any = None
    #: repro.ivm.ViewRead when this plan's scan+aggregate stage is served
    #: from a delta view (attached by the S-Store engine at plan time);
    #: None = scan execution
    view_read: Any = None


@dataclass
class InsertPlan(Plan):
    statement: InsertStmt
    table: str
    #: for each target-table column: the position in the supplied value
    #: tuple, or None to use the column default
    slots: list[int | None]
    rows: list[tuple[Expression, ...]]
    select: SelectPlan | None
    param_count: int = 0
    compiled: Any = None


@dataclass
class UpdatePlan(Plan):
    statement: UpdateStmt
    table: str
    access: AccessPath
    where: Expression | None
    columns: dict[str, int]
    #: (column offset in the table row, value expression)
    assignments: list[tuple[int, Expression]]
    param_count: int = 0
    compiled: Any = None


@dataclass
class DeletePlan(Plan):
    statement: DeleteStmt
    table: str
    access: AccessPath
    where: Expression | None
    columns: dict[str, int]
    param_count: int = 0
    compiled: Any = None


@dataclass
class DdlPlan(Plan):
    """DDL executes directly against the catalog/storage — no planning."""

    statement: Statement


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


class Planner:
    def __init__(
        self,
        catalog: Catalog,
        *,
        compile_plans: bool = True,
        vectorize: bool = True,
    ) -> None:
        self._catalog = catalog
        #: closure-compile every plan (repro.hstore.compile); False keeps
        #: the tree-walking interpreter as the execution path — the
        #: correctness oracle the differential tests compare against
        self.compile_plans = compile_plans
        #: additionally attach batch-at-a-time artifacts to full-scan
        #: plans (repro.hstore.vector); False pins compiled plans to the
        #: row-at-a-time closures (the benchmark comparison arm)
        self.vectorize = vectorize

    # -- public entry points -------------------------------------------------

    def plan(self, statement: Statement) -> Plan:
        if isinstance(statement, SelectStmt):
            plan: Plan = self.plan_select(statement)
        elif isinstance(statement, InsertStmt):
            plan = self.plan_insert(statement)
        elif isinstance(statement, UpdateStmt):
            plan = self.plan_update(statement)
        elif isinstance(statement, DeleteStmt):
            plan = self.plan_delete(statement)
        elif isinstance(
            statement,
            (
                CreateTableStmt,
                CreateStreamStmt,
                CreateWindowStmt,
                CreateIndexStmt,
                CreateViewStmt,
                DropViewStmt,
            ),
        ):
            return DdlPlan(statement)
        else:
            raise PlanningError(f"cannot plan {type(statement).__name__}")
        if self.compile_plans:
            from repro.hstore.compile import compile_plan

            compile_plan(plan, vectorize=self.vectorize)
        return plan

    # -- scopes ---------------------------------------------------------------

    def _scope_for(self, refs: list[TableRef]) -> tuple[dict[str, int], list[int]]:
        """Column map + per-table base offsets for a FROM-clause table list."""
        columns: dict[str, int] = {}
        ambiguous: set[str] = set()
        bases: list[int] = []
        offset = 0
        seen_aliases: set[str] = set()
        for ref in refs:
            entry = self._catalog.table(ref.name)
            alias = ref.effective_alias.lower()
            if alias in seen_aliases:
                raise PlanningError(f"duplicate table alias {alias!r}")
            seen_aliases.add(alias)
            bases.append(offset)
            for i, column in enumerate(entry.schema):
                columns[f"{alias}.{column.name}"] = offset + i
                if column.name in ambiguous:
                    continue
                if column.name in columns:
                    del columns[column.name]
                    ambiguous.add(column.name)
                else:
                    columns[column.name] = offset + i
            offset += len(entry.schema)
        return columns, bases

    def _validate_refs(self, expr: Expression, columns: dict[str, int]) -> None:
        for node in walk(expr):
            if isinstance(node, ColumnRef) and node.key not in columns:
                raise PlanningError(
                    f"unknown column {node.key!r}; known: {sorted(columns)}"
                )

    # -- predicate decomposition ----------------------------------------------

    @staticmethod
    def _conjuncts(expr: Expression | None) -> list[Expression]:
        """Split a predicate into top-level AND conjuncts."""
        if expr is None:
            return []
        if isinstance(expr, BooleanOp) and expr.op == "AND":
            result: list[Expression] = []
            for operand in expr.operands:
                result.extend(Planner._conjuncts(operand))
            return result
        return [expr]

    @staticmethod
    def _recombine(conjuncts: list[Expression]) -> Expression | None:
        if not conjuncts:
            return None
        if len(conjuncts) == 1:
            return conjuncts[0]
        return BooleanOp("AND", tuple(conjuncts))

    def _plan_subqueries(
        self,
        expr: Expression,
        outer_columns: dict[str, int] | None = None,
        param_alloc: "Iterator[int] | None" = None,
        stmt: Statement | None = None,
    ) -> Expression:
        """Replace parsed subquery nodes with planned ones (recursively).

        Correlated subqueries (inner references to columns of the enclosing
        statement, one level up) are decorrelated by parameterization: each
        distinct outer reference becomes a fresh ``?`` parameter of the
        inner plan, and the planned node records the outer-row offset whose
        value binds it at evaluation time.
        """
        if outer_columns is None:
            outer_columns = {}
        if param_alloc is None:
            base = self._count_params(stmt) if stmt is not None else 0
            param_alloc = iter(range(base, base + 1_000_000))

        def transform(node: Expression) -> Expression | None:
            if isinstance(node, InSubquery):
                inner, offsets = self._plan_correlated_select(
                    node.select, outer_columns, param_alloc
                )
                if len(inner.output_exprs) != 1:
                    raise PlanningError(
                        "IN (SELECT ...) requires exactly one output column"
                    )
                return PlannedInSubquery(
                    operand=self._plan_subqueries(
                        node.operand, outer_columns, param_alloc
                    ),
                    plan=inner,
                    negated=node.negated,
                    outer_offsets=offsets,
                )
            if isinstance(node, Exists):
                inner, offsets = self._plan_correlated_select(
                    node.select, outer_columns, param_alloc
                )
                return PlannedExists(plan=inner, outer_offsets=offsets)
            if isinstance(node, ScalarSubquery):
                inner, offsets = self._plan_correlated_select(
                    node.select, outer_columns, param_alloc
                )
                if len(inner.output_exprs) != 1:
                    raise PlanningError(
                        "a scalar subquery requires exactly one output column"
                    )
                return PlannedScalarSubquery(plan=inner, outer_offsets=offsets)
            return None

        return rewrite_expr(expr, transform)

    def _plan_correlated_select(
        self,
        stmt: SelectStmt,
        outer_columns: dict[str, int],
        param_alloc: "Iterator[int]",
    ) -> tuple["SelectPlan", tuple[int, ...]]:
        """Plan an inner SELECT, extracting one-level outer correlations."""
        inner_refs = [stmt.table] + [join.table for join in stmt.joins]
        inner_columns, _bases = self._scope_for(inner_refs)

        #: outer column key → (parameter node, outer-row offset)
        bound: dict[str, Parameter] = {}
        offsets: list[int] = []

        def transform(node: Expression) -> Expression | None:
            if isinstance(node, (InSubquery, Exists, ScalarSubquery)):
                # deeper subqueries correlate against *their* enclosing
                # scope, handled when the inner plan_select recurses
                return node
            if (
                isinstance(node, ColumnRef)
                and node.key not in inner_columns
                and node.key in outer_columns
            ):
                parameter = bound.get(node.key)
                if parameter is None:
                    parameter = Parameter(next(param_alloc))
                    bound[node.key] = parameter
                    offsets.append(outer_columns[node.key])
                return parameter
            return None

        def rewrite_field(value: Any) -> Any:
            if isinstance(value, Expression):
                return rewrite_expr(value, transform)
            return value

        rewritten = dataclasses.replace(
            stmt,
            items=tuple(
                dataclasses.replace(item, expr=rewrite_field(item.expr))
                for item in stmt.items
            ),
            joins=tuple(
                dataclasses.replace(join, on=rewrite_field(join.on))
                for join in stmt.joins
            ),
            where=rewrite_field(stmt.where) if stmt.where is not None else None,
            group_by=tuple(rewrite_field(expr) for expr in stmt.group_by),
            having=rewrite_field(stmt.having) if stmt.having is not None else None,
            order_by=tuple(
                dataclasses.replace(item, expr=rewrite_field(item.expr))
                for item in stmt.order_by
            ),
        )
        return self.plan_select(rewritten), tuple(offsets)

    @staticmethod
    def _refs_only(expr: Expression, allowed: set[str]) -> bool:
        """Whether every column the expression references is in ``allowed``."""
        return all(
            node.key in allowed
            for node in walk(expr)
            if isinstance(node, ColumnRef)
        )

    @staticmethod
    def _probe_safe(expr: Expression) -> bool:
        """Whether an expression may be evaluated as an index probe.

        Correlated planned subqueries bind outer-row values at evaluation
        time; an index probe is evaluated *before* any row of the scanned
        table exists, so such expressions must stay residual filters.
        Uncorrelated subqueries are row-independent and therefore fine.
        """
        from repro.hstore.expression import (
            PlannedExists,
            PlannedInSubquery,
            PlannedScalarSubquery,
        )

        return all(
            not node.outer_offsets
            for node in walk(expr)
            if isinstance(
                node,
                (PlannedInSubquery, PlannedExists, PlannedScalarSubquery),
            )
        )

    def _column_keys_of(self, ref: TableRef) -> set[str]:
        entry = self._catalog.table(ref.name)
        alias = ref.effective_alias.lower()
        keys = {f"{alias}.{col.name}" for col in entry.schema}
        keys |= {col.name for col in entry.schema}
        return keys

    # -- access-path selection -------------------------------------------------

    def _pick_access(
        self,
        ref: TableRef,
        conjuncts: list[Expression],
        outer_columns: set[str],
    ) -> tuple[AccessPath, list[Expression]]:
        """Choose the best access path for one table.

        ``conjuncts`` are candidate predicates; consumed ones are removed and
        the remaining returned as residual filters.  ``outer_columns`` are
        column keys available from outer tables (for join key expressions);
        empty for the driving table.
        """
        entry = self._catalog.table(ref.name)
        alias = ref.effective_alias.lower()
        own_keys = self._column_keys_of(ref)
        indexes = self._catalog.indexes_on(ref.name)

        # Primary key behaves like an implicit unique hash index.
        candidates: list[tuple[str, tuple[str, ...], bool]] = []
        if entry.primary_key:
            candidates.append((f"{entry.name}__pk", entry.primary_key, False))
        for index in indexes:
            candidates.append((index.name, index.column_names, index.ordered))

        # 1. Equality: find an index all of whose columns have an equality
        #    conjunct with the probe side evaluable from params/outer row.
        eq_map: dict[str, tuple[Expression, Expression]] = {}
        for conj in conjuncts:
            pair = self._equality_on(conj, alias, own_keys, outer_columns)
            if pair is not None:
                column, probe = pair
                eq_map.setdefault(column, (conj, probe))

        for index_name, index_columns, _ordered in candidates:
            if all(col in eq_map for col in index_columns):
                used = [eq_map[col][0] for col in index_columns]
                probes = tuple(eq_map[col][1] for col in index_columns)
                residual = [c for c in conjuncts if c not in used]
                return (
                    IndexEqScan(entry.name, alias, index_name, probes),
                    residual,
                )

        # 2. Range: single-column ordered index with a usable bound.
        for index_name, index_columns, ordered in candidates:
            if not ordered or len(index_columns) != 1:
                continue
            column = index_columns[0]
            low = high = None
            low_inc = high_inc = True
            used: list[Expression] = []
            for conj in conjuncts:
                bound = self._range_on(conj, column, alias, own_keys, outer_columns)
                if bound is None:
                    continue
                op, probe = bound
                if op in (">", ">=") and low is None:
                    low, low_inc = probe, op == ">="
                    used.append(conj)
                elif op in ("<", "<=") and high is None:
                    high, high_inc = probe, op == "<="
                    used.append(conj)
            if used:
                residual = [c for c in conjuncts if c not in used]
                return (
                    IndexRangeScan(
                        entry.name, alias, index_name, low, high, low_inc, high_inc
                    ),
                    residual,
                )

        return SeqScan(entry.name, alias), list(conjuncts)

    def _equality_on(
        self,
        conj: Expression,
        alias: str,
        own_keys: set[str],
        outer_columns: set[str],
    ) -> tuple[str, Expression] | None:
        """If ``conj`` is ``col = probe`` for this table, return (col, probe)."""
        if not isinstance(conj, Comparison) or conj.op != "=":
            return None
        for this, other in ((conj.left, conj.right), (conj.right, conj.left)):
            if not isinstance(this, ColumnRef):
                continue
            if this.key not in own_keys:
                continue
            if this.table is not None and this.table != alias:
                continue
            # probe must be computable without this table's row
            if self._refs_only(other, outer_columns) and self._probe_safe(other):
                return this.name, other
        return None

    def _range_on(
        self,
        conj: Expression,
        column: str,
        alias: str,
        own_keys: set[str],
        outer_columns: set[str],
    ) -> tuple[str, Expression] | None:
        """If ``conj`` bounds ``column``, return (normalized op, probe expr)."""
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        if isinstance(conj, Between) and not conj.negated:
            return None  # handled by two comparisons; keep planner simple
        if not isinstance(conj, Comparison) or conj.op not in flipped:
            return None
        left, right = conj.left, conj.right
        if (
            isinstance(left, ColumnRef)
            and left.name == column
            and left.key in own_keys
            and (left.table is None or left.table == alias)
            and self._refs_only(right, outer_columns)
            and self._probe_safe(right)
        ):
            return conj.op, right
        if (
            isinstance(right, ColumnRef)
            and right.name == column
            and right.key in own_keys
            and (right.table is None or right.table == alias)
            and self._refs_only(left, outer_columns)
            and self._probe_safe(left)
        ):
            return flipped[conj.op], left
        return None

    # -- SELECT -----------------------------------------------------------------

    def plan_select(self, stmt: SelectStmt) -> SelectPlan:
        refs = [stmt.table] + [join.table for join in stmt.joins]
        columns, bases = self._scope_for(refs)

        where_expr = (
            self._plan_subqueries(stmt.where, columns, stmt=stmt)
            if stmt.where is not None
            else None
        )
        conjuncts = self._conjuncts(where_expr)
        for conj in conjuncts:
            self._validate_refs(conj, columns)

        # driving table access path: predicates referencing only it
        driving_keys = self._column_keys_of(stmt.table) & set(columns)
        driving_conjs = [c for c in conjuncts if self._refs_only(c, driving_keys)]
        other_conjs = [c for c in conjuncts if c not in driving_conjs]
        access, residual = self._pick_access(stmt.table, driving_conjs, set())
        residual_where = residual + other_conjs

        # joins: each may consume its ON equality via an index
        join_steps: list[JoinStep] = []
        outer_keys = set(driving_keys)
        for join, base in zip(stmt.joins, bases[1:]):
            self._validate_refs(join.on, columns)
            join_conjs = self._conjuncts(join.on)
            inner_access, join_residual = self._pick_access(
                join.table, join_conjs, outer_keys | set(columns)
            )
            # Residual join predicates are evaluated on the combined row.
            join_steps.append(
                JoinStep(
                    access=inner_access,
                    on=self._recombine(join_residual),
                    base_offset=base,
                    left_outer=join.left_outer,
                    inner_width=len(self._catalog.table(join.table.name).schema),
                )
            )
            outer_keys |= self._column_keys_of(join.table) & set(columns)

        # projection: expand stars, plan embedded subqueries, name outputs
        output_exprs: list[Expression] = []
        output_names: list[str] = []
        for item in stmt.items:
            if isinstance(item.expr, Star):
                for key, name in self._star_columns(item.expr, refs):
                    output_exprs.append(ColumnRef(name, table=key))
                    output_names.append(name)
            else:
                item_expr = self._plan_subqueries(item.expr, columns, stmt=stmt)
                self._validate_refs(item_expr, columns)
                output_exprs.append(item_expr)
                output_names.append(item.alias or self._default_name(item.expr))

        # aggregation
        aggregates: list[AggregateCall] = []
        for expr in output_exprs:
            aggregates.extend(
                node for node in walk(expr) if isinstance(node, AggregateCall)
            )
        having_expr = (
            self._plan_subqueries(stmt.having, columns, stmt=stmt)
            if stmt.having is not None
            else None
        )
        if having_expr is not None:
            self._validate_refs(having_expr, columns)
            aggregates.extend(
                node for node in walk(having_expr) if isinstance(node, AggregateCall)
            )
        # ORDER BY / GROUP BY may reference select-list aliases (standard
        # SQL) or 1-based output positions (SQL92); resolve both to the
        # underlying expressions before validation.
        alias_map = {
            name: expr for expr, name in zip(output_exprs, output_names)
        }

        def resolve_output_ref(expr: Expression, clause: str) -> Expression:
            from repro.hstore.expression import Literal

            if (
                isinstance(expr, ColumnRef)
                and expr.table is None
                and expr.key not in columns
                and expr.name in alias_map
            ):
                return alias_map[expr.name]
            if isinstance(expr, Literal) and isinstance(expr.value, int) \
                    and not isinstance(expr.value, bool):
                position = expr.value
                if not 1 <= position <= len(output_exprs):
                    raise PlanningError(
                        f"{clause} position {position} is out of range "
                        f"(1..{len(output_exprs)})"
                    )
                return output_exprs[position - 1]
            return expr

        resolved_order: list[tuple[Expression, bool]] = []
        order_aggs: list[AggregateCall] = []
        for item in stmt.order_by:
            expr = resolve_output_ref(item.expr, "ORDER BY")
            self._validate_refs(expr, columns)
            order_aggs.extend(
                node for node in walk(expr) if isinstance(node, AggregateCall)
            )
            resolved_order.append((expr, item.ascending))
        aggregates.extend(order_aggs)

        grouped = bool(stmt.group_by) or bool(aggregates)
        group_exprs = [
            resolve_output_ref(expr, "GROUP BY") for expr in stmt.group_by
        ]
        for expr in group_exprs:
            self._validate_refs(expr, columns)
        # de-duplicate aggregates structurally
        unique_aggs: list[AggregateCall] = []
        for agg in aggregates:
            if agg not in unique_aggs:
                unique_aggs.append(agg)

        if having_expr is not None and not grouped:
            raise PlanningError("HAVING requires GROUP BY or aggregates")

        order_by = resolved_order

        for agg in unique_aggs:
            if agg.arg is not None and any(
                isinstance(node, AggregateCall) for node in walk(agg.arg)
            ):
                raise PlanningError(f"nested aggregate in {agg.sql()}")

        # Pre-compile the post-aggregation pipeline.
        if grouped:
            group_map = {expr: f"__g{i}" for i, expr in enumerate(group_exprs)}
            agg_map = {
                agg: f"__a{j}" for j, agg in enumerate(unique_aggs)
            }
            ext_columns = {f"__g{i}": i for i in range(len(group_exprs))}
            ext_columns.update(
                {f"__a{j}": len(group_exprs) + j for j in range(len(unique_aggs))}
            )
            post_exprs = [
                _rewrite_post_agg(expr, group_map, agg_map) for expr in output_exprs
            ]
            post_having = (
                _rewrite_post_agg(having_expr, group_map, agg_map)
                if having_expr is not None
                else None
            )
            post_order = [
                (_rewrite_post_agg(expr, group_map, agg_map), asc)
                for expr, asc in order_by
            ]
            for expr in post_exprs + [e for e, _ in post_order] + (
                [post_having] if post_having is not None else []
            ):
                for node in walk(expr):
                    if isinstance(node, ColumnRef) and node.key not in ext_columns:
                        raise PlanningError(
                            f"column {node.key!r} must appear in GROUP BY or "
                            f"inside an aggregate"
                        )
        else:
            ext_columns = columns
            post_exprs = list(output_exprs)
            post_having = None
            post_order = list(order_by)

        param_count = self._count_params(stmt)

        return SelectPlan(
            statement=stmt,
            access=access,
            joins=join_steps,
            where=self._recombine(residual_where),
            columns=columns,
            output_exprs=output_exprs,
            output_names=output_names,
            group_exprs=group_exprs,
            aggregates=unique_aggs,
            grouped=grouped,
            having=having_expr,
            order_by=order_by,
            limit=stmt.limit,
            offset=stmt.offset,
            distinct=stmt.distinct,
            param_count=param_count,
            post_exprs=post_exprs,
            post_having=post_having,
            post_order=post_order,
            ext_columns=ext_columns,
        )

    def _star_columns(
        self, star: Star, refs: list[TableRef]
    ) -> list[tuple[str, str]]:
        """(alias, column) pairs a ``*`` expands to."""
        result: list[tuple[str, str]] = []
        for ref in refs:
            alias = ref.effective_alias.lower()
            if star.table is not None and star.table != alias:
                continue
            entry = self._catalog.table(ref.name)
            result.extend((alias, column.name) for column in entry.schema)
        if not result:
            raise PlanningError(f"cannot expand {star.sql()}")
        return result

    @staticmethod
    def _default_name(expr: Expression) -> str:
        if isinstance(expr, ColumnRef):
            return expr.name
        if isinstance(expr, AggregateCall):
            return expr.name
        return expr.sql()

    @staticmethod
    def _count_params(stmt: Statement) -> int:
        """Highest parameter index + 1 anywhere in the statement tree.

        Walks dataclass fields rather than ``Expression.children()`` so that
        parameters inside subquery *statements* (``InSubquery.select``,
        ``Exists.select``) are counted too.
        """
        count = 0

        def visit(obj: Any) -> None:
            nonlocal count
            if isinstance(obj, Parameter):
                count = max(count, obj.index + 1)
            if isinstance(obj, (list, tuple)):
                for item in obj:
                    visit(item)
            elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
                for fld in dataclasses.fields(obj):
                    visit(getattr(obj, fld.name))

        visit(stmt)
        return count

    # -- INSERT -----------------------------------------------------------------

    def plan_insert(self, stmt: InsertStmt) -> InsertPlan:
        entry = self._catalog.table(stmt.table)
        schema = entry.schema
        if stmt.columns:
            supplied = [name.lower() for name in stmt.columns]
            for name in supplied:
                if not schema.has_column(name):
                    raise PlanningError(
                        f"table {entry.name!r} has no column {name!r}"
                    )
            if len(set(supplied)) != len(supplied):
                raise PlanningError("duplicate column in INSERT column list")
            positions = {name: i for i, name in enumerate(supplied)}
            slots: list[int | None] = [
                positions.get(column.name) for column in schema
            ]
            width = len(supplied)
        else:
            slots = list(range(len(schema)))
            width = len(schema)

        select_plan: SelectPlan | None = None
        if stmt.select is not None:
            select_plan = self.plan_select(stmt.select)
            if len(select_plan.output_exprs) != width:
                raise PlanningError(
                    f"INSERT expects {width} columns, SELECT yields "
                    f"{len(select_plan.output_exprs)}"
                )
        else:
            for row in stmt.rows:
                if len(row) != width:
                    raise PlanningError(
                        f"INSERT expects {width} values, got {len(row)}"
                    )

        return InsertPlan(
            statement=stmt,
            table=entry.name,
            slots=slots,
            rows=list(stmt.rows),
            select=select_plan,
            param_count=self._count_params(stmt),
        )

    # -- UPDATE / DELETE -----------------------------------------------------

    def plan_update(self, stmt: UpdateStmt) -> UpdatePlan:
        entry = self._catalog.table(stmt.table)
        ref = TableRef(entry.name)
        columns, _bases = self._scope_for([ref])
        where_expr = (
            self._plan_subqueries(stmt.where, columns, stmt=stmt)
            if stmt.where is not None
            else None
        )
        conjuncts = self._conjuncts(where_expr)
        for conj in conjuncts:
            self._validate_refs(conj, columns)
        access, residual = self._pick_access(ref, conjuncts, set())

        assignments: list[tuple[int, Expression]] = []
        for name, expr in stmt.assignments:
            offset = entry.schema.offset_of(name)
            expr = self._plan_subqueries(expr, columns, stmt=stmt)
            self._validate_refs(expr, columns)
            assignments.append((offset, expr))

        return UpdatePlan(
            statement=stmt,
            table=entry.name,
            access=access,
            where=self._recombine(residual),
            columns=columns,
            assignments=assignments,
            param_count=self._count_params(stmt),
        )

    def plan_delete(self, stmt: DeleteStmt) -> DeletePlan:
        entry = self._catalog.table(stmt.table)
        ref = TableRef(entry.name)
        columns, _bases = self._scope_for([ref])
        where_expr = (
            self._plan_subqueries(stmt.where, columns, stmt=stmt)
            if stmt.where is not None
            else None
        )
        conjuncts = self._conjuncts(where_expr)
        for conj in conjuncts:
            self._validate_refs(conj, columns)
        access, residual = self._pick_access(ref, conjuncts, set())
        return DeletePlan(
            statement=stmt,
            table=entry.name,
            access=access,
            where=self._recombine(residual),
            columns=columns,
            param_count=self._count_params(stmt),
        )


def _rewrite_post_agg(
    expr: Expression,
    group_map: dict[Expression, str],
    agg_map: dict[AggregateCall, str],
) -> Expression:
    """Rewrite an expression to run over the extended (grouped) row.

    Subtrees structurally equal to a GROUP BY expression become references to
    the synthetic group-key column; aggregate calls become references to the
    synthetic aggregate column.  Everything else is rebuilt with rewritten
    children.
    """
    if expr in group_map:
        return ColumnRef(group_map[expr])
    if isinstance(expr, AggregateCall):
        return ColumnRef(agg_map[expr])

    kwargs: dict[str, Any] = {}
    changed = False
    for fld in dataclasses.fields(expr):
        value = getattr(expr, fld.name)
        if isinstance(value, Expression):
            rewritten = _rewrite_post_agg(value, group_map, agg_map)
            changed = changed or rewritten is not value
            kwargs[fld.name] = rewritten
        elif (
            isinstance(value, tuple)
            and value
            and all(isinstance(item, Expression) for item in value)
        ):
            rewritten_tuple = tuple(
                _rewrite_post_agg(item, group_map, agg_map) for item in value
            )
            changed = changed or any(
                new is not old for new, old in zip(rewritten_tuple, value)
            )
            kwargs[fld.name] = rewritten_tuple
        else:
            kwargs[fld.name] = value
    if not changed:
        return expr
    return dataclasses.replace(expr, **kwargs)

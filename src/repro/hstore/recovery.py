"""Recovery helpers.

The actual recovery algorithm (snapshot load + command-log replay) lives on
:class:`repro.hstore.engine.HStoreEngine`; this module adds the orchestration
helpers tests and benchmarks use to exercise it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hstore.engine import HStoreEngine

__all__ = ["RecoveryReport", "crash_and_recover"]


@dataclass(frozen=True)
class RecoveryReport:
    """What a crash/recover cycle did."""

    lost_log_records: int
    replayed_transactions: int
    had_snapshot: bool
    #: torn trailing log records detected, dropped, and truncated away
    #: during a disk restore (a mid-append crash leaves at most one)
    torn_records: int = 0
    #: damaged snapshot files skipped over before a valid (older) one —
    #: each one skipped means a longer replay suffix
    snapshots_skipped: int = 0


def crash_and_recover(engine: "HStoreEngine") -> RecoveryReport:
    """Crash the engine and immediately recover it, reporting the work done.

    Un-flushed (group-commit pending) log records are lost by the crash —
    transactions whose effects survive are exactly those whose commands were
    durable, which is the guarantee command logging provides.
    """
    had_snapshot = engine.snapshots.latest is not None
    lost = engine.crash()
    replayed = engine.recover()
    return RecoveryReport(
        lost_log_records=lost,
        replayed_transactions=replayed,
        had_snapshot=had_snapshot,
    )

"""Structure-of-arrays column store: the analytics half of table storage.

The row store (``Table._rows``: rowid -> tuple) stays authoritative — txn
undo, snapshots, recovery, and indexes all read and write it.  This module
maintains a column-major *mirror* of the live rows so full scans and
aggregates can run batch-at-a-time over flat vectors instead of walking
row tuples.

Layout per table:

* one vector per column — an ``array``-module typed vector for NOT NULL
  INTEGER/BIGINT/TIMESTAMP (``'q'``, int64) and FLOAT (``'d'``, C double),
  a plain Python list for VARCHAR, BOOLEAN, and anything nullable (typed
  arrays cannot hold ``None``, and BOOLEAN must round-trip ``bool`` —
  an array would hand back ``int`` and break type fidelity);
* a parallel ``'q'`` rowid vector, ascending at view time;
* a rowid -> slot map for O(1) delete/update mirroring.

Maintenance is *lazy* two ways.  First, the mirror is only built at all
once a table is columnar-scanned (``Table.columnar_view``) — pure-OLTP
tables pay a single ``is None`` branch per mutation and no memory.
Second, deletes only tombstone a slot and out-of-order appends (txn-undo
``insert_with_rowid``) only clear a sorted flag; the next ``view()`` call
compacts live slots back into dense rowid-ascending vectors.  A view is
therefore always dense and aligned with ``Table.storage()`` iteration
order, which is what lets the executor pair a selection mask computed
over column vectors with the row dict's values.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterable, Sequence

from repro.hstore.types import SqlType

__all__ = ["ColumnStore", "TYPED_CODES"]

#: array-module typecodes for columns that qualify for typed vectors.
#: int64 holds every INTEGER/BIGINT/TIMESTAMP the type system admits
#: (INTEGER is range-checked to int32 at coercion, BIGINT/TIMESTAMP to
#: int64); C double is exactly a Python float.  Only NOT NULL columns
#: qualify — nullable ones fall back to plain lists.
TYPED_CODES = {
    SqlType.INTEGER: "q",
    SqlType.BIGINT: "q",
    SqlType.TIMESTAMP: "q",
    SqlType.FLOAT: "d",
}


class ColumnStore:
    """Column-major mirror of one table's live rows."""

    __slots__ = (
        "_codes",
        "_rowids",
        "_cols",
        "_pos",
        "_dead",
        "_append_sorted",
        "_tail",
        "version",
    )

    def __init__(self, schema: Sequence[Any]) -> None:
        self._codes: list[str | None] = [
            None if col.nullable else TYPED_CODES.get(col.sql_type)
            for col in schema
        ]
        self._rowids: array = array("q")
        self._cols: list[Any] = [
            array(code) if code else [] for code in self._codes
        ]
        self._pos: dict[int, int] = {}
        self._dead: set[int] = set()
        self._append_sorted = True
        self._tail = -1
        #: bumped on every logical content change (insert/delete/update);
        #: lets callers detect staleness of anything derived from a view
        self.version = 0

    # ------------------------------------------------------------------
    # mutation mirror — called from the Table funnel

    def append(self, rowid: int, row: Sequence[Any]) -> None:
        self._pos[rowid] = len(self._rowids)
        self._rowids.append(rowid)
        for col, value in zip(self._cols, row):
            col.append(value)
        if rowid < self._tail:
            # txn-undo re-insert below the high-water mark: the next
            # view() re-sorts by rowid
            self._append_sorted = False
        else:
            self._tail = rowid
        self.version += 1

    def remove(self, rowid: int) -> None:
        self._dead.add(self._pos.pop(rowid))
        self.version += 1

    def replace(self, rowid: int, row: Sequence[Any]) -> None:
        slot = self._pos[rowid]
        for col, value in zip(self._cols, row):
            col[slot] = value
        self.version += 1

    def clear(self) -> None:
        self._rowids = array("q")
        self._cols = [array(code) if code else [] for code in self._codes]
        self._pos = {}
        self._dead = set()
        self._append_sorted = True
        self._tail = -1
        self.version += 1

    def rebuild(self, items: Iterable[tuple[int, Sequence[Any]]]) -> None:
        """Reload from (rowid, row) pairs; order need not be sorted."""
        self.clear()
        for rowid, row in items:
            self.append(rowid, row)

    # ------------------------------------------------------------------
    # read side

    def view(self) -> "ColumnStore":
        """Dense, rowid-ascending snapshot handle (self, compacted)."""
        if self._dead or not self._append_sorted:
            self._compact()
        return self

    def size(self) -> int:
        return len(self._rowids) - len(self._dead)

    def column(self, offset: int) -> Any:
        """Raw column vector — only aligned after ``view()``."""
        return self._cols[offset]

    def rowid_vector(self) -> array:
        return self._rowids

    def typecode(self, offset: int) -> str | None:
        return self._codes[offset]

    def _compact(self) -> None:
        dead = self._dead
        rowids = self._rowids
        if dead:
            live = [slot for slot in range(len(rowids)) if slot not in dead]
        else:
            live = list(range(len(rowids)))
        if not self._append_sorted:
            live.sort(key=rowids.__getitem__)
        self._rowids = array("q", map(rowids.__getitem__, live))
        self._cols = [
            array(code, map(col.__getitem__, live))
            if code
            else list(map(col.__getitem__, live))
            for code, col in zip(self._codes, self._cols)
        ]
        self._pos = {rowid: slot for slot, rowid in enumerate(self._rowids)}
        self._dead = set()
        self._append_sorted = True
        self._tail = self._rowids[-1] if self._rowids else -1

"""In-memory indexes for the execution engine.

Two physical index structures are provided, matching the two H-Store index
flavours the planner can exploit:

* :class:`HashIndex` — O(1) point lookups on equality predicates.
* :class:`OrderedIndex` — a sorted structure supporting range scans
  (``BETWEEN``, ``<``, ``>=`` ...), implemented over ``bisect`` on a sorted
  key list.

Both map a key (tuple of column values) to the set of row ids holding it, and
both can enforce uniqueness.  NULL-containing keys are not indexed (SQL
semantics: NULL never equals anything, so it can never be found by an
equality probe and never conflicts with a unique constraint).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from repro.errors import StorageError, UniqueViolationError

__all__ = ["Key", "HashIndex", "OrderedIndex", "make_index"]

#: An index key is the tuple of indexed column values for one row.
Key = tuple[Any, ...]


def _has_null(key: Key) -> bool:
    return any(part is None for part in key)


class _BaseIndex:
    """Shared bookkeeping for both index flavours."""

    def __init__(self, name: str, unique: bool) -> None:
        self.name = name
        self.unique = unique
        self._entries: dict[Key, set[int]] = {}

    def __len__(self) -> int:
        return sum(len(rowids) for rowids in self._entries.values())

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def insert(self, key: Key, rowid: int) -> None:
        """Register ``rowid`` under ``key``; enforces uniqueness."""
        if _has_null(key):
            return
        rowids = self._entries.get(key)
        if rowids is None:
            self._entries[key] = {rowid}
            self._key_added(key)
            return
        if self.unique:
            raise UniqueViolationError(
                f"duplicate key {key!r} in unique index {self.name!r}"
            )
        rowids.add(rowid)

    def remove(self, key: Key, rowid: int) -> None:
        """Remove the ``(key, rowid)`` entry; raises if it is not present."""
        if _has_null(key):
            return
        rowids = self._entries.get(key)
        if rowids is None or rowid not in rowids:
            raise StorageError(
                f"index {self.name!r} has no entry ({key!r}, rowid={rowid})"
            )
        rowids.discard(rowid)
        if not rowids:
            del self._entries[key]
            self._key_removed(key)

    def lookup(self, key: Key) -> frozenset[int]:
        """Row ids holding exactly ``key`` (empty for NULL-containing keys)."""
        if _has_null(key):
            return frozenset()
        return frozenset(self._entries.get(key, ()))

    def entries(self) -> dict[Key, set[int]]:
        """The live ``key -> rowids`` mapping itself.

        The compiled executor probes through this to skip the per-lookup
        frozenset copy on hot join/point-lookup paths (callers must treat
        it as read-only, and must handle NULL-containing keys themselves —
        such keys are never stored).
        """
        return self._entries

    def would_violate(self, key: Key) -> bool:
        """Whether inserting ``key`` would break a unique constraint."""
        return self.unique and not _has_null(key) and key in self._entries

    def keys(self) -> Iterator[Key]:
        return iter(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    # hooks for the ordered subclass -----------------------------------

    def _key_added(self, key: Key) -> None:
        pass

    def _key_removed(self, key: Key) -> None:
        pass


class HashIndex(_BaseIndex):
    """Equality-only index (dict-backed)."""

    ordered = False


class OrderedIndex(_BaseIndex):
    """Index that additionally supports range scans in key order."""

    ordered = True

    def __init__(self, name: str, unique: bool) -> None:
        super().__init__(name, unique)
        self._sorted_keys: list[Key] = []

    def _key_added(self, key: Key) -> None:
        bisect.insort(self._sorted_keys, key)

    def _key_removed(self, key: Key) -> None:
        pos = bisect.bisect_left(self._sorted_keys, key)
        if pos < len(self._sorted_keys) and self._sorted_keys[pos] == key:
            del self._sorted_keys[pos]

    def clear(self) -> None:
        super().clear()
        self._sorted_keys.clear()

    def range_scan(
        self,
        low: Key | None = None,
        high: Key | None = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[Key, frozenset[int]]]:
        """Yield ``(key, rowids)`` for keys in ``[low, high]`` in key order.

        ``None`` bounds are open on that side.  Exclusivity is controlled per
        bound, so all four of ``<, <=, >, >=`` map onto one scan.
        """
        if low is None:
            start = 0
        elif low_inclusive:
            start = bisect.bisect_left(self._sorted_keys, low)
        else:
            start = bisect.bisect_right(self._sorted_keys, low)

        if high is None:
            stop = len(self._sorted_keys)
        elif high_inclusive:
            stop = bisect.bisect_right(self._sorted_keys, high)
        else:
            stop = bisect.bisect_left(self._sorted_keys, high)

        for pos in range(start, stop):
            key = self._sorted_keys[pos]
            yield key, frozenset(self._entries[key])


def make_index(name: str, *, unique: bool, ordered: bool) -> _BaseIndex:
    """Factory used by the table layer and DDL execution."""
    if ordered:
        return OrderedIndex(name, unique)
    return HashIndex(name, unique)

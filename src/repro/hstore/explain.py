"""EXPLAIN: human-readable physical plan rendering.

H-Store pre-plans every stored-procedure statement at deployment; this
module renders those plans so a developer can verify access-path choices
(index vs. sequential scan, join strategy) without reading planner
internals.  Exposed as ``engine.explain(sql)`` and
``engine.explain_procedure(name)``.
"""

from __future__ import annotations

from repro.hstore.planner import (
    AccessPath,
    DeletePlan,
    IndexEqScan,
    IndexRangeScan,
    InsertPlan,
    Plan,
    SelectPlan,
    SeqScan,
    UpdatePlan,
)

__all__ = ["explain_plan"]


def _describe_access(access: AccessPath) -> str:
    target = access.table
    if access.alias != access.table:
        target = f"{access.table} AS {access.alias}"
    if isinstance(access, SeqScan):
        return f"SeqScan({target})"
    if isinstance(access, IndexEqScan):
        keys = ", ".join(expr.sql() for expr in access.key_exprs)
        return f"IndexEqScan({target} VIA {access.index} ON [{keys}])"
    if isinstance(access, IndexRangeScan):
        low = access.low.sql() if access.low is not None else "-inf"
        high = access.high.sql() if access.high is not None else "+inf"
        left = "[" if access.low_inclusive else "("
        right = "]" if access.high_inclusive else ")"
        return (
            f"IndexRangeScan({target} VIA {access.index} "
            f"RANGE {left}{low}, {high}{right})"
        )
    return f"{type(access).__name__}({target})"  # pragma: no cover


def _mode_line(plan: Plan, indent: str) -> list[str]:
    """``mode: vector`` when the compiled plan carries batch artifacts.

    The annotation is best-effort truth: ``vector`` means the executor will
    *attempt* the columnar path for this statement (it still falls back
    row-at-a-time if a batch evaluation raises); ``row`` covers everything
    else, including uncompiled (interpreter) plans.
    """
    compiled = getattr(plan, "compiled", None)
    vector = getattr(compiled, "vector", None) is not None
    return [f"{indent}mode: {'vector' if vector else 'row'}"]


def _embedded_subplans(plan: SelectPlan) -> list:
    """Planned subquery nodes reachable from the plan's expressions."""
    from repro.hstore.expression import (
        PlannedExists,
        PlannedInSubquery,
        PlannedScalarSubquery,
        walk,
    )

    expressions = list(plan.post_exprs)
    if plan.where is not None:
        expressions.append(plan.where)
    if plan.post_having is not None:
        expressions.append(plan.post_having)
    for step in plan.joins:
        if step.on is not None:
            expressions.append(step.on)
    found = []
    for expression in expressions:
        for node in walk(expression):
            if isinstance(
                node, (PlannedInSubquery, PlannedExists, PlannedScalarSubquery)
            ):
                found.append(node)
    return found


def _explain_select(plan: SelectPlan, indent: str) -> list[str]:
    lines = [f"{indent}SELECT"]
    inner = indent + "  "
    lines.append(f"{inner}scan: {_describe_access(plan.access)}")
    lines.extend(_mode_line(plan, inner))
    for step in plan.joins:
        on = f" ON {step.on.sql()}" if step.on is not None else ""
        kind = "left join" if step.left_outer else "join"
        lines.append(f"{inner}{kind}: {_describe_access(step.access)}{on}")
    if plan.where is not None:
        lines.append(f"{inner}filter: {plan.where.sql()}")
    if plan.grouped:
        group = ", ".join(expr.sql() for expr in plan.group_exprs) or "<global>"
        aggs = ", ".join(agg.sql() for agg in plan.aggregates)
        lines.append(f"{inner}aggregate: group by {group} computing [{aggs}]")
        if plan.post_having is not None:
            lines.append(f"{inner}having: {plan.post_having.sql()}")
    projections = ", ".join(
        f"{expr.sql()} AS {name}"
        for expr, name in zip(plan.output_exprs, plan.output_names)
    )
    lines.append(f"{inner}project: {projections}")
    if plan.distinct:
        lines.append(f"{inner}distinct")
    if plan.order_by:
        order = ", ".join(
            f"{expr.sql()} {'ASC' if ascending else 'DESC'}"
            for expr, ascending in plan.order_by
        )
        lines.append(f"{inner}sort: {order}")
    if plan.limit is not None or plan.offset is not None:
        lines.append(
            f"{inner}limit: {plan.limit} offset: {plan.offset or 0}"
        )
    for index, node in enumerate(_embedded_subplans(plan)):
        correlated = (
            f", correlated on {len(node.outer_offsets)} outer column(s)"
            if node.outer_offsets
            else ""
        )
        lines.append(
            f"{inner}subquery #{index + 1} "
            f"({type(node).__name__.replace('Planned', '').lower()}{correlated}):"
        )
        lines.extend(_explain_select(node.plan, inner + "  "))
    return lines


def explain_plan(plan: Plan, indent: str = "") -> str:
    """Render one physical plan as an indented text tree."""
    if isinstance(plan, SelectPlan):
        return "\n".join(_explain_select(plan, indent))
    if isinstance(plan, InsertPlan):
        lines = [f"{indent}INSERT INTO {plan.table}"]
        if plan.select is not None:
            lines.append(f"{indent}  from query:")
            lines.extend(_explain_select(plan.select, indent + "    "))
        else:
            lines.append(f"{indent}  values: {len(plan.rows)} row(s)")
        return "\n".join(lines)
    if isinstance(plan, UpdatePlan):
        lines = [f"{indent}UPDATE {plan.table}"]
        lines.append(f"{indent}  scan: {_describe_access(plan.access)}")
        lines.extend(_mode_line(plan, indent + "  "))
        if plan.where is not None:
            lines.append(f"{indent}  filter: {plan.where.sql()}")
        sets = ", ".join(
            f"col#{offset} = {expr.sql()}" for offset, expr in plan.assignments
        )
        lines.append(f"{indent}  set: {sets}")
        return "\n".join(lines)
    if isinstance(plan, DeletePlan):
        lines = [f"{indent}DELETE FROM {plan.table}"]
        lines.append(f"{indent}  scan: {_describe_access(plan.access)}")
        lines.extend(_mode_line(plan, indent + "  "))
        if plan.where is not None:
            lines.append(f"{indent}  filter: {plan.where.sql()}")
        return "\n".join(lines)
    return f"{indent}{type(plan).__name__}"

"""Transaction contexts and undo logging.

H-Store runs transactions serially per partition, so no locks or latches are
needed; atomicity comes from an in-memory undo log.  Every mutation the EE
applies is recorded here as a logical undo record; abort walks the records in
reverse and restores the before-images.

A :class:`TransactionContext` is bound to one partition's execution engine —
the single-sited case the paper demonstrates.  Multi-partition transactions
are built from one context per touched partition (see
:mod:`repro.hstore.engine`), which stays atomic because the engine holds all
partitions for the duration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import NoActiveTransactionError, TransactionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hstore.executor import ExecutionEngine

__all__ = ["TxnState", "UndoKind", "UndoRecord", "TransactionContext"]


class TxnState(enum.Enum):
    ACTIVE = "ACTIVE"
    COMMITTED = "COMMITTED"
    ABORTED = "ABORTED"


class UndoKind(enum.Enum):
    INSERT = "INSERT"
    DELETE = "DELETE"
    UPDATE = "UPDATE"


@dataclass(frozen=True)
class UndoRecord:
    kind: UndoKind
    table: str
    rowid: int
    before: tuple[Any, ...] | None = None


@dataclass
class TransactionContext:
    """State of one in-flight transaction on one partition."""

    txn_id: int
    ee: "ExecutionEngine"
    procedure_name: str = ""
    state: TxnState = TxnState.ACTIVE
    undo_log: list[UndoRecord] = field(default_factory=list)
    #: arbitrary per-transaction scratch used by the streaming layer
    notes: dict[str, Any] = field(default_factory=dict)

    # -- undo recording -----------------------------------------------------

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise NoActiveTransactionError(
                f"transaction {self.txn_id} is {self.state.value}"
            )

    def record_insert(self, table: str, rowid: int) -> None:
        self._require_active()
        self.undo_log.append(UndoRecord(UndoKind.INSERT, table, rowid))

    def record_delete(
        self, table: str, rowid: int, before: tuple[Any, ...]
    ) -> None:
        self._require_active()
        self.undo_log.append(UndoRecord(UndoKind.DELETE, table, rowid, before))

    def record_update(
        self, table: str, rowid: int, before: tuple[Any, ...]
    ) -> None:
        self._require_active()
        self.undo_log.append(UndoRecord(UndoKind.UPDATE, table, rowid, before))

    # -- lifecycle ---------------------------------------------------------

    def commit(self) -> None:
        self._require_active()
        self.state = TxnState.COMMITTED
        self.undo_log.clear()

    def abort(self) -> None:
        """Undo every recorded mutation (reverse order) and mark aborted."""
        self._require_active()
        for record in reversed(self.undo_log):
            table = self.ee.table(record.table)
            if record.kind is UndoKind.INSERT:
                table.delete(record.rowid)
            elif record.kind is UndoKind.DELETE:
                if record.before is None:  # pragma: no cover - defensive
                    raise TransactionError("delete undo record lacks before-image")
                table.insert_with_rowid(record.rowid, record.before)
            else:  # UPDATE
                if record.before is None:  # pragma: no cover - defensive
                    raise TransactionError("update undo record lacks before-image")
                table.update(record.rowid, record.before)
        self.undo_log.clear()
        self.state = TxnState.ABORTED

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

"""Transaction-consistent snapshots.

H-Store pairs command logging with periodic snapshots so recovery replays a
bounded log suffix.  Because transactions execute serially per partition, a
snapshot taken between transactions is trivially transaction-consistent.

Snapshots here are deep copies of every partition's table state (rows only —
indexes are rebuilt on load) plus any extra state the streaming layer
registers (stream cursors, window metadata), standing in for H-Store's
checkpoint files on disk.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

from repro.errors import RecoveryError

__all__ = ["Snapshot", "SnapshotStore"]


@dataclass(frozen=True)
class Snapshot:
    """One transaction-consistent checkpoint."""

    snapshot_id: int
    #: log position the snapshot covers: replay starts at this LSN
    through_lsn: int
    logical_time: int
    #: partition id → ExecutionEngine.dump_state() payload
    partition_state: dict[int, dict[str, Any]]
    #: opaque extra state (the streaming layer stores cursors/windows here)
    extra: dict[str, Any] = field(default_factory=dict)


class SnapshotStore:
    """Holds the snapshots "on disk"; only the newest matters for recovery."""

    def __init__(self) -> None:
        self._snapshots: list[Snapshot] = []
        self._next_id = 0

    def take(
        self,
        through_lsn: int,
        logical_time: int,
        partition_state: dict[int, dict[str, Any]],
        extra: dict[str, Any] | None = None,
    ) -> Snapshot:
        snapshot = Snapshot(
            snapshot_id=self._next_id,
            through_lsn=through_lsn,
            logical_time=logical_time,
            partition_state=copy.deepcopy(partition_state),
            extra=copy.deepcopy(extra or {}),
        )
        self._next_id += 1
        self._snapshots.append(snapshot)
        return snapshot

    @property
    def latest(self) -> Snapshot | None:
        return self._snapshots[-1] if self._snapshots else None

    def adopt(self, snapshot: Snapshot) -> None:
        """Install a snapshot loaded from disk as the latest checkpoint."""
        self._snapshots.append(snapshot)
        self._next_id = max(self._next_id, snapshot.snapshot_id + 1)

    def __len__(self) -> int:
        return len(self._snapshots)

    def require_latest(self) -> Snapshot:
        snapshot = self.latest
        if snapshot is None:
            raise RecoveryError("no snapshot available")
        return snapshot

    def discard_latest(self) -> Snapshot:
        """Drop the newest checkpoint (it was found damaged) and return it.

        Recovery then falls back to the previous snapshot — or to a full
        log replay if none remain — mirroring what the file-backed
        :meth:`~repro.hstore.durability.DurabilityDirectory.scan_snapshots`
        does when a snapshot file fails its checksum.
        """
        if not self._snapshots:
            raise RecoveryError("no snapshot to discard")
        return self._snapshots.pop()

    def prune(self, keep: int = 1) -> int:
        """Drop all but the newest ``keep`` snapshots; returns count dropped."""
        if keep < 1:
            raise RecoveryError("must keep at least one snapshot")
        dropped = max(0, len(self._snapshots) - keep)
        self._snapshots = self._snapshots[-keep:]
        return dropped

"""Database catalog: schemas, tables, indexes, streams and windows.

The catalog is the authoritative registry of every named object in a
database.  H-Store objects are tables and indexes; S-Store adds streams
(tables with hidden, garbage-collected state) and windows (finite chunks of
state over streams).  The streaming layer registers its objects through the
same catalog so that "H-Store's in-memory tables are used for representing
all states including streams and windows" (paper §2, *Uniform State
Management*).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import (
    CatalogError,
    DuplicateObjectError,
    UnknownObjectError,
)
from repro.hstore.types import SqlType

__all__ = ["Column", "Schema", "TableKind", "TableEntry", "IndexEntry", "Catalog"]


@dataclass(frozen=True)
class Column:
    """One column of a schema."""

    name: str
    sql_type: SqlType
    nullable: bool = True
    default: Any = None

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("column name must be non-empty")


class Schema:
    """An ordered, named collection of columns.

    Column names are case-insensitive (normalized to lower case), matching
    common SQL behaviour and keeping the parser simple.
    """

    def __init__(self, columns: list[Column]) -> None:
        if not columns:
            raise CatalogError("a schema requires at least one column")
        normalized = [
            Column(col.name.lower(), col.sql_type, col.nullable, col.default)
            for col in columns
        ]
        names = [col.name for col in normalized]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in schema: {names}")
        self._columns = normalized
        self._offsets = {col.name: i for i, col in enumerate(normalized)}

    @property
    def columns(self) -> list[Column]:
        return list(self._columns)

    @property
    def column_names(self) -> list[str]:
        return [col.name for col in self._columns]

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def has_column(self, name: str) -> bool:
        return name.lower() in self._offsets

    def offset_of(self, name: str) -> int:
        """Positional index of a column; raises :class:`UnknownObjectError`."""
        try:
            return self._offsets[name.lower()]
        except KeyError:
            raise UnknownObjectError(
                f"no column {name!r}; columns are {self.column_names}"
            ) from None

    def column(self, name: str) -> Column:
        return self._columns[self.offset_of(name)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{c.name} {c.sql_type}" for c in self._columns)
        return f"Schema({cols})"


class TableKind(enum.Enum):
    """What role a stored table plays.

    ``TABLE``   — a regular persistent OLTP table.
    ``STREAM``  — hidden stream state: append-only from the application's
                  view, garbage-collected once every consumer has read past
                  a tuple.
    ``WINDOW``  — window state: a finite chunk over a stream, owned by one
                  stored procedure (scoped access).
    """

    TABLE = "TABLE"
    STREAM = "STREAM"
    WINDOW = "WINDOW"


@dataclass
class TableEntry:
    """Catalog entry for a table-like object."""

    name: str
    schema: Schema
    kind: TableKind = TableKind.TABLE
    primary_key: tuple[str, ...] = ()
    partition_column: str | None = None
    index_names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.name = self.name.lower()
        self.primary_key = tuple(col.lower() for col in self.primary_key)
        for col in self.primary_key:
            if not self.schema.has_column(col):
                raise CatalogError(f"primary key column {col!r} not in {self.name}")
        if self.partition_column is not None:
            self.partition_column = self.partition_column.lower()
            if not self.schema.has_column(self.partition_column):
                raise CatalogError(
                    f"partition column {self.partition_column!r} not in {self.name}"
                )


@dataclass
class IndexEntry:
    """Catalog entry for a secondary index."""

    name: str
    table_name: str
    column_names: tuple[str, ...]
    unique: bool = False
    ordered: bool = False

    def __post_init__(self) -> None:
        self.name = self.name.lower()
        self.table_name = self.table_name.lower()
        self.column_names = tuple(col.lower() for col in self.column_names)
        if not self.column_names:
            raise CatalogError("an index requires at least one column")


class Catalog:
    """All named objects of one database."""

    def __init__(self) -> None:
        self._tables: dict[str, TableEntry] = {}
        self._indexes: dict[str, IndexEntry] = {}
        #: monotonically increasing schema version; every DDL mutation bumps
        #: it, which is what invalidates cached ad-hoc plans (the engine's
        #: PlanCache keys entries by the version they were planned under)
        self.version = 0

    def bump_version(self) -> int:
        """Mark a schema change; cached plans from before are now stale."""
        self.version += 1
        return self.version

    # -- tables ------------------------------------------------------------

    def add_table(self, entry: TableEntry) -> TableEntry:
        if entry.name in self._tables:
            raise DuplicateObjectError(f"table {entry.name!r} already exists")
        self._tables[entry.name] = entry
        self.bump_version()
        return entry

    def drop_table(self, name: str) -> None:
        entry = self.table(name)
        for index_name in list(entry.index_names):
            self._indexes.pop(index_name, None)
        del self._tables[entry.name]
        self.bump_version()

    def table(self, name: str) -> TableEntry:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise UnknownObjectError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self, kind: TableKind | None = None) -> list[TableEntry]:
        entries = self._tables.values()
        if kind is None:
            return list(entries)
        return [entry for entry in entries if entry.kind is kind]

    # -- indexes -----------------------------------------------------------

    def add_index(self, entry: IndexEntry) -> IndexEntry:
        if entry.name in self._indexes:
            raise DuplicateObjectError(f"index {entry.name!r} already exists")
        table = self.table(entry.table_name)
        for col in entry.column_names:
            if not table.schema.has_column(col):
                raise CatalogError(
                    f"index column {col!r} not in table {table.name!r}"
                )
        self._indexes[entry.name] = entry
        table.index_names.append(entry.name)
        self.bump_version()
        return entry

    def index(self, name: str) -> IndexEntry:
        try:
            return self._indexes[name.lower()]
        except KeyError:
            raise UnknownObjectError(f"no index named {name!r}") from None

    def drop_index(self, name: str) -> IndexEntry:
        entry = self.index(name)
        del self._indexes[entry.name]
        table = self._tables.get(entry.table_name)
        if table is not None and entry.name in table.index_names:
            table.index_names.remove(entry.name)
        self.bump_version()
        return entry

    def indexes_on(self, table_name: str) -> list[IndexEntry]:
        table = self.table(table_name)
        return [self._indexes[name] for name in table.index_names]

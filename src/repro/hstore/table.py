"""In-memory tables: the storage half of the execution engine.

A :class:`Table` stores typed tuples keyed by an internal, monotonically
increasing row id.  Row ids double as *insertion-order* markers, which the
streaming layer relies on: stream state is ordered by arrival, and windows
expire tuples in arrival order.

Constraint enforcement (primary key, unique secondary indexes) happens here,
*before* any mutation is applied, so a violating statement leaves no trace
even without consulting the undo log.

The row dict is insertion-ordered, and ordinary inserts allocate ascending
rowids — so dict order *is* rowid order except after a txn-undo
``insert_with_rowid`` re-adds a row below the high-water mark.  Scans track
that with ``_rows_sorted``: while the flag holds, ``scan``/``rowids``/
``rows`` stream the dict directly (no O(n log n) re-sort per scan); when an
undo breaks it, the next read rebuilds the dict sorted once and the flag
heals.  The same invariant is what lets the vectorized executor align a
selection mask computed over :class:`~repro.hstore.columnar.ColumnStore`
vectors with ``storage().values()``.

The column store itself (:meth:`columnar_view`) is a lazily-built mirror:
nothing is allocated until the first columnar scan, after which every
mutation funnels through to it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.errors import PrimaryKeyViolationError, StorageError, UniqueViolationError
from repro.hstore.catalog import Schema, TableEntry, TableKind
from repro.hstore.columnar import ColumnStore
from repro.hstore.index import Key, make_index, _BaseIndex
from repro.hstore.types import coerce_value

__all__ = ["Table", "Row"]

#: Stored rows are immutable tuples of column values.
Row = tuple[Any, ...]


class Table:
    """One in-memory table plus its indexes."""

    def __init__(self, entry: TableEntry) -> None:
        self.entry = entry
        self.name = entry.name
        self.schema: Schema = entry.schema
        self._rows: dict[int, Row] = {}
        self._next_rowid = 0
        self._rows_sorted = True
        self._tail_rowid = -1
        self._colstore: ColumnStore | None = None
        self._indexes: dict[str, _BaseIndex] = {}
        self._index_offsets: dict[str, tuple[int, ...]] = {}
        self._pk_index: _BaseIndex | None = None
        if entry.primary_key:
            offsets = tuple(self.schema.offset_of(col) for col in entry.primary_key)
            self._pk_index = make_index(f"{self.name}__pk", unique=True, ordered=False)
            self._register_index(self._pk_index, offsets)

    # -- introspection -------------------------------------------------

    @property
    def kind(self) -> TableKind:
        return self.entry.kind

    def __len__(self) -> int:
        return len(self._rows)

    def row_count(self) -> int:
        return len(self._rows)

    def _ensure_sorted(self) -> None:
        """Heal insertion order after a txn-undo re-insert (rare)."""
        if not self._rows_sorted:
            self._rows = dict(sorted(self._rows.items()))
            self._rows_sorted = True

    def rowids(self) -> list[int]:
        """All live row ids in insertion order."""
        self._ensure_sorted()
        return list(self._rows)

    def get(self, rowid: int) -> Row:
        try:
            return self._rows[rowid]
        except KeyError:
            raise StorageError(f"table {self.name!r} has no row {rowid}") from None

    def has_rowid(self, rowid: int) -> bool:
        return rowid in self._rows

    def scan(self) -> Iterator[tuple[int, Row]]:
        """Yield ``(rowid, row)`` in insertion order."""
        self._ensure_sorted()
        yield from self._rows.items()

    def storage(self) -> dict[int, Row]:
        """The live ``rowid -> row`` mapping itself, in rowid order.

        The compiled executor reads through this to skip the per-row
        method-call + exception machinery of :meth:`get` on scans it has
        already validated.  Callers must treat it as read-only.
        """
        self._ensure_sorted()
        return self._rows

    def rows(self) -> list[Row]:
        """All rows in insertion order (convenience for tests/apps)."""
        self._ensure_sorted()
        return list(self._rows.values())

    # -- columnar mirror -------------------------------------------------

    def columnar_view(self) -> ColumnStore:
        """Dense, rowid-ascending column vectors over the live rows.

        Built on first use (pure-OLTP tables never pay for the mirror);
        afterwards kept in sync by the mutation funnel and re-compacted
        lazily by :meth:`ColumnStore.view`.
        """
        colstore = self._colstore
        if colstore is None:
            colstore = self._colstore = ColumnStore(self.schema)
            colstore.rebuild(self.scan())
        return colstore.view()

    # -- index plumbing --------------------------------------------------

    def _register_index(self, index: _BaseIndex, offsets: tuple[int, ...]) -> None:
        self._indexes[index.name] = index
        self._index_offsets[index.name] = offsets
        for rowid, row in self._rows.items():
            index.insert(self._key_for(offsets, row), rowid)

    def add_index(
        self,
        name: str,
        column_names: tuple[str, ...],
        *,
        unique: bool = False,
        ordered: bool = False,
    ) -> _BaseIndex:
        """Create (and backfill) a secondary index."""
        offsets = tuple(self.schema.offset_of(col) for col in column_names)
        index = make_index(name, unique=unique, ordered=ordered)
        self._register_index(index, offsets)
        return index

    def index(self, name: str) -> _BaseIndex:
        try:
            return self._indexes[name.lower()]
        except KeyError:
            raise StorageError(f"table {self.name!r} has no index {name!r}") from None

    def drop_index(self, name: str) -> None:
        """Remove a secondary index (the primary-key index cannot go)."""
        index = self.index(name)
        if index is self._pk_index:
            raise StorageError(f"cannot drop the primary-key index of {self.name!r}")
        del self._indexes[index.name]
        del self._index_offsets[index.name]

    def indexes(self) -> dict[str, _BaseIndex]:
        return dict(self._indexes)

    def index_offsets(self, name: str) -> tuple[int, ...]:
        return self._index_offsets[name.lower()]

    @staticmethod
    def _key_for(offsets: tuple[int, ...], row: Row) -> Key:
        return tuple(row[offset] for offset in offsets)

    # -- validation -------------------------------------------------------

    def validate_row(self, values: list[Any] | tuple[Any, ...]) -> Row:
        """Coerce a full row of values against the schema; returns the tuple."""
        if len(values) != len(self.schema):
            raise StorageError(
                f"table {self.name!r} expects {len(self.schema)} values, "
                f"got {len(values)}"
            )
        coerced = [
            coerce_value(value, column.sql_type, nullable=column.nullable)
            for value, column in zip(values, self.schema)
        ]
        return tuple(coerced)

    # -- mutation ---------------------------------------------------------

    def _check_unique(self, row: Row) -> None:
        """Raise if inserting ``row`` would violate any unique index."""
        for name, index in self._indexes.items():
            key = self._key_for(self._index_offsets[name], row)
            if index.would_violate(key):
                if index is self._pk_index:
                    raise PrimaryKeyViolationError(
                        f"duplicate primary key {key!r} in table {self.name!r}"
                    )
                raise UniqueViolationError(
                    f"duplicate key {key!r} in unique index {name!r}"
                )

    def _store(self, rowid: int, row: Row) -> None:
        """Append a validated, uniqueness-checked row (no index writes)."""
        self._rows[rowid] = row
        if rowid < self._tail_rowid:
            self._rows_sorted = False
        else:
            self._tail_rowid = rowid
        if self._colstore is not None:
            self._colstore.append(rowid, row)

    def insert(self, values: list[Any] | tuple[Any, ...]) -> int:
        """Validate and insert a row; returns the new rowid.

        Raises :class:`PrimaryKeyViolationError` /
        :class:`UniqueViolationError` without mutating anything.
        """
        row = self.validate_row(values)
        # Check all uniqueness constraints before touching any structure.
        self._check_unique(row)
        rowid = self._next_rowid
        self._next_rowid += 1
        self._store(rowid, row)
        for name, index in self._indexes.items():
            index.insert(self._key_for(self._index_offsets[name], row), rowid)
        return rowid

    def insert_many(
        self, rows: list[list[Any] | tuple[Any, ...]]
    ) -> list[int]:
        """Bulk insert: one validation pass, one uniqueness pre-pass, one
        index batch.  Atomic — a violation anywhere leaves the table
        untouched, raising the same error the single-row path would have
        raised for the first offending row.
        """
        if not rows:
            return []
        validated = [self.validate_row(values) for values in rows]
        # Uniqueness pre-pass: against the live indexes AND against keys
        # staged earlier in this same batch (NULL-containing keys are
        # never indexed, so they cannot collide).
        unique_offsets = [
            (name, index, self._index_offsets[name])
            for name, index in self._indexes.items()
            if index.unique
        ]
        staged: dict[str, set[Key]] = {name: set() for name, _, _ in unique_offsets}
        for row in validated:
            for name, index, offsets in unique_offsets:
                key = self._key_for(offsets, row)
                if index.would_violate(key) or (
                    None not in key and key in staged[name]
                ):
                    if index is self._pk_index:
                        raise PrimaryKeyViolationError(
                            f"duplicate primary key {key!r} in table {self.name!r}"
                        )
                    raise UniqueViolationError(
                        f"duplicate key {key!r} in unique index {name!r}"
                    )
                if None not in key:
                    staged[name].add(key)
        first = self._next_rowid
        self._next_rowid = first + len(validated)
        rowids = list(range(first, self._next_rowid))
        for rowid, row in zip(rowids, validated):
            self._store(rowid, row)
        for name, index in self._indexes.items():
            offsets = self._index_offsets[name]
            key_for = self._key_for
            insert = index.insert
            for rowid, row in zip(rowids, validated):
                insert(key_for(offsets, row), rowid)
        return rowids

    def insert_with_rowid(self, rowid: int, values: list[Any] | tuple[Any, ...]) -> None:
        """Re-insert a row under a specific rowid (undo of a delete)."""
        if rowid in self._rows:
            raise StorageError(f"rowid {rowid} already live in {self.name!r}")
        row = self.validate_row(values)
        self._store(rowid, row)
        self._next_rowid = max(self._next_rowid, rowid + 1)
        for name, index in self._indexes.items():
            index.insert(self._key_for(self._index_offsets[name], row), rowid)

    def delete(self, rowid: int) -> Row:
        """Delete a row by id; returns the deleted row (for undo logging)."""
        row = self.get(rowid)
        for name, index in self._indexes.items():
            index.remove(self._key_for(self._index_offsets[name], row), rowid)
        del self._rows[rowid]
        if self._colstore is not None:
            self._colstore.remove(rowid)
        return row

    def update(self, rowid: int, new_values: list[Any] | tuple[Any, ...]) -> Row:
        """Replace a row in place; returns the before-image (for undo).

        Uniqueness is re-checked for any index whose key changes.
        """
        old_row = self.get(rowid)
        new_row = self.validate_row(new_values)
        for name, index in self._indexes.items():
            offsets = self._index_offsets[name]
            old_key = self._key_for(offsets, old_row)
            new_key = self._key_for(offsets, new_row)
            if old_key != new_key and index.would_violate(new_key):
                if index is self._pk_index:
                    raise PrimaryKeyViolationError(
                        f"duplicate primary key {new_key!r} in table {self.name!r}"
                    )
                raise UniqueViolationError(
                    f"unique index {name!r} violated by update to {new_key!r}"
                )
        for name, index in self._indexes.items():
            offsets = self._index_offsets[name]
            old_key = self._key_for(offsets, old_row)
            new_key = self._key_for(offsets, new_row)
            if old_key != new_key:
                index.remove(old_key, rowid)
                index.insert(new_key, rowid)
        self._rows[rowid] = new_row
        if self._colstore is not None:
            self._colstore.replace(rowid, new_row)
        return old_row

    def truncate(self) -> int:
        """Remove every row; returns how many were removed."""
        count = len(self._rows)
        self._rows.clear()
        self._rows_sorted = True
        self._tail_rowid = -1
        if self._colstore is not None:
            self._colstore.clear()
        for index in self._indexes.values():
            index.clear()
        return count

    # -- snapshot support ---------------------------------------------------

    def dump_state(self) -> dict[str, Any]:
        """Serializable physical state (rows only; indexes are rebuilt)."""
        return {
            "next_rowid": self._next_rowid,
            "rows": {rowid: list(row) for rowid, row in self._rows.items()},
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore from :meth:`dump_state` output, rebuilding indexes.

        Bulk path: rows land sorted by rowid in one pass, indexes are
        rebuilt index-major, and the columnar mirror (if it exists) is
        reloaded wholesale rather than row-at-a-time.
        """
        self._rows = dict(
            sorted((int(rowid), tuple(row)) for rowid, row in state["rows"].items())
        )
        self._next_rowid = int(state["next_rowid"])
        self._rows_sorted = True
        self._tail_rowid = next(reversed(self._rows), -1)
        if self._colstore is not None:
            self._colstore.rebuild(self._rows.items())
        for name, index in self._indexes.items():
            index.clear()
            offsets = self._index_offsets[name]
            for rowid, row in self._rows.items():
                index.insert(self._key_for(offsets, row), rowid)

    # -- iteration helpers for executor -------------------------------------

    def select_rowids(self, predicate: Callable[[Row], bool]) -> list[int]:
        """Row ids whose rows satisfy ``predicate`` (insertion order)."""
        return [rowid for rowid, row in self.scan() if predicate(row)]

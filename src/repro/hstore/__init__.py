"""``repro.hstore`` — the H-Store substrate.

A from-scratch, single-process reimplementation of the H-Store NewSQL system
[6] that S-Store builds on: main-memory tables with indexes, a SQL
parser/planner/executor (the execution engine), serial per-partition
transactions defined by parameterized stored procedures (the partition
engine), and durability via command logging plus snapshots [7].

Public surface::

    from repro.hstore import (
        HStoreEngine, StoredProcedure, ProcedureContext, ProcedureResult,
        ClientSession, ResultSet, SqlType, LatencyModel, EngineStats,
    )
"""

from repro.hstore.client import ClientSession
from repro.hstore.clock import LogicalClock
from repro.hstore.engine import HStoreEngine
from repro.hstore.executor import ResultSet
from repro.hstore.netsim import LatencyModel, SimulatedCost
from repro.hstore.procedure import ProcedureContext, ProcedureResult, StoredProcedure
from repro.hstore.recovery import RecoveryReport, crash_and_recover
from repro.hstore.stats import EngineStats
from repro.hstore.types import SqlType

__all__ = [
    "ClientSession",
    "LogicalClock",
    "HStoreEngine",
    "ResultSet",
    "LatencyModel",
    "SimulatedCost",
    "ProcedureContext",
    "ProcedureResult",
    "StoredProcedure",
    "RecoveryReport",
    "crash_and_recover",
    "EngineStats",
    "SqlType",
]

"""Logical clock for the engine.

The paper's applications depend on time (1 Hz GPS reports, 15-minute discount
expirations, time-based windows).  Using the wall clock would make runs
nondeterministic and recovery replay impossible, so the engine owns a logical
clock that only moves when explicitly advanced — by workload drivers, by the
ingestion path, or by tests.

The unit is abstract "ticks"; applications decide the mapping (the BikeShare
app uses 1 tick = 1 second so a 1 Hz GPS unit emits one report per tick).
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = ["LogicalClock"]


class LogicalClock:
    """A monotonically non-decreasing logical clock."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ReproError("clock cannot start before tick 0")
        self._now = start

    @property
    def now(self) -> int:
        """The current tick."""
        return self._now

    def advance(self, ticks: int = 1) -> int:
        """Move the clock forward by ``ticks`` (>= 0) and return the new time."""
        if ticks < 0:
            raise ReproError("clock cannot move backwards")
        self._now += ticks
        return self._now

    def advance_to(self, tick: int) -> int:
        """Move the clock forward to ``tick`` (a no-op if already past it)."""
        if tick > self._now:
            self._now = tick
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LogicalClock(now={self._now})"

"""File-backed durability: the command log and snapshots on disk.

The in-memory :class:`~repro.hstore.cmdlog.CommandLog` and
:class:`~repro.hstore.snapshot.SnapshotStore` model the durability
*protocol*; this module adds the actual files, so an engine survives not
just a simulated crash but a full process restart:

* ``<dir>/command.log`` — one JSON object per durable log record,
  append-only, written at group-commit flush time;
* ``<dir>/snapshots/<id>.json`` — one file per checkpoint, wrapped in a
  checksummed envelope so bit rot and torn writes are detected on load.

Usage::

    engine.enable_durability("/var/lib/sstore")   # start persisting
    ...                                            # run workload
    # --- process dies; later, a fresh process: ---
    engine = build_engine_with_same_schema_and_procedures()
    engine.restore_from_disk("/var/lib/sstore")    # snapshot + log replay

JSON is the wire format, so tuples round-trip as lists; every load path in
the engine re-normalizes (rowids via ``int()``, batch rows via ``tuple()``),
which the durability tests verify end to end.

Crash hardening (exercised by :mod:`repro.faults` and ``tests/faults``):

* a *torn* final log record — the file truncated at an arbitrary byte
  offset within the last record, as a mid-append crash leaves it — is
  detected, dropped, and physically truncated away by :meth:`scan_log`,
  with the drop count surfaced through ``RecoveryReport.torn_records``;
* an unreadable or checksum-mismatched snapshot file is skipped and
  recovery falls back to the previous snapshot (paying a longer replay)
  via :meth:`scan_snapshots`;
* corruption anywhere *before* the final log record is not survivable
  tearing but real damage, and still raises :class:`RecoveryError` loudly.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import TYPE_CHECKING, Any

from repro.errors import RecoveryError
from repro.hstore.cmdlog import LogRecord
from repro.hstore.snapshot import Snapshot
from repro.obs.trace import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector

__all__ = ["DurabilityDirectory"]

_LOG_FILE = "command.log"
_SNAPSHOT_DIR = "snapshots"


def _jsonable(value: Any) -> Any:
    """Normalize tuples to lists so the encoder accepts everything."""
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    if isinstance(value, list):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


def _snapshot_body(payload: dict[str, Any]) -> str:
    """Canonical serialization the snapshot checksum is computed over."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


class DurabilityDirectory:
    """One engine's durable storage location."""

    def __init__(
        self, path: str | pathlib.Path, *, fsync_log: bool = False
    ) -> None:
        self.path = pathlib.Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        (self.path / _SNAPSHOT_DIR).mkdir(exist_ok=True)
        #: fault-injection seam for every durable write made through here
        self.fault_injector: "FaultInjector | None" = None
        #: tracing seam; the owning engine swaps in its real tracer
        self.tracer = NULL_TRACER
        #: when set, every log append ends with one fsync — the fixed
        #: per-flush cost that group commit exists to amortize
        self.fsync_log = fsync_log

    # ------------------------------------------------------------------
    # command log
    # ------------------------------------------------------------------

    @property
    def log_path(self) -> pathlib.Path:
        return self.path / _LOG_FILE

    def append_log_records(self, records: list[LogRecord]) -> None:
        """Persist freshly flushed records (called at group-commit time).

        Fault seam ``log.append`` fires once per record, before its bytes
        are written: a ``crash`` loses the record (and the rest of the
        batch), a ``torn_write`` leaves a partial record on disk, an
        ``io_error`` simulates the append syscall failing.
        """
        if not records:
            return
        if self.tracer.enabled:
            with self.tracer.span(
                "log.flush", "disk_append", records=len(records)
            ):
                self._append_log_records(records)
            return
        self._append_log_records(records)

    def _append_log_records(self, records: list[LogRecord]) -> None:
        with self.log_path.open("a", encoding="utf-8") as handle:
            for record in records:
                payload = (
                    json.dumps(
                        {
                            "lsn": record.lsn,
                            "txn_id": record.txn_id,
                            "procedure": record.procedure,
                            "params": _jsonable(record.params),
                            "partition": record.partition,
                            "logical_time": record.logical_time,
                            "meta": _jsonable(record.meta),
                        },
                        separators=(",", ":"),
                    )
                    + "\n"
                )
                if self.fault_injector is not None:
                    self.fault_injector.fire(
                        "log.append",
                        handle=handle,
                        payload=payload,
                        path=self.log_path,
                    )
                handle.write(payload)
            if self.fsync_log:
                handle.flush()
                os.fsync(handle.fileno())

    def scan_log(self, *, repair: bool = True) -> tuple[list[LogRecord], int]:
        """Read the durable log, tolerating a torn trailing record.

        Returns ``(records, torn_records)``.  A final line with no trailing
        newline that fails to parse is exactly what a crash mid-append
        leaves behind; it is dropped (and, with ``repair``, physically
        truncated off the file so later appends start clean).  An
        unparseable line anywhere else — or a *newline-terminated* garbage
        final line, which no torn write can produce — is real corruption
        and raises :class:`RecoveryError`.
        """
        if not self.log_path.exists():
            return [], 0
        raw = self.log_path.read_bytes()
        segments = raw.split(b"\n")
        terminated_tail = segments and segments[-1] == b""
        if terminated_tail:
            segments.pop()

        records: list[LogRecord] = []
        torn = 0
        good_end = 0  # byte offset just past the last intact record
        needs_newline = False
        for index, segment in enumerate(segments):
            is_last = index == len(segments) - 1
            has_newline = terminated_tail or not is_last
            line = segment.decode("utf-8", errors="replace").strip()
            if not line:
                good_end += len(segment) + (1 if has_newline else 0)
                continue
            try:
                payload = json.loads(line)
                record = LogRecord(
                    lsn=int(payload["lsn"]),
                    txn_id=int(payload["txn_id"]),
                    procedure=payload["procedure"],
                    params=tuple(payload["params"]),
                    partition=int(payload["partition"]),
                    logical_time=int(payload["logical_time"]),
                    meta=tuple(
                        (key, value) for key, value in payload.get("meta", [])
                    ),
                )
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                if is_last and not has_newline:
                    torn += 1
                    break
                raise RecoveryError(
                    f"corrupt log record at {self.log_path}:{index + 1}: {exc}"
                ) from exc
            records.append(record)
            good_end += len(segment) + (1 if has_newline else 0)
            needs_newline = not has_newline

        if repair:
            if torn:
                with self.log_path.open("r+b") as handle:
                    handle.truncate(good_end)
            elif needs_newline:
                # the final record is complete but lost its newline to a
                # crash between the payload and the terminator; restore it
                # so the next append does not concatenate onto it
                with self.log_path.open("a", encoding="utf-8") as handle:
                    handle.write("\n")

        records.sort(key=lambda record: record.lsn)
        return records, torn

    def load_log_records(self) -> list[LogRecord]:
        """Read back every durable record, in LSN order (torn tail dropped)."""
        records, _torn = self.scan_log(repair=True)
        return records

    def truncate_log_through(self, lsn: int) -> None:
        """Drop durable records below ``lsn`` (post-snapshot log GC)."""
        kept = [record for record in self.load_log_records() if record.lsn >= lsn]
        self.log_path.write_text("", encoding="utf-8")
        self.append_log_records(kept)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def write_snapshot(self, snapshot: Snapshot) -> pathlib.Path:
        """Persist one checkpoint, checksummed against later corruption.

        Fault seams: ``snapshot.write`` fires after the bytes land (a
        ``crash`` there tears the file, a ``corrupt`` silently damages it,
        an ``io_error`` deletes the never-landed file and raises);
        ``snapshot.fsync`` fires once the file is fully durable.
        """
        target = self.path / _SNAPSHOT_DIR / f"{snapshot.snapshot_id:08d}.json"
        payload = {
            "snapshot_id": snapshot.snapshot_id,
            "through_lsn": snapshot.through_lsn,
            "logical_time": snapshot.logical_time,
            "partition_state": _jsonable(snapshot.partition_state),
            "extra": _jsonable(snapshot.extra),
        }
        body = _snapshot_body(payload)
        envelope = json.dumps(
            {
                "checksum": hashlib.sha256(body.encode("utf-8")).hexdigest(),
                "payload": payload,
            },
            separators=(",", ":"),
        )
        with self.tracer.span(
            "snapshot", "write_file", snapshot_id=snapshot.snapshot_id
        ):
            target.write_text(envelope)
            if self.fault_injector is not None:
                self.fault_injector.fire(
                    "snapshot.write", path=target, data=envelope
                )
                self.fault_injector.fire("snapshot.fsync", path=target)
        return target

    def load_snapshot_file(self, path: pathlib.Path) -> Snapshot:
        """Load and validate one snapshot file.

        Raises :class:`RecoveryError` with a clear message when the file is
        torn, unparseable, incomplete, or fails its checksum — the caller
        (:meth:`scan_snapshots`) falls back to an older checkpoint.
        """
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RecoveryError(f"unreadable snapshot {path.name}: {exc}") from exc
        if not isinstance(data, dict):
            raise RecoveryError(f"malformed snapshot {path.name}: not an object")
        if "payload" in data:
            payload = data["payload"]
            body = _snapshot_body(payload)
            digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
            if digest != data.get("checksum"):
                raise RecoveryError(
                    f"corrupt snapshot {path.name}: checksum mismatch "
                    f"(stored {str(data.get('checksum'))[:12]}…, "
                    f"computed {digest[:12]}…)"
                )
        else:
            # legacy pre-checksum format: the payload is the whole file
            payload = data
        try:
            partition_state = {
                int(partition_id): state
                for partition_id, state in payload["partition_state"].items()
            }
            return Snapshot(
                snapshot_id=int(payload["snapshot_id"]),
                through_lsn=int(payload["through_lsn"]),
                logical_time=int(payload["logical_time"]),
                partition_state=partition_state,
                extra=payload.get("extra", {}),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise RecoveryError(
                f"malformed snapshot {path.name}: {exc}"
            ) from exc

    def scan_snapshots(self) -> tuple[Snapshot | None, list[pathlib.Path]]:
        """Newest *valid* snapshot, plus the invalid files skipped over.

        Walks checkpoints newest-first so a corrupt or torn latest snapshot
        degrades to the previous one (a longer log replay) instead of a
        failed recovery.
        """
        snapshot_dir = self.path / _SNAPSHOT_DIR
        skipped: list[pathlib.Path] = []
        for candidate in sorted(snapshot_dir.glob("*.json"), reverse=True):
            try:
                return self.load_snapshot_file(candidate), skipped
            except RecoveryError:
                skipped.append(candidate)
        return None, skipped

    def load_latest_snapshot(self) -> Snapshot | None:
        snapshot, _skipped = self.scan_snapshots()
        return snapshot

    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Wipe the directory's contents (test helper)."""
        if self.log_path.exists():
            self.log_path.unlink()
        for snapshot_file in (self.path / _SNAPSHOT_DIR).glob("*.json"):
            snapshot_file.unlink()

"""File-backed durability: the command log and snapshots on disk.

The in-memory :class:`~repro.hstore.cmdlog.CommandLog` and
:class:`~repro.hstore.snapshot.SnapshotStore` model the durability
*protocol*; this module adds the actual files, so an engine survives not
just a simulated crash but a full process restart:

* ``<dir>/command.log`` — one JSON object per durable log record,
  append-only, written at group-commit flush time;
* ``<dir>/snapshots/<id>.json`` — one file per checkpoint.

Usage::

    engine.enable_durability("/var/lib/sstore")   # start persisting
    ...                                            # run workload
    # --- process dies; later, a fresh process: ---
    engine = build_engine_with_same_schema_and_procedures()
    engine.restore_from_disk("/var/lib/sstore")    # snapshot + log replay

JSON is the wire format, so tuples round-trip as lists; every load path in
the engine re-normalizes (rowids via ``int()``, batch rows via ``tuple()``),
which the durability tests verify end to end.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.errors import RecoveryError
from repro.hstore.cmdlog import LogRecord
from repro.hstore.snapshot import Snapshot

__all__ = ["DurabilityDirectory"]

_LOG_FILE = "command.log"
_SNAPSHOT_DIR = "snapshots"


def _jsonable(value: Any) -> Any:
    """Normalize tuples to lists so the encoder accepts everything."""
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    if isinstance(value, list):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


class DurabilityDirectory:
    """One engine's durable storage location."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        (self.path / _SNAPSHOT_DIR).mkdir(exist_ok=True)

    # ------------------------------------------------------------------
    # command log
    # ------------------------------------------------------------------

    @property
    def log_path(self) -> pathlib.Path:
        return self.path / _LOG_FILE

    def append_log_records(self, records: list[LogRecord]) -> None:
        """Persist freshly flushed records (called at group-commit time)."""
        if not records:
            return
        with self.log_path.open("a", encoding="utf-8") as handle:
            for record in records:
                handle.write(
                    json.dumps(
                        {
                            "lsn": record.lsn,
                            "txn_id": record.txn_id,
                            "procedure": record.procedure,
                            "params": _jsonable(record.params),
                            "partition": record.partition,
                            "logical_time": record.logical_time,
                            "meta": _jsonable(record.meta),
                        },
                        separators=(",", ":"),
                    )
                )
                handle.write("\n")

    def load_log_records(self) -> list[LogRecord]:
        """Read back every durable record, in LSN order."""
        if not self.log_path.exists():
            return []
        records: list[LogRecord] = []
        with self.log_path.open(encoding="utf-8") as handle:
            for line_number, line in enumerate(handle):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise RecoveryError(
                        f"corrupt log record at {self.log_path}:{line_number + 1}: "
                        f"{exc}"
                    ) from exc
                records.append(
                    LogRecord(
                        lsn=int(payload["lsn"]),
                        txn_id=int(payload["txn_id"]),
                        procedure=payload["procedure"],
                        params=tuple(payload["params"]),
                        partition=int(payload["partition"]),
                        logical_time=int(payload["logical_time"]),
                        meta=tuple(
                            (key, value) for key, value in payload.get("meta", [])
                        ),
                    )
                )
        records.sort(key=lambda record: record.lsn)
        return records

    def truncate_log_through(self, lsn: int) -> None:
        """Drop durable records below ``lsn`` (post-snapshot log GC)."""
        kept = [record for record in self.load_log_records() if record.lsn >= lsn]
        self.log_path.write_text("", encoding="utf-8")
        self.append_log_records(kept)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def write_snapshot(self, snapshot: Snapshot) -> pathlib.Path:
        target = self.path / _SNAPSHOT_DIR / f"{snapshot.snapshot_id:08d}.json"
        payload = {
            "snapshot_id": snapshot.snapshot_id,
            "through_lsn": snapshot.through_lsn,
            "logical_time": snapshot.logical_time,
            "partition_state": _jsonable(snapshot.partition_state),
            "extra": _jsonable(snapshot.extra),
        }
        target.write_text(json.dumps(payload, separators=(",", ":")))
        return target

    def load_latest_snapshot(self) -> Snapshot | None:
        snapshot_dir = self.path / _SNAPSHOT_DIR
        candidates = sorted(snapshot_dir.glob("*.json"))
        if not candidates:
            return None
        payload = json.loads(candidates[-1].read_text())
        partition_state = {
            int(partition_id): state
            for partition_id, state in payload["partition_state"].items()
        }
        return Snapshot(
            snapshot_id=int(payload["snapshot_id"]),
            through_lsn=int(payload["through_lsn"]),
            logical_time=int(payload["logical_time"]),
            partition_state=partition_state,
            extra=payload.get("extra", {}),
        )

    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Wipe the directory's contents (test helper)."""
        if self.log_path.exists():
            self.log_path.unlink()
        for snapshot_file in (self.path / _SNAPSHOT_DIR).glob("*.json"):
            snapshot_file.unlink()

"""Command logging.

H-Store achieves durability with *command logging* [7]: instead of physical
before/after images, the log records the logical command — which stored
procedure ran, with which parameters — and recovery replays the commands
against the latest snapshot.  This is dramatically cheaper at runtime than
ARIES-style logging and is what S-Store's upstream-backup fault tolerance
builds on (the logged commands for border procedures *are* the upstream
backup of the input streams).

The log here is an in-memory append-only list standing in for the log disk;
``group_size`` models group commit (a flush every N records), which benchmark
A3 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import RecoveryError
from repro.hstore.stats import EngineStats
from repro.obs.trace import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector

__all__ = ["LogRecord", "CommandLog"]


@dataclass(frozen=True)
class LogRecord:
    """One committed transaction's logical log entry."""

    lsn: int
    txn_id: int
    procedure: str
    params: tuple[Any, ...]
    partition: int
    logical_time: int
    #: extra payload the streaming layer attaches (batch ids etc.)
    meta: tuple[tuple[str, Any], ...] = ()


class CommandLog:
    """Append-only command log with group commit."""

    def __init__(self, group_size: int = 1, stats: EngineStats | None = None) -> None:
        if group_size < 1:
            raise RecoveryError("group commit size must be >= 1")
        self.group_size = group_size
        self._records: list[LogRecord] = []
        self._pending: list[LogRecord] = []
        self._next_lsn = 0
        self._stats = stats if stats is not None else EngineStats()
        #: called with the flushed records at every flush (file persistence)
        self.on_flush: Callable[[list[LogRecord]], None] | None = None
        #: False = the engine runs without durability: appends are dropped,
        #: so a crash is unrecoverable (and the engine refuses to simulate one)
        self.enabled = True
        #: fault-injection seam for the group-commit flush path
        self.fault_injector: "FaultInjector | None" = None
        #: tracing seam; the owning engine swaps in its real tracer
        self.tracer = NULL_TRACER

    # -- appending -----------------------------------------------------------

    def append(
        self,
        txn_id: int,
        procedure: str,
        params: tuple[Any, ...],
        partition: int,
        logical_time: int,
        meta: dict[str, Any] | None = None,
    ) -> LogRecord | None:
        if not self.enabled:
            return None
        record = LogRecord(
            lsn=self._next_lsn,
            txn_id=txn_id,
            procedure=procedure,
            params=tuple(params),
            partition=partition,
            logical_time=logical_time,
            meta=tuple(sorted((meta or {}).items())),
        )
        self._next_lsn += 1
        self._pending.append(record)
        self._stats.log_records += 1
        if len(self._pending) >= self.group_size:
            self.flush()
        return record

    def flush(self) -> int:
        """Force pending records to the durable log; returns count flushed.

        Fault seam ``log.flush``: a ``crash`` fires before anything reaches
        the durable log (group-commit-pending transactions are the only
        loss); a ``drop_ack`` fires after the write is durable but before
        the flush is acknowledged.
        """
        if not self._pending:
            return 0
        if self.tracer.enabled:
            with self.tracer.span(
                "log.flush", "group_commit", records=len(self._pending)
            ):
                return self._flush_pending()
        return self._flush_pending()

    def _flush_pending(self) -> int:
        if self.fault_injector is not None:
            self.fault_injector.fire("log.flush", stage="pre")
        flushed_records = list(self._pending)
        self._records.extend(self._pending)
        self._pending.clear()
        self._stats.log_flushes += 1
        if self.on_flush is not None:
            self.on_flush(flushed_records)
        if self.fault_injector is not None:
            self.fault_injector.fire("log.flush", stage="post")
        return len(flushed_records)

    def load_records(self, records: list[LogRecord]) -> None:
        """Adopt records read back from disk (restart recovery)."""
        if self._records or self._pending:
            raise RecoveryError("cannot load records into a non-empty log")
        self._records = sorted(records, key=lambda record: record.lsn)
        if self._records:
            self._next_lsn = self._records[-1].lsn + 1

    # -- reading -------------------------------------------------------------

    @property
    def durable_lsn(self) -> int:
        """LSN up to which records are durable (exclusive)."""
        return self._records[-1].lsn + 1 if self._records else 0

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    def records_from(self, lsn: int) -> list[LogRecord]:
        """All durable records with ``record.lsn >= lsn`` in order."""
        return [record for record in self._records if record.lsn >= lsn]

    def all_records(self) -> list[LogRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # -- maintenance -----------------------------------------------------------

    def truncate_through(self, lsn: int) -> int:
        """Drop durable records with ``record.lsn < lsn`` (post-snapshot GC)."""
        before = len(self._records)
        self._records = [record for record in self._records if record.lsn >= lsn]
        return before - len(self._records)

    def lose_pending(self) -> int:
        """Simulate a crash before group commit: un-flushed records are lost."""
        lost = len(self._pending)
        self._pending.clear()
        return lost

"""Recursive-descent SQL parser.

Grammar (the subset the engine executes — everything the Voter and BikeShare
applications and the benchmarks need):

.. code-block:: text

    statement   := select | insert | update | delete | create | ';'?
    create      := CREATE TABLE name '(' column_def (',' column_def)*
                       [',' PRIMARY KEY '(' ident_list ')'] ')'
                       [PARTITION ON ident]
                 | CREATE STREAM name '(' column_def (',' column_def)* ')'
                 | CREATE WINDOW name ON stream (ROWS n | RANGE n) [SLIDE n]
                 | CREATE VIEW name AS select
                 | CREATE [UNIQUE] INDEX name ON table '(' ident_list ')'
                       [USING (HASH | TREE)]
    select      := SELECT select_item (',' select_item)*
                   FROM table_ref (join)* [WHERE expr]
                   [GROUP BY expr_list [HAVING expr]]
                   [ORDER BY order_item (',' order_item)*]
                   [LIMIT int [OFFSET int]]
    insert      := INSERT INTO name ['(' ident_list ')']
                   (VALUES tuple (',' tuple)* | select)
    update      := UPDATE name SET ident '=' expr (',' ident '=' expr)*
                   [WHERE expr]
    delete      := DELETE FROM name [WHERE expr]

Expressions support the usual precedence: OR < AND < NOT < comparison /
IN / BETWEEN / LIKE / IS NULL < additive < multiplicative < unary minus <
atoms (literals, ``?`` parameters, column refs, function calls, aggregates,
parenthesised expressions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SqlSyntaxError
from repro.hstore.catalog import Column
from repro.hstore.expression import (
    AGGREGATE_NAMES,
    AggregateCall,
    Between,
    BinaryOp,
    BooleanOp,
    CaseExpr,
    ColumnRef,
    Comparison,
    Exists,
    Expression,
    FunctionCall,
    InSubquery,
    InList,
    IsNull,
    Like,
    Literal,
    NotOp,
    Parameter,
    ScalarSubquery,
    Star,
    UnaryOp,
)
from repro.hstore.lexer import Token, TokenType, tokenize
from repro.hstore.types import SqlType

__all__ = [
    "parse",
    "Statement",
    "SelectItem",
    "TableRef",
    "Join",
    "OrderItem",
    "SelectStmt",
    "InsertStmt",
    "UpdateStmt",
    "DeleteStmt",
    "CreateTableStmt",
    "CreateStreamStmt",
    "CreateWindowStmt",
    "CreateViewStmt",
    "CreateIndexStmt",
    "DropTableStmt",
    "DropIndexStmt",
    "DropViewStmt",
    "TruncateStmt",
]


# ---------------------------------------------------------------------------
# Statement AST
# ---------------------------------------------------------------------------


class Statement:
    """Base class for parsed statements."""


@dataclass(frozen=True)
class SelectItem:
    expr: Expression
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    table: TableRef
    on: Expression
    #: LEFT OUTER join: unmatched left rows survive with NULL-padded right
    left_outer: bool = False


@dataclass(frozen=True)
class OrderItem:
    expr: Expression
    ascending: bool = True


@dataclass(frozen=True)
class SelectStmt(Statement):
    items: tuple[SelectItem, ...]
    table: TableRef
    joins: tuple[Join, ...] = ()
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False


@dataclass(frozen=True)
class InsertStmt(Statement):
    table: str
    columns: tuple[str, ...] = ()  # empty = full schema order
    rows: tuple[tuple[Expression, ...], ...] = ()
    select: SelectStmt | None = None


@dataclass(frozen=True)
class UpdateStmt(Statement):
    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Expression | None = None


@dataclass(frozen=True)
class DeleteStmt(Statement):
    table: str
    where: Expression | None = None


@dataclass(frozen=True)
class CreateTableStmt(Statement):
    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()
    partition_column: str | None = None


@dataclass(frozen=True)
class CreateStreamStmt(Statement):
    name: str
    columns: tuple[Column, ...]


@dataclass(frozen=True)
class CreateWindowStmt(Statement):
    name: str
    stream: str
    kind: str  # "ROWS" (tuple-based) or "RANGE" (time-based)
    size: int
    slide: int
    #: stored procedure the window is scoped to (None = assign later)
    owner: str | None = None


@dataclass(frozen=True)
class CreateViewStmt(Statement):
    """A delta view: incrementally maintained aggregates over a window."""

    name: str
    select: SelectStmt


@dataclass(frozen=True)
class DropViewStmt(Statement):
    name: str


@dataclass(frozen=True)
class DropTableStmt(Statement):
    name: str


@dataclass(frozen=True)
class DropIndexStmt(Statement):
    name: str


@dataclass(frozen=True)
class TruncateStmt(Statement):
    table: str


@dataclass(frozen=True)
class CreateIndexStmt(Statement):
    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False
    ordered: bool = False


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_TYPE_NAMES = {
    "INT": SqlType.INTEGER,
    "INTEGER": SqlType.INTEGER,
    "BIGINT": SqlType.BIGINT,
    "FLOAT": SqlType.FLOAT,
    "DOUBLE": SqlType.FLOAT,
    "REAL": SqlType.FLOAT,
    "VARCHAR": SqlType.VARCHAR,
    "TEXT": SqlType.VARCHAR,
    "STRING": SqlType.VARCHAR,
    "BOOLEAN": SqlType.BOOLEAN,
    "BOOL": SqlType.BOOLEAN,
    "TIMESTAMP": SqlType.TIMESTAMP,
}

#: Keywords that terminate an expression / cannot start an operand.
_RESERVED = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "OFFSET", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
    "CREATE", "TABLE", "STREAM", "WINDOW", "INDEX", "PRIMARY", "KEY",
    "JOIN", "ON", "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS",
    "NULL", "TRUE", "FALSE", "AS", "ASC", "DESC", "DISTINCT", "UNIQUE",
    "INNER", "USING", "PARTITION", "ROWS", "RANGE", "SLIDE",
    "CASE", "WHEN", "THEN", "ELSE", "END", "LEFT", "OUTER", "EXISTS",
    "DROP", "TRUNCATE", "VIEW",
}


def parse(sql: str) -> Statement:
    """Parse one SQL statement; raises :class:`SqlSyntaxError` on failure."""
    parser = _Parser(tokenize(sql))
    statement = parser.parse_statement()
    parser.accept_type(TokenType.SEMICOLON)
    parser.expect_type(TokenType.EOF)
    return statement


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._param_count = 0

    # -- token helpers ---------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def accept_type(self, token_type: TokenType) -> Token | None:
        if self.current.type is token_type:
            return self.advance()
        return None

    def expect_type(self, token_type: TokenType) -> Token:
        if self.current.type is token_type:
            return self.advance()
        raise SqlSyntaxError(
            f"expected {token_type.name}, found {self.current.text!r}",
            self.current.position,
        )

    def accept_keyword(self, *keywords: str) -> Token | None:
        token = self.current
        if token.type is TokenType.IDENT and token.upper in keywords:
            return self.advance()
        return None

    def expect_keyword(self, keyword: str) -> Token:
        token = self.accept_keyword(keyword)
        if token is None:
            raise SqlSyntaxError(
                f"expected {keyword}, found {self.current.text!r}",
                self.current.position,
            )
        return token

    def peek_keyword(self, *keywords: str) -> bool:
        token = self.current
        return token.type is TokenType.IDENT and token.upper in keywords

    def expect_ident(self) -> str:
        token = self.current
        if token.type is not TokenType.IDENT:
            raise SqlSyntaxError(
                f"expected identifier, found {token.text!r}", token.position
            )
        if token.upper in _RESERVED:
            raise SqlSyntaxError(
                f"reserved word {token.text!r} cannot be used as identifier",
                token.position,
            )
        return self.advance().text.lower()

    def expect_integer(self) -> int:
        token = self.expect_type(TokenType.INTEGER)
        return int(token.text)

    # -- statements ---------------------------------------------------------

    def parse_statement(self) -> Statement:
        if self.peek_keyword("SELECT"):
            return self.parse_select()
        if self.peek_keyword("INSERT"):
            return self.parse_insert()
        if self.peek_keyword("UPDATE"):
            return self.parse_update()
        if self.peek_keyword("DELETE"):
            return self.parse_delete()
        if self.peek_keyword("CREATE"):
            return self.parse_create()
        if self.peek_keyword("DROP"):
            return self.parse_drop()
        if self.peek_keyword("TRUNCATE"):
            self.expect_keyword("TRUNCATE")
            self.expect_keyword("TABLE")
            return TruncateStmt(self.expect_ident())
        raise SqlSyntaxError(
            f"expected a statement, found {self.current.text!r}",
            self.current.position,
        )

    # SELECT --------------------------------------------------------------

    def parse_select(self) -> SelectStmt:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT") is not None
        items = [self.parse_select_item()]
        while self.accept_type(TokenType.COMMA):
            items.append(self.parse_select_item())

        self.expect_keyword("FROM")
        table = self.parse_table_ref()
        joins: list[Join] = []
        while True:
            left_outer = False
            if self.accept_keyword("JOIN"):
                pass
            elif self.peek_keyword("INNER"):
                self._accept_inner_join()
            elif self.peek_keyword("LEFT"):
                self.expect_keyword("LEFT")
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                left_outer = True
            else:
                break
            join_table = self.parse_table_ref()
            self.expect_keyword("ON")
            joins.append(
                Join(join_table, self.parse_expression(), left_outer=left_outer)
            )

        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()

        group_by: list[Expression] = []
        having = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expression())
            while self.accept_type(TokenType.COMMA):
                group_by.append(self.parse_expression())
            if self.accept_keyword("HAVING"):
                having = self.parse_expression()

        order_by: list[OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept_type(TokenType.COMMA):
                order_by.append(self.parse_order_item())

        limit = offset = None
        if self.accept_keyword("LIMIT"):
            limit = self.expect_integer()
            if self.accept_keyword("OFFSET"):
                offset = self.expect_integer()

        return SelectStmt(
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _accept_inner_join(self) -> bool:
        self.expect_keyword("INNER")
        self.expect_keyword("JOIN")
        return True

    def parse_select_item(self) -> SelectItem:
        if self.current.type is TokenType.OPERATOR and self.current.text == "*":
            self.advance()
            return SelectItem(Star())
        expr = self.parse_expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif (
            self.current.type is TokenType.IDENT
            and self.current.upper not in _RESERVED
        ):
            alias = self.expect_ident()
        return SelectItem(expr, alias)

    def parse_table_ref(self) -> TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif (
            self.current.type is TokenType.IDENT
            and self.current.upper not in _RESERVED
        ):
            alias = self.expect_ident()
        return TableRef(name, alias)

    def parse_order_item(self) -> OrderItem:
        expr = self.parse_expression()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return OrderItem(expr, ascending)

    # INSERT ----------------------------------------------------------------

    def parse_insert(self) -> InsertStmt:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: tuple[str, ...] = ()
        if self.accept_type(TokenType.LPAREN):
            names = [self.expect_ident()]
            while self.accept_type(TokenType.COMMA):
                names.append(self.expect_ident())
            self.expect_type(TokenType.RPAREN)
            columns = tuple(names)
        if self.peek_keyword("SELECT"):
            return InsertStmt(table=table, columns=columns, select=self.parse_select())
        self.expect_keyword("VALUES")
        rows = [self.parse_value_tuple()]
        while self.accept_type(TokenType.COMMA):
            rows.append(self.parse_value_tuple())
        return InsertStmt(table=table, columns=columns, rows=tuple(rows))

    def parse_value_tuple(self) -> tuple[Expression, ...]:
        self.expect_type(TokenType.LPAREN)
        values = [self.parse_expression()]
        while self.accept_type(TokenType.COMMA):
            values.append(self.parse_expression())
        self.expect_type(TokenType.RPAREN)
        return tuple(values)

    # UPDATE ----------------------------------------------------------------

    def parse_update(self) -> UpdateStmt:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = [self.parse_assignment()]
        while self.accept_type(TokenType.COMMA):
            assignments.append(self.parse_assignment())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return UpdateStmt(table=table, assignments=tuple(assignments), where=where)

    def parse_assignment(self) -> tuple[str, Expression]:
        column = self.expect_ident()
        token = self.current
        if token.type is not TokenType.OPERATOR or token.text != "=":
            raise SqlSyntaxError("expected '=' in SET clause", token.position)
        self.advance()
        return column, self.parse_expression()

    # DELETE ----------------------------------------------------------------

    def parse_delete(self) -> DeleteStmt:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return DeleteStmt(table=table, where=where)

    # CREATE ----------------------------------------------------------------

    def parse_create(self) -> Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self.parse_create_table()
        if self.accept_keyword("STREAM"):
            return self.parse_create_stream()
        if self.accept_keyword("WINDOW"):
            return self.parse_create_window()
        if self.accept_keyword("VIEW"):
            return self.parse_create_view()
        unique = self.accept_keyword("UNIQUE") is not None
        if self.accept_keyword("INDEX"):
            return self.parse_create_index(unique)
        raise SqlSyntaxError(
            f"expected TABLE, STREAM, WINDOW, VIEW or INDEX after CREATE, "
            f"found {self.current.text!r}",
            self.current.position,
        )

    def parse_drop(self) -> Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            return DropTableStmt(self.expect_ident())
        if self.accept_keyword("INDEX"):
            return DropIndexStmt(self.expect_ident())
        if self.accept_keyword("VIEW"):
            return DropViewStmt(self.expect_ident())
        raise SqlSyntaxError(
            f"expected TABLE, INDEX or VIEW after DROP, "
            f"found {self.current.text!r}",
            self.current.position,
        )

    def parse_column_defs(self) -> tuple[tuple[Column, ...], tuple[str, ...]]:
        self.expect_type(TokenType.LPAREN)
        columns: list[Column] = []
        primary_key: tuple[str, ...] = ()
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                self.expect_type(TokenType.LPAREN)
                names = [self.expect_ident()]
                while self.accept_type(TokenType.COMMA):
                    names.append(self.expect_ident())
                self.expect_type(TokenType.RPAREN)
                primary_key = tuple(names)
            else:
                columns.append(self.parse_column_def())
            if not self.accept_type(TokenType.COMMA):
                break
        self.expect_type(TokenType.RPAREN)
        return tuple(columns), primary_key

    def parse_column_def(self) -> Column:
        name = self.expect_ident()
        type_token = self.current
        if type_token.type is not TokenType.IDENT:
            raise SqlSyntaxError("expected a type name", type_token.position)
        try:
            sql_type = _TYPE_NAMES[type_token.upper]
        except KeyError:
            raise SqlSyntaxError(
                f"unknown type {type_token.text!r}", type_token.position
            ) from None
        self.advance()
        # VARCHAR(n) — length is parsed and ignored (no length enforcement).
        if self.accept_type(TokenType.LPAREN):
            self.expect_type(TokenType.INTEGER)
            self.expect_type(TokenType.RPAREN)
        nullable = True
        if self.accept_keyword("NOT"):
            self.expect_keyword("NULL")
            nullable = False
        return Column(name, sql_type, nullable=nullable)

    def parse_create_table(self) -> CreateTableStmt:
        name = self.expect_ident()
        columns, primary_key = self.parse_column_defs()
        partition_column = None
        if self.accept_keyword("PARTITION"):
            self.expect_keyword("ON")
            partition_column = self.expect_ident()
        return CreateTableStmt(
            name=name,
            columns=columns,
            primary_key=primary_key,
            partition_column=partition_column,
        )

    def parse_create_stream(self) -> CreateStreamStmt:
        name = self.expect_ident()
        columns, primary_key = self.parse_column_defs()
        if primary_key:
            raise SqlSyntaxError("streams cannot declare a primary key")
        return CreateStreamStmt(name=name, columns=columns)

    def parse_create_window(self) -> CreateWindowStmt:
        name = self.expect_ident()
        self.expect_keyword("ON")
        stream = self.expect_ident()
        if self.accept_keyword("ROWS"):
            kind = "ROWS"
        elif self.accept_keyword("RANGE"):
            kind = "RANGE"
        else:
            raise SqlSyntaxError(
                f"expected ROWS or RANGE, found {self.current.text!r}",
                self.current.position,
            )
        size = self.expect_integer()
        slide = size  # default: tumbling window
        if self.accept_keyword("SLIDE"):
            slide = self.expect_integer()
        owner = None
        if self.accept_keyword("OWNED"):
            self.expect_keyword("BY")
            owner = self.expect_ident()
        return CreateWindowStmt(
            name=name, stream=stream, kind=kind, size=size, slide=slide, owner=owner
        )

    def parse_create_view(self) -> CreateViewStmt:
        name = self.expect_ident()
        self.expect_keyword("AS")
        if not self.peek_keyword("SELECT"):
            raise SqlSyntaxError(
                f"expected SELECT after CREATE VIEW ... AS, "
                f"found {self.current.text!r}",
                self.current.position,
            )
        return CreateViewStmt(name=name, select=self.parse_select())

    def parse_create_index(self, unique: bool) -> CreateIndexStmt:
        name = self.expect_ident()
        self.expect_keyword("ON")
        table = self.expect_ident()
        self.expect_type(TokenType.LPAREN)
        columns = [self.expect_ident()]
        while self.accept_type(TokenType.COMMA):
            columns.append(self.expect_ident())
        self.expect_type(TokenType.RPAREN)
        ordered = False
        if self.accept_keyword("USING"):
            if self.accept_keyword("TREE"):
                ordered = True
            elif self.accept_keyword("HASH"):
                ordered = False
            else:
                raise SqlSyntaxError(
                    f"expected HASH or TREE, found {self.current.text!r}",
                    self.current.position,
                )
        return CreateIndexStmt(
            name=name, table=table, columns=tuple(columns), unique=unique, ordered=ordered
        )

    # -- expressions -------------------------------------------------------

    def parse_expression(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        operands = [self.parse_and()]
        while self.accept_keyword("OR"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("OR", tuple(operands))

    def parse_and(self) -> Expression:
        operands = [self.parse_not()]
        while self.accept_keyword("AND"):
            operands.append(self.parse_not())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("AND", tuple(operands))

    def parse_not(self) -> Expression:
        if self.accept_keyword("NOT"):
            return NotOp(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expression:
        left = self.parse_additive()

        token = self.current
        if token.type is TokenType.OPERATOR and token.text in (
            "=", "<>", "!=", "<", "<=", ">", ">=",
        ):
            self.advance()
            right = self.parse_additive()
            return Comparison(token.text, left, right)

        negated = False
        if self.peek_keyword("NOT"):
            # lookahead: NOT IN / NOT BETWEEN / NOT LIKE
            save = self._pos
            self.advance()
            if self.peek_keyword("IN", "BETWEEN", "LIKE"):
                negated = True
            else:
                self._pos = save
                return left

        if self.accept_keyword("IN"):
            self.expect_type(TokenType.LPAREN)
            if self.peek_keyword("SELECT"):
                select = self.parse_select()
                self.expect_type(TokenType.RPAREN)
                return InSubquery(left, select, negated=negated)
            options = [self.parse_expression()]
            while self.accept_type(TokenType.COMMA):
                options.append(self.parse_expression())
            self.expect_type(TokenType.RPAREN)
            return InList(left, tuple(options), negated=negated)

        if self.accept_keyword("BETWEEN"):
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return Between(left, low, high, negated=negated)

        if self.accept_keyword("LIKE"):
            return Like(left, self.parse_additive(), negated=negated)

        if self.accept_keyword("IS"):
            is_negated = self.accept_keyword("NOT") is not None
            self.expect_keyword("NULL")
            return IsNull(left, negated=is_negated)

        return left

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while True:
            token = self.current
            if token.type is TokenType.OPERATOR and token.text in ("+", "-", "||"):
                self.advance()
                right = self.parse_multiplicative()
                left = BinaryOp(token.text, left, right)
            else:
                return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_unary()
        while True:
            token = self.current
            if token.type is TokenType.OPERATOR and token.text in ("*", "/", "%"):
                self.advance()
                right = self.parse_unary()
                left = BinaryOp(token.text, left, right)
            else:
                return left

    def parse_unary(self) -> Expression:
        token = self.current
        if token.type is TokenType.OPERATOR and token.text == "-":
            self.advance()
            return UnaryOp("-", self.parse_unary())
        if token.type is TokenType.OPERATOR and token.text == "+":
            self.advance()
            return self.parse_unary()
        return self.parse_atom()

    def parse_atom(self) -> Expression:
        token = self.current

        if token.type is TokenType.INTEGER:
            self.advance()
            return Literal(int(token.text))
        if token.type is TokenType.FLOAT:
            self.advance()
            return Literal(float(token.text))
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.text)
        if token.type is TokenType.PARAM:
            self.advance()
            param = Parameter(self._param_count)
            self._param_count += 1
            return param
        if token.type is TokenType.LPAREN:
            self.advance()
            if self.peek_keyword("SELECT"):
                select = self.parse_select()
                self.expect_type(TokenType.RPAREN)
                return ScalarSubquery(select)
            expr = self.parse_expression()
            self.expect_type(TokenType.RPAREN)
            return expr

        if token.type is TokenType.IDENT:
            upper = token.upper
            if upper == "CASE":
                return self.parse_case()
            if upper == "EXISTS":
                self.advance()
                self.expect_type(TokenType.LPAREN)
                select = self.parse_select()
                self.expect_type(TokenType.RPAREN)
                return Exists(select)
            if upper == "NULL":
                self.advance()
                return Literal(None)
            if upper == "TRUE":
                self.advance()
                return Literal(True)
            if upper == "FALSE":
                self.advance()
                return Literal(False)
            if upper in _RESERVED:
                raise SqlSyntaxError(
                    f"unexpected keyword {token.text!r} in expression",
                    token.position,
                )
            return self.parse_name_or_call()

        raise SqlSyntaxError(
            f"unexpected token {token.text!r} in expression", token.position
        )

    def parse_name_or_call(self) -> Expression:
        name_token = self.advance()
        name = name_token.text

        # function or aggregate call
        if self.current.type is TokenType.LPAREN:
            self.advance()
            lowered = name.lower()
            if lowered in AGGREGATE_NAMES:
                return self._parse_aggregate_tail(lowered)
            args: list[Expression] = []
            if self.current.type is not TokenType.RPAREN:
                args.append(self.parse_expression())
                while self.accept_type(TokenType.COMMA):
                    args.append(self.parse_expression())
            self.expect_type(TokenType.RPAREN)
            return FunctionCall(lowered, tuple(args))

        # qualified column (table.column or table.*)
        if self.accept_type(TokenType.DOT):
            if self.current.type is TokenType.OPERATOR and self.current.text == "*":
                self.advance()
                return Star(table=name.lower())
            column = self.expect_ident()
            return ColumnRef(column, table=name.lower())

        return ColumnRef(name.lower())

    def parse_case(self) -> CaseExpr:
        """CASE [operand] WHEN ... THEN ... [ELSE ...] END."""
        self.expect_keyword("CASE")
        operand = None
        if not self.peek_keyword("WHEN"):
            operand = self.parse_expression()
        whens: list[tuple[Expression, Expression]] = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expression()
            self.expect_keyword("THEN")
            whens.append((condition, self.parse_expression()))
        if not whens:
            raise SqlSyntaxError(
                "CASE requires at least one WHEN clause", self.current.position
            )
        default = None
        if self.accept_keyword("ELSE"):
            default = self.parse_expression()
        self.expect_keyword("END")
        return CaseExpr(whens=tuple(whens), operand=operand, default=default)

    def _parse_aggregate_tail(self, name: str) -> AggregateCall:
        distinct = self.accept_keyword("DISTINCT") is not None
        if self.current.type is TokenType.OPERATOR and self.current.text == "*":
            if name != "count":
                raise SqlSyntaxError(
                    f"{name.upper()}(*) is not valid SQL", self.current.position
                )
            self.advance()
            self.expect_type(TokenType.RPAREN)
            return AggregateCall("count", None, distinct=False)
        arg = self.parse_expression()
        self.expect_type(TokenType.RPAREN)
        return AggregateCall(name, arg, distinct=distinct)

"""Batch-at-a-time (vectorized) expression evaluation over column vectors.

This is the vectorized twin of :func:`repro.hstore.compile.compile_expr`.
Where the row compiler lowers an expression tree to a closure evaluated
once per row, :func:`lower_expr` lowers it to a closure evaluated once per
*statement*: it takes a :class:`VectorContext` over a table's
:class:`~repro.hstore.columnar.ColumnStore` view and returns either a
whole column of results or a :class:`Broadcast` (one value standing for
the entire vector — literals, parameters, and constant folds).

Semantics contract
------------------

The vector path must be *bit-identical* to the interpreter on success:

* NULL propagation is elementwise (a NULL operand yields NULL for that
  element) and AND/OR implement the same three-valued logic as
  ``BooleanOp.eval`` — including its "falsy is false" treatment of
  non-boolean operands.
* Aggregate folds reproduce the row accumulator exactly: SUM/AVG fold
  left-to-right from the first non-NULL value (builtin ``sum`` switches
  to compensated summation for floats on newer CPythons, so float sums
  take an explicit naive fold), MIN/MAX keep the first of equals, and
  DISTINCT collapses first-occurrence-wise via ``dict.fromkeys``.
* Evaluation is *eager* — there is no per-row short-circuit, so an
  expression that the interpreter would never evaluate for some row
  (``x <> 0 AND 10 / x > 1``) can raise here.  Lowered closures therefore
  make no attempt to replicate error channels: the executor catches any
  exception from a vector evaluation *before* mutating anything and
  re-runs the statement through the row-at-a-time path, which raises (or
  doesn't) with oracle semantics.

Anything not lowerable — CASE, subqueries, unresolvable columns, unknown
functions — returns ``None`` from ``lower_expr`` and the whole statement
stays on the row path at plan-compile time.
"""

from __future__ import annotations

import sys
from array import array
from dataclasses import dataclass
from itertools import compress, repeat
from math import copysign
from operator import and_, eq, ge, gt, is_, is_not, le, lt, ne, or_
from typing import Any, Callable, Sequence

from repro.errors import BindingError
from repro.hstore.expression import (
    _ARITH,
    _COMPARATORS,
    _SCALAR_FUNCTIONS,
    Between,
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    NotOp,
    Parameter,
    UnaryOp,
    _like_match,
)
from repro.hstore.planner import SeqScan

__all__ = [
    "Broadcast",
    "VectorContext",
    "VectorSelect",
    "VectorDml",
    "lower_expr",
    "lower_select",
    "lower_update",
    "lower_delete",
    "normalize_mask",
    "selected_values",
    "agg_fold",
]

#: aggregate names the columnar fold implements (== the planner's full set)
VECTOR_AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})

#: builtin sum is an uncompensated left fold before CPython 3.12 (Neumaier
#: summation landed in 3.12) — when so, it can stand in for the row
#: accumulator's fold on float data
_NAIVE_BUILTIN_SUM = sys.version_info < (3, 12)

#: operator-module twins of ``_COMPARATORS``: same semantics (same rich
#: comparison, same TypeError on incomparables), but C-dispatchable by
#: ``map`` with no per-row Python frame
_C_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": eq,
    "<>": ne,
    "!=": ne,
    "<": lt,
    "<=": le,
    ">": gt,
    ">=": ge,
}


class Broadcast:
    """A per-statement constant: one value standing for a whole vector."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


class VectorContext:
    """Evaluation context for one statement over one columnar view."""

    __slots__ = ("store", "params", "n")

    def __init__(self, store: Any, params: Sequence[Any], n: int) -> None:
        self.store = store
        self.params = params
        self.n = n


#: a lowered expression: VectorContext -> column (list/array) | Broadcast
VecFn = Callable[[VectorContext], Any]


class BoolVec(list):
    """A vector known by construction to hold only ``True``/``False``.

    Produced by the NULL-free fast lanes of comparison, IS NULL and
    AND/OR lowering.  The tag lets downstream consumers skip whole C
    passes: :func:`normalize_mask` returns it as-is (a pure-bool vector
    *is* its own selection mask) and the 3VL fold skips its NULL scan
    and truthiness conversion.
    """

    __slots__ = ()


# ----------------------------------------------------------------------
# elementwise lifting helpers

def _lift1(scalar_fn: Callable[[Any], Any], operand: VecFn | None) -> VecFn | None:
    if operand is None:
        return None

    def run(v: VectorContext) -> Any:
        a = operand(v)
        if type(a) is Broadcast:
            x = a.value
            return Broadcast(None if x is None else scalar_fn(x))
        if None in a:
            return [None if x is None else scalar_fn(x) for x in a]
        return list(map(scalar_fn, a))

    return run


def _lift2(
    scalar_fn: Callable[[Any, Any], Any],
    left: VecFn | None,
    right: VecFn | None,
    wrap: type = list,
) -> VecFn | None:
    """Elementwise binary lift; ``wrap`` tags the NULL-free map outputs.

    Callers whose scalar function returns pure booleans (comparisons)
    pass ``wrap=BoolVec`` so the provenance survives into mask handling;
    the NULL-carrying comprehension branches always stay plain lists.
    """
    if left is None or right is None:
        return None

    def run(v: VectorContext) -> Any:
        a = left(v)
        b = right(v)
        a_bc = type(a) is Broadcast
        b_bc = type(b) is Broadcast
        if a_bc and b_bc:
            x, y = a.value, b.value
            return Broadcast(None if x is None or y is None else scalar_fn(x, y))
        if a_bc:
            x = a.value
            if x is None:
                return Broadcast(None)
            if None in b:
                return [None if y is None else scalar_fn(x, y) for y in b]
            return wrap(map(scalar_fn, repeat(x), b))
        if b_bc:
            y = b.value
            if y is None:
                return Broadcast(None)
            if None in a:
                return [None if x is None else scalar_fn(x, y) for x in a]
            return wrap(map(scalar_fn, a, repeat(y)))
        if None not in a and None not in b:
            return wrap(map(scalar_fn, a, b))
        return [
            None if x is None or y is None else scalar_fn(x, y)
            for x, y in zip(a, b)
        ]

    return run


def _liftn(
    scalar_fn: Callable[..., Any], operands: list[VecFn | None]
) -> VecFn | None:
    if any(fn is None for fn in operands):
        return None

    def run(v: VectorContext) -> Any:
        vals = [fn(v) for fn in operands]
        if all(type(x) is Broadcast for x in vals):
            args = [x.value for x in vals]
            if any(a is None for a in args):
                return Broadcast(None)
            return Broadcast(scalar_fn(*args))
        n = v.n
        cols = [
            [x.value] * n if type(x) is Broadcast else x for x in vals
        ]
        out = []
        append = out.append
        for args in zip(*cols):
            if None in args:
                append(None)
            else:
                append(scalar_fn(*args))
        return out

    return run


def _expand(x: Any, n: int) -> Any:
    return [x.value] * n if type(x) is Broadcast else x


# ----------------------------------------------------------------------
# node lowerers with bespoke NULL handling

def _lower_bool(op: str, operands: list[VecFn | None]) -> VecFn | None:
    if any(fn is None for fn in operands):
        return None
    conjunction = op == "AND"

    def run(v: VectorContext) -> Any:
        vals = [fn(v) for fn in operands]
        # fold broadcast operands first — 3VL AND/OR are commutative over
        # {T, F, N}, with F (resp. T) dominating and N beating T (resp. F)
        saw_null_const = False
        vectors = []
        for x in vals:
            if type(x) is Broadcast:
                value = x.value
                if value is None:
                    saw_null_const = True
                elif conjunction and not value:
                    return Broadcast(False)
                elif not conjunction and value:
                    return Broadcast(True)
            else:
                vectors.append(x)
        if not vectors:
            return Broadcast(None if saw_null_const else conjunction)
        if not saw_null_const and all(
            type(vec) is BoolVec or None not in vec for vec in vectors
        ):
            # NULL-free fast path: 3VL collapses to plain boolean algebra
            # over truthiness, all folds C-dispatched (BoolVec operands
            # skip both the NULL scan and the truthiness conversion)
            first = vectors[0]
            acc = first if type(first) is BoolVec else BoolVec(map(bool, first))
            fold = and_ if conjunction else or_
            for vec in vectors[1:]:
                acc = BoolVec(
                    map(fold, acc, vec if type(vec) is BoolVec else map(bool, vec))
                )
            return acc
        out = []
        append = out.append
        if conjunction:
            for tup in zip(*vectors):
                saw_null = saw_null_const
                result = True
                for value in tup:
                    if value is None:
                        saw_null = True
                    elif not value:
                        result = False
                        break
                append(False if result is False else (None if saw_null else True))
        else:
            for tup in zip(*vectors):
                saw_null = saw_null_const
                result = False
                for value in tup:
                    if value is None:
                        saw_null = True
                    elif value:
                        result = True
                        break
                append(True if result else (None if saw_null else False))
        return out

    return run


def _lower_is_null(operand: VecFn | None, negated: bool) -> VecFn | None:
    if operand is None:
        return None

    def run(v: VectorContext) -> Any:
        a = operand(v)
        if type(a) is Broadcast:
            return Broadcast(
                (a.value is not None) if negated else (a.value is None)
            )
        if negated:
            return BoolVec(map(is_not, a, repeat(None)))
        return BoolVec(map(is_, a, repeat(None)))

    return run


def _lower_in_list(
    operand: VecFn | None, options: list[VecFn | None], negated: bool
) -> VecFn | None:
    if operand is None or any(fn is None for fn in options):
        return None

    def run(v: VectorContext) -> Any:
        a = operand(v)
        opts = [fn(v) for fn in options]
        if all(type(o) is Broadcast for o in opts):
            values = [o.value for o in opts]
            saw_null_opt = None in values
            candidates = [x for x in values if x is not None]
            option_set = set(candidates)
            miss = None if saw_null_opt else negated
            hit = not negated
            if type(a) is Broadcast:
                x = a.value
                if x is None:
                    return Broadcast(None)
                return Broadcast(hit if x in option_set else miss)
            return [
                None if x is None else (hit if x in option_set else miss)
                for x in a
            ]
        # per-row option values (rare: options referencing columns)
        n = v.n
        cols = [_expand(o, n) for o in opts]
        avec = _expand(a, n)
        out = []
        append = out.append
        for idx, x in enumerate(avec):
            if x is None:
                append(None)
                continue
            saw_null = False
            found = False
            for col in cols:
                candidate = col[idx]
                if candidate is None:
                    saw_null = True
                elif candidate == x:
                    found = True
                    break
            if found:
                append(not negated)
            else:
                append(None if saw_null else negated)
        return out

    return run


# ----------------------------------------------------------------------
# the lowering entry point

def lower_expr(expr: Expression, columns: dict[str, int]) -> VecFn | None:
    """Lower ``expr`` to a batch evaluator, or ``None`` if it can't be.

    ``columns`` maps column keys to offsets, exactly as for
    :func:`repro.hstore.compile.compile_expr`.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda v: Broadcast(value)

    if isinstance(expr, ColumnRef):
        offset = columns.get(expr.key)
        if offset is None:
            return None
        return lambda v: v.store.column(offset)

    if isinstance(expr, Parameter):
        index = expr.index

        def run_param(v: VectorContext) -> Any:
            params = v.params
            if index >= len(params):
                # executor falls back; the row path raises the canonical
                # BindingError (or doesn't, if no row reaches the parameter)
                raise BindingError(f"statement parameter ${index + 1} not bound")
            return Broadcast(params[index])

        return run_param

    if isinstance(expr, Comparison):
        scalar = _C_COMPARATORS.get(expr.op) or _COMPARATORS.get(expr.op)
        if scalar is None:
            return None
        return _lift2(
            scalar,
            lower_expr(expr.left, columns),
            lower_expr(expr.right, columns),
            wrap=BoolVec,
        )

    if isinstance(expr, BinaryOp):
        if expr.op == "||":
            scalar = lambda x, y: str(x) + str(y)  # noqa: E731
        else:
            scalar = _ARITH.get(expr.op)
            if scalar is None:
                return None
        return _lift2(
            scalar,
            lower_expr(expr.left, columns),
            lower_expr(expr.right, columns),
        )

    if isinstance(expr, UnaryOp):
        if expr.op != "-":
            return None
        return _lift1(lambda x: -x, lower_expr(expr.operand, columns))

    if isinstance(expr, BooleanOp):
        return _lower_bool(
            expr.op, [lower_expr(part, columns) for part in expr.operands]
        )

    if isinstance(expr, NotOp):
        return _lift1(lambda x: not x, lower_expr(expr.operand, columns))

    if isinstance(expr, IsNull):
        return _lower_is_null(lower_expr(expr.operand, columns), expr.negated)

    if isinstance(expr, InList):
        return _lower_in_list(
            lower_expr(expr.operand, columns),
            [lower_expr(option, columns) for option in expr.options],
            expr.negated,
        )

    if isinstance(expr, Between):
        negated = expr.negated

        def scalar_between(value: Any, low: Any, high: Any) -> bool:
            result = low <= value <= high
            return not result if negated else result

        return _liftn(
            scalar_between,
            [
                lower_expr(expr.operand, columns),
                lower_expr(expr.low, columns),
                lower_expr(expr.high, columns),
            ],
        )

    if isinstance(expr, Like):
        negated = expr.negated

        def scalar_like(value: Any, pattern: Any) -> bool:
            result = _like_match(str(value), str(pattern))
            return not result if negated else result

        return _lift2(
            scalar_like,
            lower_expr(expr.operand, columns),
            lower_expr(expr.pattern, columns),
        )

    if isinstance(expr, FunctionCall):
        name = expr.name.lower()
        scalar = _SCALAR_FUNCTIONS.get(name)
        if scalar is None:
            return None
        arg_fns = [lower_expr(arg, columns) for arg in expr.args]
        if name == "coalesce":
            return _lower_coalesce(arg_fns)
        return _liftn(scalar, arg_fns)

    # CASE, subqueries, aggregates, Star, anything future: row path
    return None


def _lower_coalesce(arg_fns: list[VecFn | None]) -> VecFn | None:
    if any(fn is None for fn in arg_fns):
        return None

    def run(v: VectorContext) -> Any:
        vals = [fn(v) for fn in arg_fns]
        if all(type(x) is Broadcast for x in vals):
            for x in vals:
                if x.value is not None:
                    return Broadcast(x.value)
            return Broadcast(None)
        n = v.n
        cols = [_expand(x, n) for x in vals]
        out = []
        append = out.append
        for args in zip(*cols):
            result = None
            for value in args:
                if value is not None:
                    result = value
                    break
            append(result)
        return out

    return run


# ----------------------------------------------------------------------
# selection vectors and aggregate folds (used by the executor)

def normalize_mask(mask: Any, n: int) -> list[bool] | None:
    """Predicate result -> selection vector.

    Returns ``None`` for "every row selected", else a list of bools.  The
    executor's row semantics keep a row only when the predicate ``is
    True`` (never merely truthy, never NULL), hence the identity map.
    """
    if type(mask) is Broadcast:
        return None if mask.value is True else [False] * n
    if type(mask) is BoolVec:
        return mask  # already pure True/False — it IS the selection vector
    return list(map(is_, mask, repeat(True)))


def selected_values(
    result: Any, bmask: list[bool] | None, n: int, nsel: int
) -> Any:
    """Materialize a vector result restricted to the selection (read-only)."""
    if type(result) is Broadcast:
        return [result.value] * nsel
    if bmask is None:
        return result
    return list(compress(result, bmask))


def _exact_sum(vals: Any) -> Any:
    """Left-fold sum, bit-identical to the row accumulator.

    Builtin ``sum`` is exact for ints (associative) but uses Neumaier
    compensation for floats on CPython >= 3.12, which is *better* than the
    row path's naive fold — and therefore wrong here.  Floats get the
    explicit first-value-seeded loop the accumulator performs.
    """
    if type(vals) is array:
        if vals.typecode == "q":
            return sum(vals)
    else:
        # one C pass decides: an int total means no float ever entered the
        # fold, so builtin sum was already exact (and already computed)
        total = sum(vals)
        if type(total) is not float:
            return total
        if _NAIVE_BUILTIN_SUM:
            # pre-3.12 builtin sum IS the naive left fold, just seeded at
            # 0 instead of the first value — identical bits unless that
            # first addition rounds, which only -0.0 can make it do
            first = vals[0]
            if first != 0.0 or copysign(1.0, first) > 0.0:
                return total
    total = None
    for x in vals:
        total = x if total is None else total + x
    return total


def agg_fold(name: str, vals: Any, distinct: bool) -> Any:
    """Fold one aggregate over the (selected) argument column.

    ``vals`` may contain NULLs; they are skipped exactly as the row
    accumulator skips them.  Returns NULL for empty SUM/AVG/MIN/MAX.
    """
    if None in vals:
        vals = [x for x in vals if x is not None]
    if distinct:
        # first-occurrence order and 1 == 1.0 collapse, same as the
        # accumulator's seen-set
        vals = list(dict.fromkeys(vals))
    if name == "count":
        return len(vals)
    if not len(vals):
        return None
    if name == "sum":
        return _exact_sum(vals)
    if name == "avg":
        return _exact_sum(vals) / len(vals)
    if name == "min":
        return min(vals)
    return max(vals)


# ----------------------------------------------------------------------
# statement-level lowering (attached to compiled plans)

@dataclass
class VectorSelect:
    """Vector artifacts for a full-scan SELECT.

    ``outputs`` is the fully-lowered projection for plain filter+project
    statements (no grouping, DISTINCT, ORDER BY or HAVING): when present
    the executor zips the selected output columns straight into result
    rows and never touches the row store at all.
    """

    where: VecFn | None
    group_keys: tuple[VecFn, ...]
    agg_specs: tuple[tuple[str, VecFn | None, bool], ...]
    outputs: tuple[VecFn, ...] | None = None


@dataclass
class VectorDml:
    """Vector artifacts for a full-scan UPDATE/DELETE."""

    where: VecFn | None
    sets: tuple[tuple[int, VecFn], ...] | None


def lower_select(plan: Any) -> VectorSelect | None:
    """Attach a vector plan to a single-table full-scan SELECT, or None."""
    if not isinstance(plan.access, SeqScan) or plan.joins:
        return None
    columns = plan.columns
    where_fn = None
    if plan.where is not None:
        where_fn = lower_expr(plan.where, columns)
        if where_fn is None:
            return None
    group_fns: list[VecFn] = []
    agg_specs: list[tuple[str, VecFn | None, bool]] = []
    if plan.grouped:
        for expr in plan.group_exprs:
            fn = lower_expr(expr, columns)
            if fn is None:
                return None
            group_fns.append(fn)
        for agg in plan.aggregates:
            if agg.name not in VECTOR_AGGREGATES:
                return None
            arg_fn = None
            if agg.arg is not None:
                arg_fn = lower_expr(agg.arg, columns)
                if arg_fn is None:
                    return None
            agg_specs.append((agg.name, arg_fn, agg.distinct))
    elif where_fn is None:
        # plain SELECT * full scan: the row path is already a dict copy
        return None
    outputs = None
    if (
        not plan.grouped
        and not plan.distinct
        and not plan.order_by
        and plan.post_having is None
        and plan.ext_columns is plan.columns
    ):
        out_fns: list[VecFn] | None = []
        for expr in plan.output_exprs:
            fn = lower_expr(expr, columns)
            if fn is None:
                out_fns = None
                break
            out_fns.append(fn)
        if out_fns is not None:
            outputs = tuple(out_fns)
    return VectorSelect(where_fn, tuple(group_fns), tuple(agg_specs), outputs)


def lower_update(plan: Any) -> VectorDml | None:
    """Vector artifacts for UPDATE: lowered WHERE and/or SET vectors."""
    if not isinstance(plan.access, SeqScan):
        return None
    columns = plan.columns
    where_fn = None
    if plan.where is not None:
        where_fn = lower_expr(plan.where, columns)
        if where_fn is None:
            return None
    set_fns: list[tuple[int, VecFn]] | None = []
    for offset, expr in plan.assignments:
        fn = lower_expr(expr, columns)
        if fn is None:
            set_fns = None
            break
        set_fns.append((offset, fn))
    if where_fn is None and set_fns is None:
        return None
    return VectorDml(where_fn, tuple(set_fns) if set_fns is not None else None)


def lower_delete(plan: Any) -> VectorDml | None:
    """Vector artifacts for DELETE (a lowered WHERE; no SET side)."""
    if not isinstance(plan.access, SeqScan) or plan.where is None:
        return None
    where_fn = lower_expr(plan.where, plan.columns)
    if where_fn is None:
        return None
    return VectorDml(where_fn, None)

"""Bounded LRU cache of ad-hoc statement plans.

H-Store's architectural bet is that *planning happens once*: stored
procedures are pre-planned at registration and execution only binds
parameters.  Ad-hoc ``execute_sql`` historically paid the full
parse + plan + compile cost on **every** call — which dominates the
statement's own execution for the point queries that make up most ad-hoc
traffic.  The :class:`PlanCache` closes that gap: the engine consults it
before parsing, so each distinct statement text is planned once and then
served from the cache.

Keying and invalidation:

* the key is the statement text normalized for whitespace only (``"SELECT 1"``
  and ``"select  1"`` are *different* statements — SQL identifiers are
  case-insensitive here but string literals are not, so the cache does not
  case-fold);
* every entry records the :attr:`~repro.hstore.catalog.Catalog.version` it
  was planned under.  Any DDL bumps the catalog version, so a hit against a
  stale entry is detected on lookup, dropped, and re-planned — cached plans
  can never outlive the schema they were compiled against.

The cache is bounded (default set by the engine) and evicts least-recently
used entries.  Hits and misses are counted here and mirrored into
``EngineStats`` / the ``repro.obs`` metrics registry by the engine.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

__all__ = ["PlanCache"]


def normalize_sql(sql: str) -> str:
    """Collapse runs of whitespace so formatting differences share an entry."""
    return " ".join(sql.split())


class PlanCache:
    """An LRU of ``normalized SQL -> (catalog version, plan)``."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, tuple[int, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, sql: str, catalog_version: int) -> Any | None:
        """The cached plan, or None on miss / schema change (counted)."""
        key = normalize_sql(sql)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        version, plan = entry
        if version != catalog_version:
            # planned under an older schema: evict and re-plan
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return plan

    def put(self, sql: str, catalog_version: int, plan: Any) -> None:
        key = normalize_sql(sql)
        self._entries[key] = (catalog_version, plan)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def contains(self, sql: str) -> bool:
        """Presence check that does not touch LRU order or counters."""
        return normalize_sql(sql) in self._entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanCache({len(self._entries)}/{self.capacity} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )

"""Client sessions.

A client talks to the PE by invoking stored procedures; every request/response
pair is one client↔PE round trip.  The naive H-Store streaming pattern the
paper criticizes — the client polls for results and drives the workflow by
issuing the next procedure call itself — is expressed through this interface
(see :mod:`repro.apps.voter.hstore_app`), while S-Store clients only push
inputs and let PE triggers drive the rest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.hstore.procedure import ProcedureResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hstore.engine import HStoreEngine

__all__ = ["ClientSession"]


class ClientSession:
    """One synchronous client connection."""

    def __init__(self, engine: "HStoreEngine", name: str = "client") -> None:
        self._engine = engine
        self.name = name
        self.calls_made = 0

    def call(self, procedure_name: str, *params: Any) -> ProcedureResult:
        """Invoke a stored procedure (one client↔PE round trip)."""
        self.calls_made += 1
        return self._engine.call_procedure(procedure_name, *params)

    def query(self, sql: str, *params: Any):
        """Run ad-hoc SQL (one client↔PE round trip)."""
        self.calls_made += 1
        return self._engine.execute_sql(sql, *params)

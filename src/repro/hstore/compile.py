"""Closure compilation: flatten expression ASTs into plain Python callables.

The interpreted evaluator (:mod:`repro.hstore.expression`) dispatches through
one ``eval`` method per AST node *per row*.  For the streaming hot path —
thousands of trigger firings per second, each running several statements —
that dispatch dominates the per-tuple transaction cost the paper's throughput
claims hinge on.  This module performs the dispatch exactly once, at plan
time: :func:`compile_expr` walks the tree and returns a flat closure
``fn(ctx) -> value`` whose column references are pre-resolved to row offsets
(``ctx.row[7]`` instead of a dict lookup through ``ctx.resolve``).

Compiled closures are **semantics-identical** to the interpreted evaluator —
including SQL three-valued logic, NULL propagation, ``BindingError`` on
missing parameters, ``TypeSystemError`` on bad comparisons and division by
zero.  The interpreted path stays available behind the engine's
``compile=False`` switch as the correctness oracle; the hypothesis
differential suite (``tests/property/test_prop_compile_diff.py``) fuzzes the
two against each other.

:func:`compile_plan` threads closures through a whole physical plan
(:class:`CompiledSelect` / ``Insert`` / ``Update`` / ``Delete``), including:

* compiled index-probe key builders for every access path;
* a *point-lookup* descriptor when a SELECT is a pure covered equality
  lookup (no joins, no residual WHERE, no grouping/ordering), letting the
  executor skip the scan pipeline entirely;
* tuple-builder specialization for small projection arities and
  ``operator.itemgetter`` fast paths when every output is a plain column
  (projection) or every INSERT value is a plain parameter;
* per-aggregate feed specs consumed by the executor's compiled accumulator.

Anything the compiler does not recognize falls back to the node's own bound
``eval`` method — still one call, never a wrong answer.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import BindingError, TypeSystemError
from repro.hstore.expression import (
    _ARITH,
    _COMPARATORS,
    _SCALAR_FUNCTIONS,
    _like_match,
    Between,
    BinaryOp,
    BooleanOp,
    CaseExpr,
    ColumnRef,
    Comparison,
    EvalContext,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    NotOp,
    Parameter,
    PlannedExists,
    PlannedInSubquery,
    PlannedScalarSubquery,
    UnaryOp,
    walk,
)
from repro.hstore.planner import (
    DeletePlan,
    IndexEqScan,
    IndexRangeScan,
    InsertPlan,
    Plan,
    SelectPlan,
    UpdatePlan,
)
from repro.hstore.vector import lower_delete, lower_select, lower_update

__all__ = [
    "EvalFn",
    "compile_expr",
    "compile_plan",
    "make_tuple_fn",
    "CompiledAccess",
    "CompiledJoin",
    "CompiledSelect",
    "CompiledInsert",
    "CompiledUpdate",
    "CompiledDelete",
]

#: a compiled expression: one call per evaluation, zero AST dispatch
EvalFn = Callable[[EvalContext], Any]


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------


def compile_expr(expr: Expression, columns: dict[str, int]) -> EvalFn:
    """Compile one expression tree against a column map into a closure.

    ``columns`` maps column keys to row offsets exactly as the plan's
    ``EvalContext`` will at execution time; offsets are burned into the
    closure so per-row resolution is a single indexed load.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda ctx: value

    if isinstance(expr, ColumnRef):
        try:
            offset = columns[expr.key]
        except KeyError:
            # unresolvable at compile time: let the interpreted node raise
            # its BindingError at evaluation time, same as the oracle
            return expr.eval
        return lambda ctx: ctx.row[offset]

    if isinstance(expr, Parameter):
        index = expr.index

        def eval_param(ctx: EvalContext) -> Any:
            params = ctx.params
            if index >= len(params):
                raise BindingError(
                    f"statement requires parameter #{index + 1}, "
                    f"only {len(params)} bound"
                )
            return params[index]

        return eval_param

    if isinstance(expr, BinaryOp):
        left_fn = compile_expr(expr.left, columns)
        right_fn = compile_expr(expr.right, columns)
        op = expr.op
        if op == "||":

            def eval_concat(ctx: EvalContext) -> Any:
                left = left_fn(ctx)
                right = right_fn(ctx)
                if left is None or right is None:
                    return None
                return str(left) + str(right)

            return eval_concat
        if op not in _ARITH:
            return expr.eval  # unknown operator: interpreted error path
        arith = _ARITH[op]
        if op in ("/", "%"):

            def eval_div(ctx: EvalContext) -> Any:
                left = left_fn(ctx)
                right = right_fn(ctx)
                if left is None or right is None:
                    return None
                if right == 0:
                    raise TypeSystemError("division by zero")
                return arith(left, right)

            return eval_div

        def eval_arith(ctx: EvalContext) -> Any:
            left = left_fn(ctx)
            right = right_fn(ctx)
            if left is None or right is None:
                return None
            return arith(left, right)

        return eval_arith

    if isinstance(expr, UnaryOp):
        if expr.op != "-":
            return expr.eval
        operand_fn = compile_expr(expr.operand, columns)

        def eval_neg(ctx: EvalContext) -> Any:
            value = operand_fn(ctx)
            return None if value is None else -value

        return eval_neg

    if isinstance(expr, Comparison):
        if expr.op not in _COMPARATORS:
            return expr.eval
        compare = _COMPARATORS[expr.op]
        op = expr.op
        left_fn = compile_expr(expr.left, columns)
        right_fn = compile_expr(expr.right, columns)

        def eval_cmp(ctx: EvalContext) -> Any:
            left = left_fn(ctx)
            right = right_fn(ctx)
            if left is None or right is None:
                return None
            try:
                return compare(left, right)
            except TypeError:
                raise TypeSystemError(
                    f"cannot compare {left!r} {op} {right!r}"
                ) from None

        return eval_cmp

    if isinstance(expr, BooleanOp):
        fns = tuple(compile_expr(op_expr, columns) for op_expr in expr.operands)
        if expr.op == "AND":

            def eval_and(ctx: EvalContext) -> Any:
                saw_null = False
                for fn in fns:
                    value = fn(ctx)
                    if value is None:
                        saw_null = True
                    elif not value:
                        return False
                return None if saw_null else True

            return eval_and
        if expr.op == "OR":

            def eval_or(ctx: EvalContext) -> Any:
                saw_null = False
                for fn in fns:
                    value = fn(ctx)
                    if value is None:
                        saw_null = True
                    elif value:
                        return True
                return None if saw_null else False

            return eval_or
        return expr.eval

    if isinstance(expr, NotOp):
        operand_fn = compile_expr(expr.operand, columns)

        def eval_not(ctx: EvalContext) -> Any:
            value = operand_fn(ctx)
            return None if value is None else not value

        return eval_not

    if isinstance(expr, InList):
        operand_fn = compile_expr(expr.operand, columns)
        option_fns = tuple(compile_expr(opt, columns) for opt in expr.options)
        negated = expr.negated

        def eval_in(ctx: EvalContext) -> Any:
            value = operand_fn(ctx)
            if value is None:
                return None
            saw_null = False
            for option_fn in option_fns:
                candidate = option_fn(ctx)
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    return not negated
            if saw_null:
                return None
            return negated

        return eval_in

    if isinstance(expr, Between):
        operand_fn = compile_expr(expr.operand, columns)
        low_fn = compile_expr(expr.low, columns)
        high_fn = compile_expr(expr.high, columns)
        negated = expr.negated

        def eval_between(ctx: EvalContext) -> Any:
            value = operand_fn(ctx)
            low = low_fn(ctx)
            high = high_fn(ctx)
            if value is None or low is None or high is None:
                return None
            result = low <= value <= high
            return not result if negated else result

        return eval_between

    if isinstance(expr, Like):
        operand_fn = compile_expr(expr.operand, columns)
        pattern_fn = compile_expr(expr.pattern, columns)
        negated = expr.negated

        def eval_like(ctx: EvalContext) -> Any:
            value = operand_fn(ctx)
            pattern = pattern_fn(ctx)
            if value is None or pattern is None:
                return None
            result = _like_match(str(value), str(pattern))
            return not result if negated else result

        return eval_like

    if isinstance(expr, IsNull):
        operand_fn = compile_expr(expr.operand, columns)
        if expr.negated:
            return lambda ctx: operand_fn(ctx) is not None
        return lambda ctx: operand_fn(ctx) is None

    if isinstance(expr, FunctionCall):
        name = expr.name.lower()
        if name not in _SCALAR_FUNCTIONS:
            return expr.eval  # unknown function: interpreted error path
        fn = _SCALAR_FUNCTIONS[name]
        arg_fns = tuple(compile_expr(arg, columns) for arg in expr.args)
        if name == "coalesce":

            def eval_coalesce(ctx: EvalContext) -> Any:
                for arg_fn in arg_fns:
                    value = arg_fn(ctx)
                    if value is not None:
                        return value
                return None

            return eval_coalesce

        def eval_function(ctx: EvalContext) -> Any:
            values = [arg_fn(ctx) for arg_fn in arg_fns]
            if any(value is None for value in values):
                return None
            return fn(*values)

        return eval_function

    if isinstance(expr, CaseExpr):
        when_fns = tuple(
            (compile_expr(when, columns), compile_expr(then, columns))
            for when, then in expr.whens
        )
        default_fn = (
            compile_expr(expr.default, columns)
            if expr.default is not None
            else None
        )
        if expr.operand is not None:
            operand_fn = compile_expr(expr.operand, columns)

            def eval_simple_case(ctx: EvalContext) -> Any:
                subject = operand_fn(ctx)
                for when_fn, then_fn in when_fns:
                    candidate = when_fn(ctx)
                    if subject is not None and candidate == subject:
                        return then_fn(ctx)
                return default_fn(ctx) if default_fn is not None else None

            return eval_simple_case

        def eval_searched_case(ctx: EvalContext) -> Any:
            for when_fn, then_fn in when_fns:
                if when_fn(ctx) is True:
                    return then_fn(ctx)
            return default_fn(ctx) if default_fn is not None else None

        return eval_searched_case

    if isinstance(expr, PlannedInSubquery):
        operand_fn = compile_expr(expr.operand, columns)
        inner_plan = expr.plan
        outer_offsets = expr.outer_offsets
        negated = expr.negated

        def eval_in_subquery(ctx: EvalContext) -> Any:
            if ctx.executor is None:
                return expr.eval(ctx)  # raises the interpreted PlanningError
            value = operand_fn(ctx)
            if value is None:
                return None
            result = ctx.executor.execute_select_plan(
                inner_plan,
                tuple(ctx.params)
                + tuple(ctx.row[offset] for offset in outer_offsets),
            )
            saw_null = False
            for (candidate,) in result.rows:
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    return not negated
            if saw_null:
                return None
            return negated

        return eval_in_subquery

    if isinstance(expr, PlannedExists):
        inner_plan = expr.plan
        outer_offsets = expr.outer_offsets

        def eval_exists(ctx: EvalContext) -> Any:
            if ctx.executor is None:
                return expr.eval(ctx)
            result = ctx.executor.execute_select_plan(
                inner_plan,
                tuple(ctx.params)
                + tuple(ctx.row[offset] for offset in outer_offsets),
            )
            return bool(result.rows)

        return eval_exists

    if isinstance(expr, PlannedScalarSubquery):
        inner_plan = expr.plan
        outer_offsets = expr.outer_offsets

        def eval_scalar_subquery(ctx: EvalContext) -> Any:
            if ctx.executor is None:
                return expr.eval(ctx)
            result = ctx.executor.execute_select_plan(
                inner_plan,
                tuple(ctx.params)
                + tuple(ctx.row[offset] for offset in outer_offsets),
            )
            if not result.rows:
                return None
            if len(result.rows) > 1:
                raise TypeSystemError(
                    f"scalar subquery returned {len(result.rows)} rows"
                )
            return result.rows[0][0]

        return eval_scalar_subquery

    # AggregateCall, Star, unplanned subqueries, future node types: the
    # interpreted eval raises the right error (or is never reached).
    return expr.eval


def make_tuple_fn(fns: tuple[EvalFn, ...]) -> EvalFn:
    """A closure building the tuple of all ``fns`` results, arity-specialized.

    Building ``(f0(ctx), f1(ctx))`` directly beats a genexp-into-``tuple``
    for the 1–4 column rows that dominate the streaming workloads.
    """
    if len(fns) == 0:
        return lambda ctx: ()
    if len(fns) == 1:
        (f0,) = fns
        return lambda ctx: (f0(ctx),)
    if len(fns) == 2:
        f0, f1 = fns
        return lambda ctx: (f0(ctx), f1(ctx))
    if len(fns) == 3:
        f0, f1, f2 = fns
        return lambda ctx: (f0(ctx), f1(ctx), f2(ctx))
    if len(fns) == 4:
        f0, f1, f2, f3 = fns
        return lambda ctx: (f0(ctx), f1(ctx), f2(ctx), f3(ctx))
    return lambda ctx: tuple(fn(ctx) for fn in fns)


def _row_getter(offsets: tuple[int, ...]) -> Callable[[tuple], tuple]:
    """``row -> (row[o0], row[o1], ...)`` — always a tuple, any arity."""
    if len(offsets) == 1:
        (o0,) = offsets
        return lambda row: (row[o0],)
    getter = operator.itemgetter(*offsets)
    return getter  # itemgetter already returns a tuple for arity >= 2


def _column_offsets(
    exprs: list[Expression], columns: dict[str, int]
) -> tuple[int, ...] | None:
    """Row offsets when every expression is a plain resolvable column."""
    offsets: list[int] = []
    for expr in exprs:
        if not isinstance(expr, ColumnRef) or expr.key not in columns:
            return None
        offsets.append(columns[expr.key])
    return tuple(offsets)


# ---------------------------------------------------------------------------
# Plan artifacts
# ---------------------------------------------------------------------------


@dataclass
class CompiledAccess:
    """Closure form of one access path (probe builders pre-compiled)."""

    kind: str  # "seq" | "eq" | "range"
    #: eq: builds the probe key tuple from the (outer-row) context
    key_fn: EvalFn | None = None
    #: eq, all-plain-column keys: row offsets to build the probe key from
    #: the outer row directly, skipping the closure calls entirely
    key_offsets: tuple[int, ...] | None = None
    #: range bounds (None = unbounded on that side)
    low_fn: EvalFn | None = None
    high_fn: EvalFn | None = None


@dataclass
class CompiledJoin:
    """One join step: inner access probe + residual ON predicate."""

    access: CompiledAccess
    on: EvalFn | None


@dataclass
class CompiledSelect:
    access: CompiledAccess
    joins: list[CompiledJoin]
    where: EvalFn | None
    #: group-key builder over the combined row ( () -> () when ungrouped )
    group_key: EvalFn
    #: all-plain-column group key: row offsets for direct key extraction
    group_offsets: tuple[int, ...] | None
    #: per-aggregate (name, compiled arg or None for COUNT(*), distinct)
    agg_specs: tuple[tuple[str, EvalFn | None, bool], ...]
    #: every aggregate is a bare COUNT(*): groups reduce to int counters
    count_star_only: bool
    post_having: EvalFn | None
    #: projection over the extended row, as a single tuple-builder
    project: EvalFn
    #: pure-column projection: ext_row -> out tuple without any context
    row_project: Callable[[tuple], tuple] | None
    #: ORDER BY sort-key builders + comparator over precomputed key tuples
    order_keys: EvalFn | None
    order_cmp: Callable[[Any, Any], int] | None
    #: pure covered equality lookup: skip the scan pipeline entirely
    point_lookup: bool = False
    #: batch-at-a-time artifacts (repro.hstore.vector.VectorSelect) for
    #: full scans whose WHERE/GROUP BY/aggregates all lower; None = row path
    vector: Any = None


@dataclass
class CompiledInsert:
    #: one tuple-builder per VALUES row
    row_fns: list[EvalFn]
    #: when every value of every row is a plain parameter: params -> tuple
    param_rows: list[Callable[[tuple], tuple]] | None
    #: slots are 0..n-1 with no defaults needed: values tuple IS the row
    identity_slots: bool


@dataclass
class CompiledUpdate:
    access: CompiledAccess
    where: EvalFn | None
    assignments: tuple[tuple[int, EvalFn], ...]
    #: batch-at-a-time artifacts (repro.hstore.vector.VectorDml)
    vector: Any = None


@dataclass
class CompiledDelete:
    access: CompiledAccess
    where: EvalFn | None
    #: batch-at-a-time artifacts (repro.hstore.vector.VectorDml)
    vector: Any = None


# ---------------------------------------------------------------------------
# Plan compilation
# ---------------------------------------------------------------------------


def compile_plan(plan: Plan, *, vectorize: bool = True) -> Plan:
    """Attach compiled artifacts to a physical plan (idempotent, in place).

    Recurses into nested subquery plans and ``INSERT ... SELECT`` sources so
    every plan an execution can reach carries its closures.  With
    ``vectorize`` (the default), full-scan SELECT/UPDATE/DELETE plans whose
    expressions all lower additionally carry batch-at-a-time artifacts
    (``.compiled.vector``); the executor prefers those and falls back to
    the row closures at the first sign of trouble.
    """
    if getattr(plan, "compiled", None) is not None:
        return plan
    if isinstance(plan, SelectPlan):
        plan.compiled = _compile_select(plan, vectorize=vectorize)
        if vectorize:
            plan.compiled.vector = lower_select(plan)
    elif isinstance(plan, InsertPlan):
        if plan.select is not None:
            compile_plan(plan.select, vectorize=vectorize)
        plan.compiled = _compile_insert(plan, vectorize=vectorize)
    elif isinstance(plan, UpdatePlan):
        plan.compiled = _compile_update(plan)
        if vectorize:
            plan.compiled.vector = lower_update(plan)
        _compile_subplans(
            [expr for _offset, expr in plan.assignments]
            + ([plan.where] if plan.where is not None else [])
            + _access_exprs(plan.access),
            vectorize=vectorize,
        )
    elif isinstance(plan, DeletePlan):
        plan.compiled = _compile_delete(plan)
        if vectorize:
            plan.compiled.vector = lower_delete(plan)
        _compile_subplans(
            ([plan.where] if plan.where is not None else [])
            + _access_exprs(plan.access),
            vectorize=vectorize,
        )
    return plan


def _access_exprs(access: Any) -> list[Expression]:
    """Probe expressions of an access path (may hold uncorrelated subqueries)."""
    if isinstance(access, IndexEqScan):
        return list(access.key_exprs)
    if isinstance(access, IndexRangeScan):
        return [
            expr for expr in (access.low, access.high) if expr is not None
        ]
    return []


def _compile_subplans(exprs: list[Expression], *, vectorize: bool = True) -> None:
    """Compile the plans of every planned subquery node in ``exprs``."""
    for expr in exprs:
        for node in walk(expr):
            if isinstance(
                node, (PlannedInSubquery, PlannedExists, PlannedScalarSubquery)
            ):
                compile_plan(node.plan, vectorize=vectorize)


def _compile_access(access: Any, columns: dict[str, int]) -> CompiledAccess:
    if isinstance(access, IndexEqScan):
        key_fns = tuple(compile_expr(expr, columns) for expr in access.key_exprs)
        return CompiledAccess(
            kind="eq",
            key_fn=make_tuple_fn(key_fns),
            key_offsets=_column_offsets(list(access.key_exprs), columns),
        )
    if isinstance(access, IndexRangeScan):
        return CompiledAccess(
            kind="range",
            low_fn=(
                compile_expr(access.low, columns)
                if access.low is not None
                else None
            ),
            high_fn=(
                compile_expr(access.high, columns)
                if access.high is not None
                else None
            ),
        )
    return CompiledAccess(kind="seq")


def _make_order_cmp(ascending: tuple[bool, ...]) -> Callable[[Any, Any], int]:
    """Comparator over ``(key_tuple, ext_row, out)`` sort items.

    Same semantics as the interpreted ``_make_comparator``: NULLs sort last
    regardless of direction, ties fall through to the next key.
    """

    def compare(left: Any, right: Any) -> int:
        for a, b, asc in zip(left[0], right[0], ascending):
            if a is None and b is None:
                continue
            if a is None:
                return 1
            if b is None:
                return -1
            if a == b:
                continue
            result = -1 if a < b else 1
            return result if asc else -result
        return 0

    return compare


def _compile_select(plan: SelectPlan, *, vectorize: bool = True) -> CompiledSelect:
    columns = plan.columns
    ext_columns = plan.ext_columns

    # nested subquery plans reachable from any expression of this plan
    reachable: list[Expression] = list(plan.output_exprs)
    reachable.extend(plan.group_exprs)
    reachable.extend(expr for expr, _asc in plan.order_by)
    if plan.where is not None:
        reachable.append(plan.where)
    if plan.having is not None:
        reachable.append(plan.having)
    for step in plan.joins:
        if step.on is not None:
            reachable.append(step.on)
        reachable.extend(_access_exprs(step.access))
    reachable.extend(_access_exprs(plan.access))
    _compile_subplans(reachable, vectorize=vectorize)

    access = _compile_access(plan.access, columns)
    joins = [
        CompiledJoin(
            access=_compile_access(step.access, columns),
            on=compile_expr(step.on, columns) if step.on is not None else None,
        )
        for step in plan.joins
    ]
    where_fn = (
        compile_expr(plan.where, columns) if plan.where is not None else None
    )

    group_key = make_tuple_fn(
        tuple(compile_expr(expr, columns) for expr in plan.group_exprs)
    )
    group_offsets = _column_offsets(plan.group_exprs, columns)
    agg_specs = tuple(
        (
            agg.name,
            compile_expr(agg.arg, columns) if agg.arg is not None else None,
            agg.distinct,
        )
        for agg in plan.aggregates
    )
    count_star_only = bool(agg_specs) and all(
        name == "count" and arg_fn is None and not distinct
        for name, arg_fn, distinct in agg_specs
    )

    post_having_fn = (
        compile_expr(plan.post_having, ext_columns)
        if plan.post_having is not None
        else None
    )
    project = make_tuple_fn(
        tuple(compile_expr(expr, ext_columns) for expr in plan.post_exprs)
    )
    output_offsets = _column_offsets(plan.post_exprs, ext_columns)
    row_project = (
        _row_getter(output_offsets) if output_offsets is not None else None
    )

    if plan.post_order:
        order_keys = make_tuple_fn(
            tuple(
                compile_expr(expr, ext_columns)
                for expr, _asc in plan.post_order
            )
        )
        order_cmp = _make_order_cmp(
            tuple(asc for _expr, asc in plan.post_order)
        )
    else:
        order_keys = None
        order_cmp = None

    point_lookup = (
        isinstance(plan.access, IndexEqScan)
        and not plan.joins
        and plan.where is None
        and not plan.grouped
        and not plan.distinct
        and not plan.post_order
    )

    return CompiledSelect(
        access=access,
        joins=joins,
        where=where_fn,
        group_key=group_key,
        group_offsets=group_offsets,
        agg_specs=agg_specs,
        count_star_only=count_star_only,
        post_having=post_having_fn,
        project=project,
        row_project=row_project,
        order_keys=order_keys,
        order_cmp=order_cmp,
        point_lookup=point_lookup,
    )


def _compile_insert(plan: InsertPlan, *, vectorize: bool = True) -> CompiledInsert:
    no_columns: dict[str, int] = {}
    row_fns: list[EvalFn] = []
    param_rows: list[Callable[[tuple], tuple]] | None = []
    for row in plan.rows:
        _compile_subplans(list(row), vectorize=vectorize)
        row_fns.append(
            make_tuple_fn(tuple(compile_expr(expr, no_columns) for expr in row))
        )
        if param_rows is not None and row and all(
            isinstance(expr, Parameter) for expr in row
        ):
            param_rows.append(
                _row_getter(tuple(expr.index for expr in row))
            )
        else:
            param_rows = None
    if not plan.rows:
        param_rows = None
    identity_slots = plan.slots == list(range(len(plan.slots)))
    return CompiledInsert(
        row_fns=row_fns,
        param_rows=param_rows,
        identity_slots=identity_slots,
    )


def _compile_update(plan: UpdatePlan) -> CompiledUpdate:
    columns = plan.columns
    return CompiledUpdate(
        access=_compile_access(plan.access, columns),
        where=(
            compile_expr(plan.where, columns)
            if plan.where is not None
            else None
        ),
        assignments=tuple(
            (offset, compile_expr(expr, columns))
            for offset, expr in plan.assignments
        ),
    )


def _compile_delete(plan: DeletePlan) -> CompiledDelete:
    columns = plan.columns
    return CompiledDelete(
        access=_compile_access(plan.access, columns),
        where=(
            compile_expr(plan.where, columns)
            if plan.where is not None
            else None
        ),
    )

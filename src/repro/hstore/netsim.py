"""Simulated network/IPC cost model.

The original demo ran H-Store and S-Store on real hardware and displayed live
transactions-per-second.  We cannot port the Java engine, so the throughput
comparison is grounded two ways:

1. **Counted round trips** (see :mod:`repro.hstore.stats`): exact counts of
   client↔PE and PE↔EE crossings — the two costs the paper says S-Store
   eliminates.
2. **Simulated time**: this module converts those counts into elapsed
   microseconds using a configurable latency model, yielding a simulated TPS
   figure whose *shape* (who wins, by what factor) is robust to Python's
   interpretation overhead.

Defaults are modeled on a LAN deployment of H-Store as described in the
H-Store paper [6]: a client↔PE round trip is a network RPC (~hundreds of
microseconds); a PE↔EE round trip is an in-process boundary crossing between
the Java PE and C++ EE (~single-digit microseconds); EE-internal work per
statement is ~a microsecond.

The multi-process deployment (:mod:`repro.parallel`) adds a third real
crossing: coordinator↔worker messages over OS pipes.  Those hops are counted
in ``EngineStats.ipc_roundtrips`` and charged at ``ipc_us`` each.  Because
shared-nothing workers run concurrently, a cluster's simulated elapsed time
is *not* the sum of all partition work: :func:`cluster_cost` computes the
makespan — coordinator-serial costs plus the busiest worker — which is what
a deployment with one core per partition would observe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hstore.stats import snapshot_delta

__all__ = ["LatencyModel", "SimulatedCost", "ClusterCost", "cluster_cost", "simulated_tps"]


@dataclass(frozen=True)
class LatencyModel:
    """Per-crossing latencies, in microseconds."""

    client_pe_us: float = 250.0
    pe_ee_us: float = 5.0
    ee_statement_us: float = 1.0
    log_flush_us: float = 40.0
    #: one coordinator↔worker message exchange over a local pipe/socket
    ipc_us: float = 20.0

    def cost_of(self, counters: dict[str, int]) -> "SimulatedCost":
        """Total simulated cost of a counter delta (see ``EngineStats.delta``)."""
        client = counters.get("client_pe_roundtrips", 0) * self.client_pe_us
        pe_ee = counters.get("pe_ee_roundtrips", 0) * self.pe_ee_us
        ee = counters.get("ee_statements", 0) * self.ee_statement_us
        log = counters.get("log_flushes", 0) * self.log_flush_us
        ipc = counters.get("ipc_roundtrips", 0) * self.ipc_us
        return SimulatedCost(
            client_pe_us=client,
            pe_ee_us=pe_ee,
            ee_us=ee,
            log_us=log,
            ipc_us=ipc,
        )


@dataclass(frozen=True)
class SimulatedCost:
    """Breakdown of simulated elapsed time, in microseconds."""

    client_pe_us: float
    pe_ee_us: float
    ee_us: float
    log_us: float
    ipc_us: float = 0.0

    @property
    def total_us(self) -> float:
        return (
            self.client_pe_us + self.pe_ee_us + self.ee_us + self.log_us + self.ipc_us
        )

    def throughput(self, transactions: int) -> float:
        """Simulated transactions per second for ``transactions`` completed txns."""
        if self.total_us <= 0:
            return float("inf")
        return transactions / (self.total_us / 1_000_000.0)


@dataclass(frozen=True)
class ClusterCost:
    """Simulated cost of a shared-nothing run: coordinator + parallel workers.

    The coordinator's client round trips and IPC hops are serial; each
    worker's PE/EE/log work proceeds concurrently with its peers.  The
    makespan is therefore the coordinator's serial time plus the slowest
    worker — the elapsed time of a deployment with one core per partition.
    """

    coordinator: SimulatedCost
    workers: tuple[SimulatedCost, ...]

    @property
    def makespan_us(self) -> float:
        slowest = max((w.total_us for w in self.workers), default=0.0)
        return self.coordinator.total_us + slowest

    @property
    def serialized_us(self) -> float:
        """What the same work would cost with zero parallelism (one core)."""
        return self.coordinator.total_us + sum(w.total_us for w in self.workers)

    @property
    def parallel_speedup(self) -> float:
        """serialized / makespan — bounded by the worker count."""
        if self.makespan_us <= 0:
            return 1.0
        return self.serialized_us / self.makespan_us

    def throughput(self, transactions: int) -> float:
        if self.makespan_us <= 0:
            return float("inf")
        return transactions / (self.makespan_us / 1_000_000.0)


def cluster_cost(
    coordinator_delta: dict[str, int],
    worker_deltas: list[dict[str, int]],
    *,
    model: LatencyModel | None = None,
) -> ClusterCost:
    """Simulated cluster cost from coordinator and per-worker counter deltas."""
    model = model or LatencyModel()
    return ClusterCost(
        coordinator=model.cost_of(coordinator_delta),
        workers=tuple(model.cost_of(delta) for delta in worker_deltas),
    )


def simulated_tps(
    stats_before: dict[str, int],
    stats_after: dict[str, int],
    *,
    model: LatencyModel | None = None,
) -> float:
    """Convenience: simulated TPS between two ``EngineStats.snapshot()`` calls."""
    model = model or LatencyModel()
    delta = snapshot_delta(stats_before, stats_after)
    cost = model.cost_of(delta)
    return cost.throughput(delta.get("txns_committed", 0))

"""Simulated network/IPC cost model.

The original demo ran H-Store and S-Store on real hardware and displayed live
transactions-per-second.  We cannot port the Java engine, so the throughput
comparison is grounded two ways:

1. **Counted round trips** (see :mod:`repro.hstore.stats`): exact counts of
   client↔PE and PE↔EE crossings — the two costs the paper says S-Store
   eliminates.
2. **Simulated time**: this module converts those counts into elapsed
   microseconds using a configurable latency model, yielding a simulated TPS
   figure whose *shape* (who wins, by what factor) is robust to Python's
   interpretation overhead.

Defaults are modeled on a LAN deployment of H-Store as described in the
H-Store paper [6]: a client↔PE round trip is a network RPC (~hundreds of
microseconds); a PE↔EE round trip is an in-process boundary crossing between
the Java PE and C++ EE (~single-digit microseconds); EE-internal work per
statement is ~a microsecond.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hstore.stats import EngineStats

__all__ = ["LatencyModel", "SimulatedCost"]


@dataclass(frozen=True)
class LatencyModel:
    """Per-crossing latencies, in microseconds."""

    client_pe_us: float = 250.0
    pe_ee_us: float = 5.0
    ee_statement_us: float = 1.0
    log_flush_us: float = 40.0

    def cost_of(self, counters: dict[str, int]) -> "SimulatedCost":
        """Total simulated cost of a counter delta (see ``EngineStats.delta``)."""
        client = counters.get("client_pe_roundtrips", 0) * self.client_pe_us
        pe_ee = counters.get("pe_ee_roundtrips", 0) * self.pe_ee_us
        ee = counters.get("ee_statements", 0) * self.ee_statement_us
        log = counters.get("log_flushes", 0) * self.log_flush_us
        return SimulatedCost(
            client_pe_us=client,
            pe_ee_us=pe_ee,
            ee_us=ee,
            log_us=log,
        )


@dataclass(frozen=True)
class SimulatedCost:
    """Breakdown of simulated elapsed time, in microseconds."""

    client_pe_us: float
    pe_ee_us: float
    ee_us: float
    log_us: float

    @property
    def total_us(self) -> float:
        return self.client_pe_us + self.pe_ee_us + self.ee_us + self.log_us

    def throughput(self, transactions: int) -> float:
        """Simulated transactions per second for ``transactions`` completed txns."""
        if self.total_us <= 0:
            return float("inf")
        return transactions / (self.total_us / 1_000_000.0)


def simulated_tps(
    stats_before: dict[str, int],
    stats_after: dict[str, int],
    *,
    model: LatencyModel | None = None,
) -> float:
    """Convenience: simulated TPS between two ``EngineStats.snapshot()`` calls."""
    model = model or LatencyModel()
    delta = EngineStats.delta(stats_before, stats_after)
    cost = model.cost_of(delta)
    return cost.throughput(delta.get("txns_committed", 0))

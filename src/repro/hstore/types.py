"""SQL type system for the H-Store substrate.

H-Store stores typed tuples in main-memory tables.  This module defines the
supported SQL types, value validation/coercion, and NULL handling rules used
throughout the engine (storage, expressions, and the parser's literal
handling).

The type set intentionally matches what the S-Store demo applications need:
integers (vote counts, station ids), floats (GPS coordinates, speeds),
strings (phone numbers, contestant names), booleans and timestamps (logical
clock ticks).
"""

from __future__ import annotations

import enum
import math
from typing import Any

from repro.errors import NullViolationError, TypeSystemError

__all__ = ["SqlType", "coerce_value", "is_comparable", "type_of_literal"]


class SqlType(enum.Enum):
    """Supported SQL column types."""

    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    FLOAT = "FLOAT"
    VARCHAR = "VARCHAR"
    BOOLEAN = "BOOLEAN"
    TIMESTAMP = "TIMESTAMP"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_INT32_MIN = -(2**31)
_INT32_MAX = 2**31 - 1
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: Types whose Python representation is ``int``.
_INTEGRAL = {SqlType.INTEGER, SqlType.BIGINT, SqlType.TIMESTAMP}

#: Types that order/compare with one another (numeric family).
_NUMERIC = {SqlType.INTEGER, SqlType.BIGINT, SqlType.FLOAT, SqlType.TIMESTAMP}


def coerce_value(value: Any, sql_type: SqlType, *, nullable: bool = True) -> Any:
    """Validate and coerce ``value`` to the Python representation of ``sql_type``.

    Returns the coerced value.  ``None`` is the SQL NULL and passes through
    when ``nullable`` is true; otherwise :class:`NullViolationError` is
    raised.  Lossless coercions are performed (``int`` → ``float`` for FLOAT
    columns, ``float``-with-integral-value → ``int`` for INTEGER columns);
    anything lossy or mistyped raises :class:`TypeSystemError`.
    """
    if value is None:
        if not nullable:
            raise NullViolationError(f"NULL not allowed for {sql_type} column")
        return None

    if sql_type in _INTEGRAL:
        return _coerce_integral(value, sql_type)
    if sql_type is SqlType.FLOAT:
        return _coerce_float(value)
    if sql_type is SqlType.VARCHAR:
        if isinstance(value, str):
            return value
        raise TypeSystemError(f"expected string for VARCHAR, got {type(value).__name__}")
    if sql_type is SqlType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        raise TypeSystemError(f"expected boolean, got {value!r}")
    raise TypeSystemError(f"unsupported SQL type {sql_type!r}")  # pragma: no cover


def _coerce_integral(value: Any, sql_type: SqlType) -> int:
    if isinstance(value, bool):
        raise TypeSystemError(f"expected {sql_type}, got boolean {value!r}")
    if isinstance(value, int):
        result = value
    elif isinstance(value, float):
        if not value.is_integer():
            raise TypeSystemError(f"cannot losslessly store {value!r} in {sql_type}")
        result = int(value)
    else:
        raise TypeSystemError(f"expected {sql_type}, got {type(value).__name__}")

    if sql_type is SqlType.INTEGER and not _INT32_MIN <= result <= _INT32_MAX:
        raise TypeSystemError(f"INTEGER out of range: {result}")
    if sql_type in (SqlType.BIGINT, SqlType.TIMESTAMP) and not _INT64_MIN <= result <= _INT64_MAX:
        raise TypeSystemError(f"{sql_type} out of range: {result}")
    return result


def _coerce_float(value: Any) -> float:
    if isinstance(value, bool):
        raise TypeSystemError(f"expected FLOAT, got boolean {value!r}")
    if isinstance(value, (int, float)):
        result = float(value)
        if math.isnan(result):
            raise TypeSystemError("NaN is not a valid FLOAT value")
        return result
    raise TypeSystemError(f"expected FLOAT, got {type(value).__name__}")


def is_comparable(left: SqlType, right: SqlType) -> bool:
    """Whether values of the two types may be compared with <, =, etc."""
    if left == right:
        return True
    return left in _NUMERIC and right in _NUMERIC


def type_of_literal(value: Any) -> SqlType:
    """Infer the SQL type of a Python literal (used by the parser/planner)."""
    if isinstance(value, bool):
        return SqlType.BOOLEAN
    if isinstance(value, int):
        return SqlType.INTEGER if _INT32_MIN <= value <= _INT32_MAX else SqlType.BIGINT
    if isinstance(value, float):
        return SqlType.FLOAT
    if isinstance(value, str):
        return SqlType.VARCHAR
    raise TypeSystemError(f"no SQL type for Python value {value!r}")

"""Engine statistics counters.

The paper's throughput argument is architectural: S-Store wins because it
removes client↔PE round trips (push-based workflows instead of polling) and
PE↔EE round trips (native windowing via EE triggers).  To make that argument
measurable, every layer crossing in this reproduction increments a counter
here.  Benchmarks E3–E5 read these counters directly.

Counter semantics:

``client_pe_roundtrips``
    One per client request/response pair — a ``call_procedure`` from a client
    session, or a poll.  Engine-internal PE-trigger invocations do *not*
    count: that is precisely the saving S-Store's push-based workflows buy.

``pe_ee_roundtrips``
    One per SQL statement the PE sends to the EE for execution.  Statements
    executed *inside* the EE by an EE trigger do not count — the second
    saving, bought by native windowing.

``ee_statements``
    Every statement the EE executes, regardless of who asked (superset of
    ``pe_ee_roundtrips``).

``ipc_roundtrips``
    One per coordinator↔worker message exchange over a real OS pipe in the
    multi-process deployment (:mod:`repro.parallel`).  Zero on in-process
    engines — the shared-nothing tax, measured rather than assumed.

``plan_cache_hits`` / ``plan_cache_misses``
    Ad-hoc ``execute_sql`` statements served from / missed by the engine's
    :class:`~repro.hstore.plancache.PlanCache`.  Stored-procedure statements
    never count: they are pre-planned once at registration.

A shared-nothing cluster runs one :class:`EngineStats` per worker process;
:meth:`merge` / ``+`` fold the per-worker views into one coordinator view
(instances are plain picklable dataclasses, so they travel over the worker
mailboxes unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Mapping, Union

__all__ = ["EngineStats", "snapshot_delta"]


def snapshot_delta(
    before: Mapping[str, int], after: Mapping[str, int]
) -> dict[str, int]:
    """Per-counter difference between two :meth:`EngineStats.snapshot` dicts."""
    keys = set(before) | set(after)
    return {key: after.get(key, 0) - before.get(key, 0) for key in sorted(keys)}


@dataclass
class EngineStats:
    """Mutable counters shared by the PE, EE and client layers."""

    client_pe_roundtrips: int = 0
    pe_ee_roundtrips: int = 0
    ee_statements: int = 0
    ee_trigger_firings: int = 0
    pe_trigger_firings: int = 0
    txns_committed: int = 0
    txns_aborted: int = 0
    rows_inserted: int = 0
    rows_updated: int = 0
    rows_deleted: int = 0
    stream_tuples_ingested: int = 0
    stream_tuples_gced: int = 0
    window_slides: int = 0
    window_expired_rows: int = 0
    log_records: int = 0
    log_flushes: int = 0
    snapshots_taken: int = 0
    ipc_roundtrips: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    #: the integer counter field names, in declaration order
    @classmethod
    def counter_names(cls) -> tuple[str, ...]:
        return tuple(f.name for f in fields(cls) if f.name != "extra")

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment an ad-hoc named counter (kept in :attr:`extra`)."""
        self.extra[name] = self.extra.get(name, 0) + amount

    def snapshot(self) -> dict[str, int]:
        """A flat copy of all counters (for benchmark deltas)."""
        result = {name: getattr(self, name) for name in self.counter_names()}
        result.update(self.extra)
        return result

    def reset(self) -> None:
        """Zero every counter."""
        for name, value in vars(self).items():
            if isinstance(value, int):
                setattr(self, name, 0)
        self.extra.clear()

    # -- aggregation ---------------------------------------------------------

    def merge(self, *others: "EngineStats") -> "EngineStats":
        """Fold other stats into this one, in place; returns ``self``.

        The coordinator of a multi-process cluster calls this to aggregate
        per-worker counters into one engine-wide view.
        """
        for other in others:
            for name in self.counter_names():
                setattr(self, name, getattr(self, name) + getattr(other, name))
            for key, value in other.extra.items():
                self.extra[key] = self.extra.get(key, 0) + value
        return self

    def __add__(self, other: "EngineStats") -> "EngineStats":
        if not isinstance(other, EngineStats):
            return NotImplemented
        return self.copy().merge(other)

    def copy(self) -> "EngineStats":
        clone = EngineStats(
            **{name: getattr(self, name) for name in self.counter_names()}
        )
        clone.extra = dict(self.extra)
        return clone

    def delta(
        self, before: Union["EngineStats", Mapping[str, int]]
    ) -> dict[str, int]:
        """Per-counter change on this instance since ``before``.

        ``before`` is an earlier :meth:`copy` of these counters or an
        earlier :meth:`snapshot`; the benchmark idiom is::

            before = engine.stats.snapshot()
            ...drive the workload...
            counters = engine.stats.delta(before)
        """
        if isinstance(before, EngineStats):
            before = before.snapshot()
        return snapshot_delta(before, self.snapshot())

"""Engine statistics counters.

The paper's throughput argument is architectural: S-Store wins because it
removes client↔PE round trips (push-based workflows instead of polling) and
PE↔EE round trips (native windowing via EE triggers).  To make that argument
measurable, every layer crossing in this reproduction increments a counter
here.  Benchmarks E3–E5 read these counters directly.

Counter semantics:

``client_pe_roundtrips``
    One per client request/response pair — a ``call_procedure`` from a client
    session, or a poll.  Engine-internal PE-trigger invocations do *not*
    count: that is precisely the saving S-Store's push-based workflows buy.

``pe_ee_roundtrips``
    One per SQL statement the PE sends to the EE for execution.  Statements
    executed *inside* the EE by an EE trigger do not count — the second
    saving, bought by native windowing.

``ee_statements``
    Every statement the EE executes, regardless of who asked (superset of
    ``pe_ee_roundtrips``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EngineStats"]


@dataclass
class EngineStats:
    """Mutable counters shared by the PE, EE and client layers."""

    client_pe_roundtrips: int = 0
    pe_ee_roundtrips: int = 0
    ee_statements: int = 0
    ee_trigger_firings: int = 0
    pe_trigger_firings: int = 0
    txns_committed: int = 0
    txns_aborted: int = 0
    rows_inserted: int = 0
    rows_updated: int = 0
    rows_deleted: int = 0
    stream_tuples_ingested: int = 0
    stream_tuples_gced: int = 0
    window_slides: int = 0
    log_records: int = 0
    log_flushes: int = 0
    snapshots_taken: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment an ad-hoc named counter (kept in :attr:`extra`)."""
        self.extra[name] = self.extra.get(name, 0) + amount

    def snapshot(self) -> dict[str, int]:
        """A flat copy of all counters (for benchmark deltas)."""
        result = {
            name: getattr(self, name)
            for name in (
                "client_pe_roundtrips",
                "pe_ee_roundtrips",
                "ee_statements",
                "ee_trigger_firings",
                "pe_trigger_firings",
                "txns_committed",
                "txns_aborted",
                "rows_inserted",
                "rows_updated",
                "rows_deleted",
                "stream_tuples_ingested",
                "stream_tuples_gced",
                "window_slides",
                "log_records",
                "log_flushes",
                "snapshots_taken",
            )
        }
        result.update(self.extra)
        return result

    def reset(self) -> None:
        """Zero every counter."""
        for name, value in vars(self).items():
            if isinstance(value, int):
                setattr(self, name, 0)
        self.extra.clear()

    @staticmethod
    def delta(before: dict[str, int], after: dict[str, int]) -> dict[str, int]:
        """Per-counter difference between two :meth:`snapshot` results."""
        keys = set(before) | set(after)
        return {key: after.get(key, 0) - before.get(key, 0) for key in sorted(keys)}

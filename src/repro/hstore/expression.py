"""Expression AST and evaluation.

Expressions appear in SELECT lists, WHERE/HAVING clauses, UPDATE SET clauses
and INSERT VALUES.  The AST is built by the parser and evaluated by the
executor against an :class:`EvalContext` that resolves column references and
statement parameters.

SQL three-valued logic is honoured where it matters for the engine's
workloads: any comparison or arithmetic with NULL yields NULL, and a WHERE
predicate only accepts rows whose predicate is exactly TRUE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import BindingError, PlanningError, TypeSystemError

__all__ = [
    "EvalContext",
    "Expression",
    "Literal",
    "ColumnRef",
    "Parameter",
    "BinaryOp",
    "UnaryOp",
    "Comparison",
    "BooleanOp",
    "NotOp",
    "InList",
    "Between",
    "Like",
    "IsNull",
    "FunctionCall",
    "AggregateCall",
    "Star",
    "walk",
]


@dataclass
class EvalContext:
    """Everything an expression needs at evaluation time.

    ``columns`` maps a fully-qualified column key (``"alias.column"``) and,
    when unambiguous, the bare column name to its position in ``row``.
    ``executor`` is the execution engine evaluating the statement; planned
    subquery nodes run their inner plans through it.
    """

    columns: dict[str, int]
    row: tuple[Any, ...] = ()
    params: tuple[Any, ...] = ()
    executor: Any = None

    def resolve(self, name: str) -> Any:
        try:
            return self.row[self.columns[name]]
        except KeyError:
            raise BindingError(
                f"cannot resolve column {name!r}; known: {sorted(self.columns)}"
            ) from None

    def with_row(self, row: tuple[Any, ...]) -> "EvalContext":
        return EvalContext(
            columns=self.columns,
            row=row,
            params=self.params,
            executor=self.executor,
        )


class Expression:
    """Base class for all expression nodes."""

    def eval(self, ctx: EvalContext) -> Any:
        raise NotImplementedError

    def children(self) -> tuple["Expression", ...]:
        return ()

    def sql(self) -> str:
        """Render back to SQL text (used in plan explanations and tests)."""
        raise NotImplementedError


def walk(expr: Expression) -> Iterator[Expression]:
    """Depth-first iterator over an expression tree (node first)."""
    yield expr
    for child in expr.children():
        yield from walk(child)


@dataclass(frozen=True)
class Literal(Expression):
    value: Any

    def eval(self, ctx: EvalContext) -> Any:
        return self.value

    def sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to ``table_alias.column`` or a bare ``column``."""

    name: str
    table: str | None = None

    @property
    def key(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name

    def eval(self, ctx: EvalContext) -> Any:
        return ctx.resolve(self.key)

    def sql(self) -> str:
        return self.key


@dataclass(frozen=True)
class Parameter(Expression):
    """A positional ``?`` placeholder (0-based ``index``)."""

    index: int

    def eval(self, ctx: EvalContext) -> Any:
        if self.index >= len(ctx.params):
            raise BindingError(
                f"statement requires parameter #{self.index + 1}, "
                f"only {len(ctx.params)} bound"
            )
        return ctx.params[self.index]

    def sql(self) -> str:
        return "?"


_ARITH: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if isinstance(a, float) or isinstance(b, float) else _int_div(a, b),
    "%": lambda a, b: a % b,
}


def _int_div(a: int, b: int) -> int:
    """SQL integer division truncates toward zero."""
    if b == 0:
        raise TypeSystemError("division by zero")
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


@dataclass(frozen=True)
class BinaryOp(Expression):
    op: str
    left: Expression
    right: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def eval(self, ctx: EvalContext) -> Any:
        left = self.left.eval(ctx)
        right = self.right.eval(ctx)
        if left is None or right is None:
            return None
        if self.op == "||":
            return str(left) + str(right)
        try:
            fn = _ARITH[self.op]
        except KeyError:  # pragma: no cover - parser only emits known ops
            raise PlanningError(f"unknown binary operator {self.op!r}") from None
        if self.op in ("/", "%") and right == 0:
            raise TypeSystemError("division by zero")
        return fn(left, right)

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


@dataclass(frozen=True)
class UnaryOp(Expression):
    op: str  # only "-" is produced by the parser
    operand: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def eval(self, ctx: EvalContext) -> Any:
        value = self.operand.eval(ctx)
        if value is None:
            return None
        if self.op == "-":
            return -value
        raise PlanningError(f"unknown unary operator {self.op!r}")  # pragma: no cover

    def sql(self) -> str:
        return f"(-{self.operand.sql()})"


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expression):
    op: str
    left: Expression
    right: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def eval(self, ctx: EvalContext) -> Any:
        left = self.left.eval(ctx)
        right = self.right.eval(ctx)
        if left is None or right is None:
            return None
        try:
            return _COMPARATORS[self.op](left, right)
        except KeyError:  # pragma: no cover
            raise PlanningError(f"unknown comparator {self.op!r}") from None
        except TypeError:
            raise TypeSystemError(
                f"cannot compare {left!r} {self.op} {right!r}"
            ) from None

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


@dataclass(frozen=True)
class BooleanOp(Expression):
    """N-ary AND / OR with SQL three-valued logic."""

    op: str  # "AND" | "OR"
    operands: tuple[Expression, ...]

    def children(self) -> tuple[Expression, ...]:
        return self.operands

    def eval(self, ctx: EvalContext) -> Any:
        saw_null = False
        for operand in self.operands:
            value = operand.eval(ctx)
            if value is None:
                saw_null = True
            elif self.op == "AND" and not value:
                return False
            elif self.op == "OR" and value:
                return True
        if saw_null:
            return None
        return self.op == "AND"

    def sql(self) -> str:
        joined = f" {self.op} ".join(part.sql() for part in self.operands)
        return f"({joined})"


@dataclass(frozen=True)
class NotOp(Expression):
    operand: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def eval(self, ctx: EvalContext) -> Any:
        value = self.operand.eval(ctx)
        if value is None:
            return None
        return not value

    def sql(self) -> str:
        return f"(NOT {self.operand.sql()})"


@dataclass(frozen=True)
class InList(Expression):
    operand: Expression
    options: tuple[Expression, ...]
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, *self.options)

    def eval(self, ctx: EvalContext) -> Any:
        value = self.operand.eval(ctx)
        if value is None:
            return None
        saw_null = False
        found = False
        for option in self.options:
            candidate = option.eval(ctx)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                found = True
                break
        if found:
            return not self.negated
        if saw_null:
            return None
        return self.negated

    def sql(self) -> str:
        options = ", ".join(option.sql() for option in self.options)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.sql()} {keyword} ({options}))"


@dataclass(frozen=True)
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, self.low, self.high)

    def eval(self, ctx: EvalContext) -> Any:
        value = self.operand.eval(ctx)
        low = self.low.eval(ctx)
        high = self.high.eval(ctx)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return not result if self.negated else result

    def sql(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand.sql()} {keyword} {self.low.sql()} AND {self.high.sql()})"


@dataclass(frozen=True)
class Like(Expression):
    """SQL LIKE with ``%`` (any run) and ``_`` (any one char) wildcards."""

    operand: Expression
    pattern: Expression
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, self.pattern)

    def eval(self, ctx: EvalContext) -> Any:
        value = self.operand.eval(ctx)
        pattern = self.pattern.eval(ctx)
        if value is None or pattern is None:
            return None
        result = _like_match(str(value), str(pattern))
        return not result if self.negated else result

    def sql(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand.sql()} {keyword} {self.pattern.sql()})"


def _like_match(value: str, pattern: str) -> bool:
    """Iterative LIKE matcher (no regex, no catastrophic backtracking)."""
    # Classic two-pointer wildcard match, '%' == '*', '_' == '?'.
    v_idx = p_idx = 0
    star_p = star_v = -1
    while v_idx < len(value):
        if p_idx < len(pattern) and (pattern[p_idx] == "_" or pattern[p_idx] == value[v_idx]):
            v_idx += 1
            p_idx += 1
        elif p_idx < len(pattern) and pattern[p_idx] == "%":
            star_p = p_idx
            star_v = v_idx
            p_idx += 1
        elif star_p != -1:
            star_v += 1
            v_idx = star_v
            p_idx = star_p + 1
        else:
            return False
    while p_idx < len(pattern) and pattern[p_idx] == "%":
        p_idx += 1
    return p_idx == len(pattern)


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def eval(self, ctx: EvalContext) -> Any:
        value = self.operand.eval(ctx)
        return (value is not None) if self.negated else (value is None)

    def sql(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.sql()} {keyword})"


def _sql_abs(value: Any) -> Any:
    return abs(value)


def _sql_coalesce(*values: Any) -> Any:
    for value in values:
        if value is not None:
            return value
    return None


_SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "abs": _sql_abs,
    "lower": lambda s: s.lower(),
    "upper": lambda s: s.upper(),
    "length": lambda s: len(s),
    "coalesce": _sql_coalesce,
    "sqrt": lambda x: x**0.5,
    "floor": lambda x: int(x // 1),
    "ceil": lambda x: -int((-x) // 1),
    "min2": min,
    "max2": max,
}


@dataclass(frozen=True)
class FunctionCall(Expression):
    name: str
    args: tuple[Expression, ...] = ()

    def children(self) -> tuple[Expression, ...]:
        return self.args

    def eval(self, ctx: EvalContext) -> Any:
        try:
            fn = _SCALAR_FUNCTIONS[self.name.lower()]
        except KeyError:
            raise PlanningError(f"unknown function {self.name!r}") from None
        values = [arg.eval(ctx) for arg in self.args]
        if self.name.lower() != "coalesce" and any(value is None for value in values):
            return None
        return fn(*values)

    def sql(self) -> str:
        args = ", ".join(arg.sql() for arg in self.args)
        return f"{self.name.upper()}({args})"


AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max"})


@dataclass(frozen=True)
class AggregateCall(Expression):
    """``COUNT(*)``, ``COUNT(x)``, ``SUM/AVG/MIN/MAX(expr)``.

    Aggregates never evaluate directly: the aggregate executor computes them
    over a group and substitutes their value.  ``eval`` therefore raises.
    """

    name: str  # lower-cased
    arg: Expression | None = None  # None means COUNT(*)
    distinct: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.arg,) if self.arg is not None else ()

    def eval(self, ctx: EvalContext) -> Any:
        raise PlanningError(
            f"aggregate {self.name.upper()} evaluated outside GROUP BY context"
        )

    def sql(self) -> str:
        inner = "*" if self.arg is None else self.arg.sql()
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name.upper()}({inner})"


@dataclass(frozen=True, eq=False)
class InSubquery(Expression):
    """``operand [NOT] IN (SELECT ...)`` — parsed form.

    The planner replaces this with :class:`PlannedInSubquery`; evaluating
    the raw form is a planning bug.  The inner query may reference columns
    of the enclosing statement (one level up); the planner decorrelates
    such references into parameters.
    """

    operand: Expression
    select: Any  # SelectStmt (kept loose to avoid an import cycle)
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def eval(self, ctx: EvalContext) -> Any:  # pragma: no cover - planner bug
        raise PlanningError("IN (SELECT ...) must be planned before evaluation")

    def sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.sql()} {keyword} (<subquery>))"


@dataclass(frozen=True, eq=False)
class Exists(Expression):
    """``EXISTS (SELECT ...)`` — parsed form (correlation allowed, one level)."""

    select: Any  # SelectStmt

    def eval(self, ctx: EvalContext) -> Any:  # pragma: no cover - planner bug
        raise PlanningError("EXISTS must be planned before evaluation")

    def sql(self) -> str:
        return "(EXISTS (<subquery>))"


def _subquery_params(ctx: EvalContext, outer_offsets: tuple[int, ...]) -> tuple:
    """Statement params extended with the correlated outer-column values."""
    return tuple(ctx.params) + tuple(ctx.row[offset] for offset in outer_offsets)


@dataclass(frozen=True, eq=False)
class PlannedInSubquery(Expression):
    """Planned ``IN (SELECT ...)``: the inner plan runs per evaluation.

    ``outer_offsets`` lists the combined-row positions of correlated outer
    columns; their current values are appended to the statement parameters
    (the planner rewrote the inner references to the matching ``?`` slots).
    """

    operand: Expression
    plan: Any  # SelectPlan
    negated: bool = False
    outer_offsets: tuple[int, ...] = ()

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def eval(self, ctx: EvalContext) -> Any:
        if ctx.executor is None:
            raise PlanningError("subquery evaluation requires an executor")
        value = self.operand.eval(ctx)
        if value is None:
            return None
        result = ctx.executor.execute_select_plan(
            self.plan, _subquery_params(ctx, self.outer_offsets)
        )
        saw_null = False
        for (candidate,) in result.rows:
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return not self.negated
        if saw_null:
            return None
        return self.negated

    def sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.sql()} {keyword} (<subquery>))"


@dataclass(frozen=True, eq=False)
class PlannedExists(Expression):
    """Planned ``EXISTS (SELECT ...)`` (optionally correlated)."""

    plan: Any  # SelectPlan
    outer_offsets: tuple[int, ...] = ()

    def eval(self, ctx: EvalContext) -> Any:
        if ctx.executor is None:
            raise PlanningError("subquery evaluation requires an executor")
        result = ctx.executor.execute_select_plan(
            self.plan, _subquery_params(ctx, self.outer_offsets)
        )
        return bool(result.rows)

    def sql(self) -> str:
        return "(EXISTS (<subquery>))"


@dataclass(frozen=True, eq=False)
class ScalarSubquery(Expression):
    """``(SELECT ...)`` used as a value — parsed form."""

    select: Any  # SelectStmt

    def eval(self, ctx: EvalContext) -> Any:  # pragma: no cover - planner bug
        raise PlanningError("scalar subquery must be planned before evaluation")

    def sql(self) -> str:
        return "(<scalar subquery>)"


@dataclass(frozen=True, eq=False)
class PlannedScalarSubquery(Expression):
    """Planned scalar subquery: yields the single value, NULL when empty.

    More than one row is a runtime error, per standard SQL.
    """

    plan: Any  # SelectPlan
    outer_offsets: tuple[int, ...] = ()

    def eval(self, ctx: EvalContext) -> Any:
        if ctx.executor is None:
            raise PlanningError("subquery evaluation requires an executor")
        result = ctx.executor.execute_select_plan(
            self.plan, _subquery_params(ctx, self.outer_offsets)
        )
        if not result.rows:
            return None
        if len(result.rows) > 1:
            raise TypeSystemError(
                f"scalar subquery returned {len(result.rows)} rows"
            )
        return result.rows[0][0]

    def sql(self) -> str:
        return "(<scalar subquery>)"


@dataclass(frozen=True)
class CaseExpr(Expression):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``.

    With an operand it is a *simple* CASE (operand compared to each WHEN
    value); without, a *searched* CASE (each WHEN is a predicate).
    """

    whens: tuple[tuple[Expression, Expression], ...]
    operand: Expression | None = None
    default: Expression | None = None

    def children(self) -> tuple[Expression, ...]:
        nodes: list[Expression] = []
        if self.operand is not None:
            nodes.append(self.operand)
        for when, then in self.whens:
            nodes.append(when)
            nodes.append(then)
        if self.default is not None:
            nodes.append(self.default)
        return tuple(nodes)

    def eval(self, ctx: EvalContext) -> Any:
        if self.operand is not None:
            subject = self.operand.eval(ctx)
            for when, then in self.whens:
                candidate = when.eval(ctx)
                if subject is not None and candidate == subject:
                    return then.eval(ctx)
        else:
            for when, then in self.whens:
                if when.eval(ctx) is True:
                    return then.eval(ctx)
        if self.default is not None:
            return self.default.eval(ctx)
        return None

    def sql(self) -> str:
        parts = ["CASE"]
        if self.operand is not None:
            parts.append(self.operand.sql())
        for when, then in self.whens:
            parts.append(f"WHEN {when.sql()} THEN {then.sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.sql()}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"


@dataclass(frozen=True)
class Star(Expression):
    """``SELECT *`` (optionally ``alias.*``); expanded by the planner."""

    table: str | None = None

    def eval(self, ctx: EvalContext) -> Any:  # pragma: no cover - planner expands
        raise PlanningError("* must be expanded by the planner before evaluation")

    def sql(self) -> str:
        return f"{self.table}.*" if self.table else "*"


def rewrite(
    expr: Expression,
    transform: Callable[[Expression], Expression | None],
) -> Expression:
    """Generic top-down expression rewriter.

    ``transform`` is called on each node first; returning a replacement stops
    descent into that node, returning ``None`` rebuilds it with rewritten
    children.  Frozen dataclass nodes are reconstructed only when a child
    actually changed.
    """
    import dataclasses as _dataclasses

    replacement = transform(expr)
    if replacement is not None:
        return replacement

    kwargs: dict[str, Any] = {}
    changed = False
    for fld in _dataclasses.fields(expr):
        value = getattr(expr, fld.name)
        if isinstance(value, Expression):
            new_value = rewrite(value, transform)
            changed = changed or new_value is not value
            kwargs[fld.name] = new_value
        elif (
            isinstance(value, tuple)
            and value
            and all(isinstance(item, Expression) for item in value)
        ):
            new_tuple = tuple(rewrite(item, transform) for item in value)
            changed = changed or any(
                new is not old for new, old in zip(new_tuple, value)
            )
            kwargs[fld.name] = new_tuple
        elif (
            isinstance(value, tuple)
            and value
            and all(
                isinstance(item, tuple)
                and len(item) == 2
                and isinstance(item[0], Expression)
                for item in value
            )
        ):
            new_pairs = tuple(
                (rewrite(a, transform), rewrite(b, transform)) for a, b in value
            )
            changed = changed or new_pairs != value
            kwargs[fld.name] = new_pairs
        else:
            kwargs[fld.name] = value
    if not changed:
        return expr
    return _dataclasses.replace(expr, **kwargs)


def contains_aggregate(expr: Expression) -> bool:
    """Whether any node in the tree is an :class:`AggregateCall`."""
    return any(isinstance(node, AggregateCall) for node in walk(expr))


def find_parameters(expr: Expression) -> list[Parameter]:
    """All parameter placeholders in the tree, in tree order."""
    return [node for node in walk(expr) if isinstance(node, Parameter)]

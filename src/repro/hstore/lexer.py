"""SQL tokenizer.

Produces a flat token stream for the recursive-descent parser.  The token
set covers the SQL subset the engine executes: identifiers (optionally
double-quoted), integer/float/string literals, ``?`` parameters, operators
and punctuation.  Keywords are recognized case-insensitively but remain
plain ``IDENT`` tokens until the parser classifies them, which keeps the
lexer independent of grammar changes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import SqlSyntaxError

__all__ = ["TokenType", "Token", "tokenize"]


class TokenType(enum.Enum):
    IDENT = "IDENT"
    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    STRING = "STRING"
    PARAM = "PARAM"  # ?
    OPERATOR = "OPERATOR"  # = <> != < <= > >= + - * / % ||
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    COMMA = "COMMA"
    DOT = "DOT"
    SEMICOLON = "SEMICOLON"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    @property
    def upper(self) -> str:
        return self.text.upper()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.type.name}, {self.text!r}@{self.position})"


_SINGLE_CHAR = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    ";": TokenType.SEMICOLON,
}

_TWO_CHAR_OPERATORS = ("<=", ">=", "<>", "!=", "||")
_ONE_CHAR_OPERATORS = "=<>+-*/%"


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`SqlSyntaxError` on bad input."""
    return list(_tokens(sql))


def _tokens(sql: str) -> Iterator[Token]:
    pos = 0
    length = len(sql)
    while pos < length:
        char = sql[pos]

        if char.isspace():
            pos += 1
            continue

        # -- comments ----------------------------------------------------
        if char == "-" and sql.startswith("--", pos):
            newline = sql.find("\n", pos)
            pos = length if newline == -1 else newline + 1
            continue

        # -- punctuation (DOT needs care: 1.5 is a float, tbl.col is a dot)
        if char in _SINGLE_CHAR:
            if char == "." and pos + 1 < length and sql[pos + 1].isdigit():
                pass  # fall through to number scanning below
            else:
                yield Token(_SINGLE_CHAR[char], char, pos)
                pos += 1
                continue

        # -- parameters ---------------------------------------------------
        if char == "?":
            yield Token(TokenType.PARAM, "?", pos)
            pos += 1
            continue

        # -- string literals (single-quoted, '' escapes a quote) ----------
        if char == "'":
            token, pos = _scan_string(sql, pos)
            yield token
            continue

        # -- numbers -------------------------------------------------------
        if char.isdigit() or (char == "." and pos + 1 < length and sql[pos + 1].isdigit()):
            token, pos = _scan_number(sql, pos)
            yield token
            continue

        # -- identifiers / keywords ----------------------------------------
        if char.isalpha() or char == "_":
            start = pos
            while pos < length and (sql[pos].isalnum() or sql[pos] == "_"):
                pos += 1
            yield Token(TokenType.IDENT, sql[start:pos], start)
            continue

        # -- quoted identifiers ---------------------------------------------
        if char == '"':
            end = sql.find('"', pos + 1)
            if end == -1:
                raise SqlSyntaxError("unterminated quoted identifier", pos)
            yield Token(TokenType.IDENT, sql[pos + 1 : end], pos)
            pos = end + 1
            continue

        # -- operators ---------------------------------------------------
        two = sql[pos : pos + 2]
        if two in _TWO_CHAR_OPERATORS:
            yield Token(TokenType.OPERATOR, two, pos)
            pos += 2
            continue
        if char in _ONE_CHAR_OPERATORS:
            yield Token(TokenType.OPERATOR, char, pos)
            pos += 1
            continue

        raise SqlSyntaxError(f"unexpected character {char!r}", pos)

    yield Token(TokenType.EOF, "", length)


def _scan_string(sql: str, start: int) -> tuple[Token, int]:
    """Scan a single-quoted string starting at ``start`` (the quote).

    Returns the token and the position just past the closing quote.
    """
    parts: list[str] = []
    pos = start + 1
    length = len(sql)
    while pos < length:
        char = sql[pos]
        if char == "'":
            if pos + 1 < length and sql[pos + 1] == "'":
                parts.append("'")
                pos += 2
                continue
            return Token(TokenType.STRING, "".join(parts), start), pos + 1
        parts.append(char)
        pos += 1
    raise SqlSyntaxError("unterminated string literal", start)


def _scan_number(sql: str, start: int) -> tuple[Token, int]:
    pos = start
    length = len(sql)
    saw_dot = False
    saw_exp = False
    while pos < length:
        char = sql[pos]
        if char.isdigit():
            pos += 1
        elif char == "." and not saw_dot and not saw_exp:
            saw_dot = True
            pos += 1
        elif char in "eE" and not saw_exp and pos > start:
            # exponent must be followed by optional sign + digit
            nxt = pos + 1
            if nxt < length and sql[nxt] in "+-":
                nxt += 1
            if nxt < length and sql[nxt].isdigit():
                saw_exp = True
                pos = nxt + 1
            else:
                break
        else:
            break
    text = sql[start:pos]
    token_type = TokenType.FLOAT if (saw_dot or saw_exp) else TokenType.INTEGER
    return Token(token_type, text, start), pos

"""Execution engine (EE): runs physical plans against in-memory storage.

One :class:`ExecutionEngine` instance is the EE half of one partition.  It
owns the partition's table storage and executes pre-compiled plans from the
planner.  All mutations are recorded in the active transaction's undo log so
the partition engine can roll back on abort.

The EE also hosts the *post-insert hook* registry through which the S-Store
streaming layer implements EE triggers and native window maintenance: when an
INSERT lands new tuples in a stream or window table, registered hooks run
synchronously inside the same transaction — the "continuous processing within
a given transaction execution" of the paper (§2), with no PE↔EE round trip.
"""

from __future__ import annotations

import functools
from collections import Counter
from dataclasses import dataclass
from itertools import compress
from typing import Any, Callable, Iterator

from repro.errors import BindingError, StorageError
from repro.hstore.catalog import Catalog, TableEntry
from repro.hstore.expression import AggregateCall, EvalContext
from repro.hstore.planner import (
    AccessPath,
    DeletePlan,
    IndexEqScan,
    IndexRangeScan,
    InsertPlan,
    Plan,
    SelectPlan,
    SeqScan,
    UpdatePlan,
)
from repro.hstore.stats import EngineStats
from repro.hstore.table import Row, Table
from repro.hstore.txn import TransactionContext
from repro.hstore.vector import (
    VectorContext,
    agg_fold,
    normalize_mask,
    selected_values,
)

__all__ = ["ExecutionEngine", "ResultSet", "InsertHook"]

#: Signature of a post-insert hook: (txn, table_name, inserted_rowids).
InsertHook = Callable[[TransactionContext, str, list[int]], None]

_MAX_HOOK_DEPTH = 64

#: shared empty candidate list for missed index probes (never mutated)
_NO_ROWS: list[Row] = []


@dataclass
class ResultSet:
    """The rows and column names a SELECT produced."""

    columns: list[str]
    rows: list[tuple[Any, ...]]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def scalar(self) -> Any:
        """First column of the first row (None when empty)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def first(self) -> tuple[Any, ...] | None:
        return self.rows[0] if self.rows else None

    def column(self, name: str) -> list[Any]:
        """All values of one named output column."""
        try:
            offset = self.columns.index(name)
        except ValueError:
            raise BindingError(
                f"result has no column {name!r}; columns: {self.columns}"
            ) from None
        return [row[offset] for row in self.rows]

    def as_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


#: full scans over tables smaller than this stay on the row loop: the
#: batch setup cost (columnar mirror build/refresh after DML + one list
#: allocation per column expression) outruns the per-row dispatch it
#: saves until a few dozen rows, which makes update-heavy workloads over
#: tiny hot tables (E13's BikeShare tick loop) net slower
VECTOR_MIN_ROWS = 64


class ExecutionEngine:
    """Storage + query execution for one partition."""

    def __init__(self, catalog: Catalog, stats: EngineStats | None = None) -> None:
        self._catalog = catalog
        self._tables: dict[str, Table] = {}
        self._insert_hooks: dict[str, list[InsertHook]] = {}
        self._hook_depth = 0
        self.stats = stats if stats is not None else EngineStats()
        #: per-engine override of the batch-execution floor (tests pin it
        #: to 0 so tiny differential tables still take the vector path)
        self.vector_min_rows = VECTOR_MIN_ROWS

    # -- storage management ----------------------------------------------------

    def create_storage(self, entry: TableEntry) -> Table:
        if entry.name in self._tables:
            raise StorageError(f"storage for {entry.name!r} already exists")
        table = Table(entry)
        self._tables[entry.name] = table
        return table

    def drop_storage(self, name: str) -> None:
        self._tables.pop(name.lower(), None)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise StorageError(f"no storage for table {name!r}") from None

    def tables(self) -> dict[str, Table]:
        return dict(self._tables)

    # -- hook registry (EE triggers / window maintenance) ---------------------

    def add_insert_hook(self, table_name: str, hook: InsertHook) -> None:
        self._insert_hooks.setdefault(table_name.lower(), []).append(hook)

    def remove_insert_hook(self, table_name: str, hook: InsertHook) -> None:
        hooks = self._insert_hooks.get(table_name.lower(), [])
        if hook in hooks:
            hooks.remove(hook)

    def _fire_insert_hooks(
        self, txn: TransactionContext, table_name: str, rowids: list[int]
    ) -> None:
        hooks = self._insert_hooks.get(table_name, ())
        if not hooks or not rowids:
            return
        if self._hook_depth >= _MAX_HOOK_DEPTH:
            raise StorageError(
                f"insert-hook recursion deeper than {_MAX_HOOK_DEPTH} "
                f"(trigger cycle through {table_name!r}?)"
            )
        self._hook_depth += 1
        try:
            for hook in list(hooks):
                hook(txn, table_name, rowids)
        finally:
            self._hook_depth -= 1

    # -- plan execution ----------------------------------------------------------

    def execute(
        self,
        plan: Plan,
        params: tuple[Any, ...] = (),
        txn: TransactionContext | None = None,
    ) -> ResultSet | int:
        """Execute a plan; SELECT returns a :class:`ResultSet`, DML a count."""
        self.stats.ee_statements += 1
        if isinstance(plan, SelectPlan):
            self._check_params(plan.param_count, params)
            return self._execute_select(plan, params)
        if txn is None:
            raise StorageError("DML execution requires an active transaction")
        if isinstance(plan, InsertPlan):
            self._check_params(plan.param_count, params)
            return self._execute_insert(plan, params, txn)
        if isinstance(plan, UpdatePlan):
            self._check_params(plan.param_count, params)
            return self._execute_update(plan, params, txn)
        if isinstance(plan, DeletePlan):
            self._check_params(plan.param_count, params)
            return self._execute_delete(plan, params, txn)
        raise StorageError(f"EE cannot execute {type(plan).__name__}")

    @staticmethod
    def _check_params(expected: int, params: tuple[Any, ...]) -> None:
        if len(params) < expected:
            raise BindingError(
                f"statement expects {expected} parameters, got {len(params)}"
            )

    def execute_select_plan(self, plan: SelectPlan, params: tuple[Any, ...]):
        """Run a (sub)query plan in-EE; used by planned subquery nodes."""
        self.stats.bump("subquery_executions")
        return self._execute_select(plan, params)

    # -- access paths ------------------------------------------------------------

    def _iter_access(
        self,
        access: AccessPath,
        params: tuple[Any, ...],
        outer_columns: dict[str, int] | None = None,
        outer_row: tuple[Any, ...] = (),
        probe_ctx: EvalContext | None = None,
    ) -> Iterator[tuple[int, Row]]:
        table = self.table(access.table)

        if isinstance(access, SeqScan):
            yield from table.scan()
            return

        if probe_ctx is None:
            probe_ctx = EvalContext(
                columns=outer_columns or {}, row=outer_row, params=params,
                executor=self,
            )

        if isinstance(access, IndexEqScan):
            key = tuple(expr.eval(probe_ctx) for expr in access.key_exprs)
            index = table.index(access.index)
            for rowid in sorted(index.lookup(key)):
                yield rowid, table.get(rowid)
            return

        if isinstance(access, IndexRangeScan):
            index = table.index(access.index)
            low = (
                (access.low.eval(probe_ctx),) if access.low is not None else None
            )
            high = (
                (access.high.eval(probe_ctx),) if access.high is not None else None
            )
            # A NULL bound matches nothing (SQL comparison semantics).
            if (access.low is not None and low == (None,)) or (
                access.high is not None and high == (None,)
            ):
                return
            for _key, rowids in index.range_scan(
                low,
                high,
                low_inclusive=access.low_inclusive,
                high_inclusive=access.high_inclusive,
            ):
                for rowid in sorted(rowids):
                    yield rowid, table.get(rowid)
            return

        raise StorageError(f"unknown access path {type(access).__name__}")  # pragma: no cover

    # -- SELECT -------------------------------------------------------------------

    def _execute_select(
        self, plan: SelectPlan, params: tuple[Any, ...]
    ) -> ResultSet:
        view_read = plan.view_read
        if view_read is not None:
            # delta-view lowering (repro.ivm): the scan + aggregate stage is
            # served from incrementally maintained state in O(groups); the
            # compiled post pipeline (HAVING → projection → DISTINCT →
            # ORDER → LIMIT) runs unchanged over the extended rows
            ext_rows = view_read.view.ext_rows(view_read.agg_map)
            ctx = EvalContext(
                columns=plan.ext_columns, params=params, executor=self
            )
            return self._project_compiled(
                plan, plan.compiled, params, ctx, ext_rows
            )
        if plan.compiled is not None:
            return self._execute_select_compiled(plan, plan.compiled, params)

        combined_rows = self._combined_rows(plan, params)

        if plan.grouped:
            ext_rows = self._aggregate(plan, params, combined_rows)
        else:
            ext_rows = combined_rows

        # one reusable context per statement: mutate .row instead of
        # allocating a context per row (same trick as the compiled path)
        ctx = EvalContext(columns=plan.ext_columns, params=params, executor=self)

        if plan.post_having is not None:
            filtered: list[tuple[Any, ...]] = []
            for row in ext_rows:
                ctx.row = row
                if plan.post_having.eval(ctx) is True:
                    filtered.append(row)
            ext_rows = filtered

        produced: list[tuple[tuple[Any, ...], tuple[Any, ...]]] = []
        for ext_row in ext_rows:
            ctx.row = ext_row
            out = tuple(expr.eval(ctx) for expr in plan.post_exprs)
            produced.append((ext_row, out))

        if plan.distinct:
            seen: set[tuple[Any, ...]] = set()
            unique: list[tuple[tuple[Any, ...], tuple[Any, ...]]] = []
            for ext_row, out in produced:
                if out not in seen:
                    seen.add(out)
                    unique.append((ext_row, out))
            produced = unique

        if plan.post_order:
            comparator = self._make_comparator(plan, params)
            produced.sort(key=functools.cmp_to_key(comparator))

        rows = [out for _ext, out in produced]
        if plan.offset:
            rows = rows[plan.offset :]
        if plan.limit is not None:
            rows = rows[: plan.limit]
        return ResultSet(columns=list(plan.output_names), rows=rows)

    def _combined_rows(
        self, plan: SelectPlan, params: tuple[Any, ...]
    ) -> list[tuple[Any, ...]]:
        """Drive the scan + join pipeline; returns fully joined rows."""
        ctx = EvalContext(columns=plan.columns, params=params, executor=self)
        rows: list[tuple[Any, ...]] = [
            row for _rowid, row in self._iter_access(plan.access, params)
        ]

        # one reusable probe context per statement — index probes of inner
        # join sides evaluate against the current outer row via .row
        probe_ctx = EvalContext(
            columns=plan.columns, params=params, executor=self
        )
        for step in plan.joins:
            joined: list[tuple[Any, ...]] = []
            null_pad = (None,) * step.inner_width
            for outer in rows:
                matched = False
                probe_ctx.row = outer
                for _rowid, inner in self._iter_access(
                    step.access, params, probe_ctx=probe_ctx
                ):
                    candidate = outer + inner
                    if step.on is not None:
                        ctx.row = candidate
                        if step.on.eval(ctx) is not True:
                            continue
                    matched = True
                    joined.append(candidate)
                if step.left_outer and not matched:
                    joined.append(outer + null_pad)
            rows = joined

        if plan.where is not None:
            filtered: list[tuple[Any, ...]] = []
            for row in rows:
                ctx.row = row
                if plan.where.eval(ctx) is True:
                    filtered.append(row)
            rows = filtered
        return rows

    # -- aggregation ---------------------------------------------------------------

    def _aggregate(
        self,
        plan: SelectPlan,
        params: tuple[Any, ...],
        rows: list[tuple[Any, ...]],
    ) -> list[tuple[Any, ...]]:
        ctx = EvalContext(columns=plan.columns, params=params, executor=self)
        groups: dict[tuple[Any, ...], list[_Accumulator]] = {}
        order: list[tuple[Any, ...]] = []

        for row in rows:
            ctx.row = row
            key = tuple(expr.eval(ctx) for expr in plan.group_exprs)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [_Accumulator(agg) for agg in plan.aggregates]
                groups[key] = accumulators
                order.append(key)
            for accumulator in accumulators:
                accumulator.feed(ctx)

        # Global aggregation over an empty input still yields one row.
        if not groups and not plan.group_exprs:
            groups[()] = [_Accumulator(agg) for agg in plan.aggregates]
            order.append(())

        ext_rows: list[tuple[Any, ...]] = []
        for key in order:
            values = tuple(acc.result() for acc in groups[key])
            ext_rows.append(key + values)
        return ext_rows

    # -- ordering -------------------------------------------------------------------

    def _make_comparator(
        self, plan: SelectPlan, params: tuple[Any, ...]
    ) -> Callable[[Any, Any], int]:
        left_ctx = EvalContext(
            columns=plan.ext_columns, params=params, executor=self
        )
        right_ctx = EvalContext(
            columns=plan.ext_columns, params=params, executor=self
        )
        order = plan.post_order

        def compare(
            left: tuple[tuple[Any, ...], tuple[Any, ...]],
            right: tuple[tuple[Any, ...], tuple[Any, ...]],
        ) -> int:
            left_ctx.row = left[0]
            right_ctx.row = right[0]
            for expr, ascending in order:
                a = expr.eval(left_ctx)
                b = expr.eval(right_ctx)
                if a is None and b is None:
                    continue
                if a is None:
                    return 1  # NULLs sort last
                if b is None:
                    return -1
                if a == b:
                    continue
                result = -1 if a < b else 1
                return result if ascending else -result
            return 0

        return compare

    # -- compiled execution (repro.hstore.compile) ---------------------------------
    #
    # Same semantics as the interpreted paths above, but every expression is
    # a pre-compiled closure and the per-row EvalContext allocation is gone:
    # one context per statement, its ``.row`` mutated per row.

    def _access_rows_compiled(
        self, access: AccessPath, caccess: Any, ctx: EvalContext
    ) -> list[Row]:
        """Candidate rows of one access path (probe evaluated from ``ctx``)."""
        table = self.table(access.table)
        kind = caccess.kind
        if kind == "seq":
            # storage() is rowid-ordered (Table heals after txn undo)
            return list(table.storage().values())
        if kind == "eq":
            key = caccess.key_fn(ctx)
            if None in key:
                return []
            rowids = table.index(access.index).entries().get(key)
            if not rowids:
                return []
            get = table.storage().__getitem__
            if len(rowids) == 1:
                return [get(next(iter(rowids)))]
            return [get(rowid) for rowid in sorted(rowids)]
        return [row for _rowid, row in self._range_pairs(access, caccess, ctx)]

    def _access_pairs_compiled(
        self, access: AccessPath, caccess: Any, ctx: EvalContext
    ) -> list[tuple[int, Row]]:
        """(rowid, row) pairs of one access path, for UPDATE/DELETE."""
        table = self.table(access.table)
        kind = caccess.kind
        if kind == "seq":
            return list(table.scan())
        if kind == "eq":
            index = table.index(access.index)
            rowids = index.lookup(caccess.key_fn(ctx))
            get = table.storage().__getitem__
            return [(rowid, get(rowid)) for rowid in sorted(rowids)]
        return self._range_pairs(access, caccess, ctx)

    def _range_pairs(
        self, access: AccessPath, caccess: Any, ctx: EvalContext
    ) -> list[tuple[int, Row]]:
        table = self.table(access.table)
        index = table.index(access.index)
        low = (caccess.low_fn(ctx),) if caccess.low_fn is not None else None
        high = (caccess.high_fn(ctx),) if caccess.high_fn is not None else None
        # A NULL bound matches nothing (SQL comparison semantics).
        if low == (None,) or high == (None,):
            return []
        pairs: list[tuple[int, Row]] = []
        get = table.storage().__getitem__
        for _key, rowids in index.range_scan(
            low,
            high,
            low_inclusive=access.low_inclusive,
            high_inclusive=access.high_inclusive,
        ):
            pairs.extend((rowid, get(rowid)) for rowid in sorted(rowids))
        return pairs

    def _execute_select_compiled(
        self, plan: SelectPlan, c: Any, params: tuple[Any, ...]
    ) -> ResultSet:
        ctx = EvalContext(columns=plan.columns, params=params, executor=self)

        if c.point_lookup:
            # pure covered equality lookup: index probe + projection, no
            # scan pipeline, no residual predicate, no aggregate machinery
            self.stats.bump("point_lookups")
            ext_rows = self._access_rows_compiled(plan.access, c.access, ctx)
            return self._project_compiled(plan, c, params, ctx, ext_rows)

        if c.vector is not None:
            vectored = self._try_select_vector(plan, c, params)
            if isinstance(vectored, ResultSet):
                self.stats.bump("vector_scans")
                return vectored
            if vectored is not None:
                self.stats.bump("vector_scans")
                post_ctx = (
                    ctx
                    if plan.ext_columns is plan.columns
                    else EvalContext(
                        columns=plan.ext_columns, params=params, executor=self
                    )
                )
                return self._project_compiled(plan, c, params, post_ctx, vectored)

        rows = self._combined_rows_compiled(plan, c, params, ctx)
        if plan.grouped:
            ext_rows = self._aggregate_compiled(plan, c, ctx, rows)
        else:
            ext_rows = rows
        post_ctx = (
            ctx
            if plan.ext_columns is plan.columns
            else EvalContext(
                columns=plan.ext_columns, params=params, executor=self
            )
        )
        return self._project_compiled(plan, c, params, post_ctx, ext_rows)

    # -- batch-at-a-time execution over the columnar mirror ------------------

    def _try_select_vector(
        self, plan: SelectPlan, c: Any, params: tuple[Any, ...]
    ) -> "ResultSet | list[tuple[Any, ...]] | None":
        """Vector-path answer for one SELECT, or None to use the row path.

        Returns a finished :class:`ResultSet` when the projection itself is
        lowered (plain filter+project), a list of extended rows otherwise
        (the caller runs the compiled post-pipeline over them).

        Vector evaluation is eager (no per-row short-circuit), so any
        exception here — division the interpreter would have skipped, an
        unbound parameter over a non-empty table, a comparison type error —
        aborts the attempt *before anything observable happened* and the
        caller re-runs the statement through the row closures, which raise
        (or don't) with oracle semantics.

        Tables under ``vector_min_rows`` skip the attempt outright (no
        fallback counter bump): batch setup only pays for itself at scale.
        """
        table = self.table(plan.access.table)
        if table.row_count() < self.vector_min_rows:
            return None
        try:
            view = table.columnar_view()
            n = view.size()
            vec = c.vector
            vctx = VectorContext(view, params, n)
            bmask = None
            if vec.where is not None:
                bmask = normalize_mask(vec.where(vctx), n)
            if plan.grouped:
                return self._vector_aggregate(plan, vec, vctx, bmask)
            if vec.outputs is not None:
                # fully-lowered projection: zip selected output columns
                # into rows without ever touching the row store
                nsel = n if bmask is None else sum(bmask)
                out_cols = [
                    selected_values(fn(vctx), bmask, n, nsel)
                    for fn in vec.outputs
                ]
                rows = list(zip(*out_cols)) if nsel else []
                if plan.offset:
                    rows = rows[plan.offset :]
                if plan.limit is not None:
                    rows = rows[: plan.limit]
                return ResultSet(columns=list(plan.output_names), rows=rows)
            # ungrouped filter: pair the selection mask with the row dict —
            # storage() iterates in rowid order, exactly the view's order
            source = table.storage()
            if len(source) != n:
                raise StorageError("columnar mirror out of sync with row store")
            if bmask is None:
                return list(source.values())
            return list(compress(source.values(), bmask))
        except Exception:
            self.stats.bump("vector_runtime_fallbacks")
            return None

    def _vector_aggregate(
        self,
        plan: SelectPlan,
        vec: Any,
        vctx: "VectorContext",
        bmask: list[bool] | None,
    ) -> list[tuple[Any, ...]]:
        """Columnar COUNT/SUM/AVG/MIN/MAX folds, grouped or global."""
        n = vctx.n
        nsel = n if bmask is None else sum(bmask)

        if not vec.group_keys:
            # global aggregates: one output row, pure C folds per spec
            values = []
            for name, arg_fn, distinct in vec.agg_specs:
                if arg_fn is None:
                    values.append(nsel)
                else:
                    vals = (
                        selected_values(arg_fn(vctx), bmask, n, nsel)
                        if nsel
                        else []
                    )
                    values.append(agg_fold(name, vals, distinct))
            return [tuple(values)]

        key_cols = [
            selected_values(fn(vctx), bmask, n, nsel) for fn in vec.group_keys
        ]
        single = len(key_cols) == 1
        keys = key_cols[0] if single else list(zip(*key_cols))
        # first-appearance group order and the key -> slot map, both built
        # at C speed (dict.fromkeys dedups in encounter order); the per-row
        # group-index vector is then one C-dispatched dict lookup per row
        order = list(dict.fromkeys(keys))
        slots = {key: slot for slot, key in enumerate(order)}
        gidx = list(map(slots.__getitem__, keys))
        ngroups = len(order)

        agg_results: list[list[Any]] = []
        for name, arg_fn, distinct in vec.agg_specs:
            if arg_fn is None:
                tally = Counter(gidx)
                agg_results.append([tally[g] for g in range(ngroups)])
            elif distinct:
                vals = selected_values(arg_fn(vctx), bmask, n, nsel)
                buckets: list[list[Any]] = [[] for _ in range(ngroups)]
                appends = [bucket.append for bucket in buckets]
                for slot, value in zip(gidx, vals):
                    appends[slot](value)
                agg_results.append(
                    [agg_fold(name, bucket, distinct) for bucket in buckets]
                )
            else:
                # single-pass per-group folds, each the row accumulator's
                # exact recurrence (first-value seed, strict comparisons)
                vals = selected_values(arg_fn(vctx), bmask, n, nsel)
                if name == "count":
                    counts = [0] * ngroups
                    for slot, value in zip(gidx, vals):
                        if value is not None:
                            counts[slot] += 1
                    agg_results.append(counts)
                elif name == "sum" or name == "avg":
                    totals: list[Any] = [None] * ngroups
                    counts = [0] * ngroups
                    for slot, value in zip(gidx, vals):
                        if value is not None:
                            counts[slot] += 1
                            acc = totals[slot]
                            totals[slot] = (
                                value if acc is None else acc + value
                            )
                    if name == "sum":
                        agg_results.append(totals)
                    else:
                        agg_results.append(
                            [
                                None if count == 0 else total / count
                                for total, count in zip(totals, counts)
                            ]
                        )
                else:  # min / max
                    smaller = name == "min"
                    best: list[Any] = [None] * ngroups
                    for slot, value in zip(gidx, vals):
                        if value is not None:
                            acc = best[slot]
                            if acc is None or (
                                value < acc if smaller else value > acc
                            ):
                                best[slot] = value
                    agg_results.append(best)

        if single:
            return [
                (key,) + tuple(res[g] for res in agg_results)
                for g, key in enumerate(order)
            ]
        return [
            key + tuple(res[g] for res in agg_results)
            for g, key in enumerate(order)
        ]

    def _try_dml_vector(
        self, table: Table, vec: Any, params: tuple[Any, ...], *, with_sets: bool
    ) -> tuple[list[int], list[tuple[int, list[Any]]] | None] | None:
        """Matched rowids (and SET value columns) for UPDATE/DELETE.

        Everything is materialized before the caller mutates anything, so a
        fallback (None) is always side-effect free and the apply loop can
        tombstone colstore slots without invalidating these lists.
        """
        if table.row_count() < self.vector_min_rows:
            return None
        try:
            view = table.columnar_view()
            n = view.size()
            vctx = VectorContext(view, params, n)
            bmask = None
            if vec.where is not None:
                bmask = normalize_mask(vec.where(vctx), n)
            rowid_vec = view.rowid_vector()
            matches = (
                list(rowid_vec)
                if bmask is None
                else list(compress(rowid_vec, bmask))
            )
            set_cols = None
            if with_sets and vec.sets is not None:
                nsel = len(matches)
                set_cols = [
                    (offset, selected_values(fn(vctx), bmask, n, nsel))
                    for offset, fn in vec.sets
                ]
        except Exception:
            self.stats.bump("vector_runtime_fallbacks")
            return None
        self.stats.bump("vector_scans")
        return matches, set_cols

    def _project_compiled(
        self,
        plan: SelectPlan,
        c: Any,
        params: tuple[Any, ...],
        ctx: EvalContext,
        ext_rows: list[tuple[Any, ...]],
    ) -> ResultSet:
        """HAVING → projection → DISTINCT → ORDER → LIMIT on extended rows."""
        if c.post_having is not None:
            having = c.post_having
            filtered: list[tuple[Any, ...]] = []
            for row in ext_rows:
                ctx.row = row
                if having(ctx) is True:
                    filtered.append(row)
            ext_rows = filtered

        needs_ext = bool(c.order_keys) or plan.distinct
        if c.row_project is not None and not needs_ext:
            # pure-column projection with no reordering downstream: build
            # output rows straight off the tuples, no context involved
            row_project = c.row_project
            rows = [row_project(row) for row in ext_rows]
            if plan.offset:
                rows = rows[plan.offset :]
            if plan.limit is not None:
                rows = rows[: plan.limit]
            return ResultSet(columns=list(plan.output_names), rows=rows)

        project = c.project
        produced: list[tuple[tuple[Any, ...], tuple[Any, ...]]] = []
        for ext_row in ext_rows:
            ctx.row = ext_row
            produced.append((ext_row, project(ctx)))

        if plan.distinct:
            seen: set[tuple[Any, ...]] = set()
            unique: list[tuple[tuple[Any, ...], tuple[Any, ...]]] = []
            for ext_row, out in produced:
                if out not in seen:
                    seen.add(out)
                    unique.append((ext_row, out))
            produced = unique

        if c.order_keys is not None:
            # evaluate each sort key once per row, then compare key tuples —
            # the interpreted path re-evaluates per comparison
            order_keys = c.order_keys
            keyed = []
            for ext_row, out in produced:
                ctx.row = ext_row
                keyed.append((order_keys(ctx), ext_row, out))
            keyed.sort(key=functools.cmp_to_key(c.order_cmp))
            rows = [out for _keys, _ext, out in keyed]
        else:
            rows = [out for _ext, out in produced]

        if plan.offset:
            rows = rows[plan.offset :]
        if plan.limit is not None:
            rows = rows[: plan.limit]
        return ResultSet(columns=list(plan.output_names), rows=rows)

    def _combined_rows_compiled(
        self,
        plan: SelectPlan,
        c: Any,
        params: tuple[Any, ...],
        ctx: EvalContext,
    ) -> list[tuple[Any, ...]]:
        rows = self._access_rows_compiled(plan.access, c.access, ctx)

        for step, cstep in zip(plan.joins, c.joins):
            joined: list[tuple[Any, ...]] = []
            null_pad = (None,) * step.inner_width
            on_fn = cstep.on
            caccess = cstep.access
            # hoist loop-invariant probe state out of the outer loop: the
            # inner table cannot change mid-statement, so a seq-scan inner
            # is materialized exactly once, and an index probe binds its
            # entries dict / storage getter once
            key_fn = None
            key_offsets = None
            all_inner: list[Row] = []
            if caccess.kind == "eq":
                inner_table = self.table(step.access.table)
                entries = inner_table.index(step.access.index).entries()
                get = inner_table.storage().__getitem__
                key_fn = caccess.key_fn
                key_offsets = caccess.key_offsets
                # single-column plain key: the overwhelmingly common probe
                key_offset0 = (
                    key_offsets[0]
                    if key_offsets is not None and len(key_offsets) == 1
                    else None
                )
            elif caccess.kind == "seq":
                all_inner = list(self.table(step.access.table).storage().values())
            for outer in rows:
                ctx.row = outer
                if key_fn is not None:
                    if key_offset0 is not None:
                        key = (outer[key_offset0],)
                    elif key_offsets is not None:
                        key = tuple(outer[o] for o in key_offsets)
                    else:
                        key = key_fn(ctx)
                    rowids = None if None in key else entries.get(key)
                    if not rowids:
                        inner_rows = _NO_ROWS
                    elif len(rowids) == 1:
                        inner_rows = [get(next(iter(rowids)))]
                    else:
                        inner_rows = [get(rowid) for rowid in sorted(rowids)]
                elif caccess.kind == "seq":
                    inner_rows = all_inner
                else:
                    inner_rows = [
                        row
                        for _rowid, row in self._range_pairs(
                            step.access, caccess, ctx
                        )
                    ]
                matched = False
                for inner in inner_rows:
                    candidate = outer + inner
                    if on_fn is not None:
                        ctx.row = candidate
                        if on_fn(ctx) is not True:
                            continue
                    matched = True
                    joined.append(candidate)
                if step.left_outer and not matched:
                    joined.append(outer + null_pad)
            rows = joined

        if c.where is not None:
            where = c.where
            filtered: list[tuple[Any, ...]] = []
            for row in rows:
                ctx.row = row
                if where(ctx) is True:
                    filtered.append(row)
            rows = filtered
        return rows

    def _aggregate_compiled(
        self,
        plan: SelectPlan,
        c: Any,
        ctx: EvalContext,
        rows: list[tuple[Any, ...]],
    ) -> list[tuple[Any, ...]]:
        if c.count_star_only and c.group_offsets is not None:
            # plain-column GROUP BY + COUNT(*) aggregates: dict of counters,
            # no accumulator objects, no per-row closure calls
            counts: dict[tuple[Any, ...], int] = {}
            key_order: list[tuple[Any, ...]] = []
            offsets = c.group_offsets
            offset0 = offsets[0] if len(offsets) == 1 else None
            n_aggs = len(c.agg_specs)
            for row in rows:
                key = (
                    (row[offset0],)
                    if offset0 is not None
                    else tuple(row[o] for o in offsets)
                )
                if key in counts:
                    counts[key] += 1
                else:
                    counts[key] = 1
                    key_order.append(key)
            if not counts and not plan.group_exprs:
                counts[()] = 0
                key_order.append(())
            return [key + (counts[key],) * n_aggs for key in key_order]

        groups: dict[tuple[Any, ...], list[_CompiledAccumulator]] = {}
        order: list[tuple[Any, ...]] = []
        group_key = c.group_key
        agg_specs = c.agg_specs

        for row in rows:
            ctx.row = row
            key = group_key(ctx)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [
                    _CompiledAccumulator(name, arg_fn, distinct)
                    for name, arg_fn, distinct in agg_specs
                ]
                groups[key] = accumulators
                order.append(key)
            for accumulator in accumulators:
                accumulator.feed(ctx)

        if not groups and not plan.group_exprs:
            groups[()] = [
                _CompiledAccumulator(name, arg_fn, distinct)
                for name, arg_fn, distinct in agg_specs
            ]
            order.append(())

        ext_rows: list[tuple[Any, ...]] = []
        for key in order:
            values = tuple(acc.result() for acc in groups[key])
            ext_rows.append(key + values)
        return ext_rows

    def _execute_update_compiled(
        self,
        plan: UpdatePlan,
        c: Any,
        params: tuple[Any, ...],
        txn: TransactionContext,
    ) -> int:
        table = self.table(plan.table)
        ctx = EvalContext(columns=plan.columns, params=params, executor=self)
        where = c.where

        matches: list[int] | None = None
        set_cols = None
        if c.vector is not None:
            prepared = self._try_dml_vector(table, c.vector, params, with_sets=True)
            if prepared is not None:
                matches, set_cols = prepared
        if matches is None:
            matches = []
            for rowid, row in self._access_pairs_compiled(plan.access, c.access, ctx):
                if where is None:
                    matches.append(rowid)
                else:
                    ctx.row = row
                    if where(ctx) is True:
                        matches.append(rowid)

        if set_cols is not None:
            # SET values were evaluated batch-at-a-time against the
            # pre-statement columns — identical to the row path, which also
            # reads each row's old image
            for k, rowid in enumerate(matches):
                new_row = list(table.get(rowid))
                for offset, vals in set_cols:
                    new_row[offset] = vals[k]
                before = table.update(rowid, new_row)
                txn.record_update(plan.table, rowid, before)
        else:
            assignments = c.assignments
            for rowid in matches:
                old_row = table.get(rowid)
                ctx.row = old_row
                new_row = list(old_row)
                for offset, fn in assignments:
                    new_row[offset] = fn(ctx)
                before = table.update(rowid, new_row)
                txn.record_update(plan.table, rowid, before)

        self.stats.rows_updated += len(matches)
        return len(matches)

    def _execute_delete_compiled(
        self,
        plan: DeletePlan,
        c: Any,
        params: tuple[Any, ...],
        txn: TransactionContext,
    ) -> int:
        table = self.table(plan.table)
        ctx = EvalContext(columns=plan.columns, params=params, executor=self)
        where = c.where

        matches: list[int] | None = None
        if c.vector is not None:
            prepared = self._try_dml_vector(table, c.vector, params, with_sets=False)
            if prepared is not None:
                matches = prepared[0]
        if matches is None:
            matches = []
            for rowid, row in self._access_pairs_compiled(plan.access, c.access, ctx):
                if where is None:
                    matches.append(rowid)
                else:
                    ctx.row = row
                    if where(ctx) is True:
                        matches.append(rowid)

        for rowid in matches:
            before = table.delete(rowid)
            txn.record_delete(plan.table, rowid, before)

        self.stats.rows_deleted += len(matches)
        return len(matches)

    # -- INSERT --------------------------------------------------------------------

    def _execute_insert(
        self, plan: InsertPlan, params: tuple[Any, ...], txn: TransactionContext
    ) -> int:
        table = self.table(plan.table)
        compiled = plan.compiled
        value_rows: list[tuple[Any, ...]]
        if plan.select is not None:
            value_rows = list(self._execute_select(plan.select, params).rows)
        elif compiled is not None:
            if compiled.param_rows is not None:
                value_rows = [get(params) for get in compiled.param_rows]
            else:
                ctx = EvalContext(columns={}, params=params, executor=self)
                value_rows = [fn(ctx) for fn in compiled.row_fns]
        else:
            ctx = EvalContext(columns={}, params=params, executor=self)
            value_rows = [
                tuple(expr.eval(ctx) for expr in row) for row in plan.rows
            ]

        new_rowids: list[int] = []
        if compiled is not None and compiled.identity_slots:
            # every target column is supplied in order: the values tuple IS
            # the row, so skip the per-column slot/default resolution
            for values in value_rows:
                rowid = table.insert(values)
                txn.record_insert(plan.table, rowid)
                new_rowids.append(rowid)
        else:
            for values in value_rows:
                full_row = [
                    values[slot] if slot is not None else column.default
                    for slot, column in zip(plan.slots, table.schema)
                ]
                rowid = table.insert(full_row)
                txn.record_insert(plan.table, rowid)
                new_rowids.append(rowid)

        self.stats.rows_inserted += len(new_rowids)
        self._fire_insert_hooks(txn, plan.table, new_rowids)
        return len(new_rowids)

    def insert_rows(
        self,
        txn: TransactionContext,
        table_name: str,
        rows: list[tuple[Any, ...]] | list[list[Any]],
        *,
        fire_hooks: bool = True,
    ) -> list[int]:
        """Direct (non-SQL) bulk insert used by the streaming layer.

        Validates against the schema, records undo, optionally fires insert
        hooks, and returns the new rowids.  Rides the bulk
        :meth:`Table.insert_many` path: one validation pass, one uniqueness
        pre-pass, one index batch — and atomicity for free (a violation
        anywhere leaves the table untouched).
        """
        table = self.table(table_name)
        new_rowids = table.insert_many(list(rows))
        for rowid in new_rowids:
            txn.record_insert(table.name, rowid)
        self.stats.rows_inserted += len(new_rowids)
        if fire_hooks:
            self._fire_insert_hooks(txn, table.name, new_rowids)
        return new_rowids

    def delete_rows(
        self, txn: TransactionContext, table_name: str, rowids: list[int]
    ) -> int:
        """Direct (non-SQL) delete by rowid, used by GC and window expiry."""
        table = self.table(table_name)
        for rowid in rowids:
            before = table.delete(rowid)
            txn.record_delete(table.name, rowid, before)
        self.stats.rows_deleted += len(rowids)
        return len(rowids)

    # -- UPDATE --------------------------------------------------------------------

    def _execute_update(
        self, plan: UpdatePlan, params: tuple[Any, ...], txn: TransactionContext
    ) -> int:
        if plan.compiled is not None:
            return self._execute_update_compiled(
                plan, plan.compiled, params, txn
            )
        table = self.table(plan.table)
        ctx = EvalContext(columns=plan.columns, params=params, executor=self)

        matches: list[int] = []
        for rowid, row in self._iter_access(plan.access, params):
            if plan.where is None:
                matches.append(rowid)
            else:
                ctx.row = row
                if plan.where.eval(ctx) is True:
                    matches.append(rowid)

        for rowid in matches:
            old_row = table.get(rowid)
            ctx.row = old_row
            new_row = list(old_row)
            for offset, expr in plan.assignments:
                new_row[offset] = expr.eval(ctx)
            before = table.update(rowid, new_row)
            txn.record_update(plan.table, rowid, before)

        self.stats.rows_updated += len(matches)
        return len(matches)

    # -- DELETE --------------------------------------------------------------------

    def _execute_delete(
        self, plan: DeletePlan, params: tuple[Any, ...], txn: TransactionContext
    ) -> int:
        if plan.compiled is not None:
            return self._execute_delete_compiled(
                plan, plan.compiled, params, txn
            )
        table = self.table(plan.table)
        ctx = EvalContext(columns=plan.columns, params=params, executor=self)

        matches: list[int] = []
        for rowid, row in self._iter_access(plan.access, params):
            if plan.where is None:
                matches.append(rowid)
            else:
                ctx.row = row
                if plan.where.eval(ctx) is True:
                    matches.append(rowid)

        for rowid in matches:
            before = table.delete(rowid)
            txn.record_delete(plan.table, rowid, before)

        self.stats.rows_deleted += len(matches)
        return len(matches)

    # -- snapshot support -------------------------------------------------------------

    def dump_state(self) -> dict[str, Any]:
        return {name: table.dump_state() for name, table in self._tables.items()}

    def load_state(self, state: dict[str, Any]) -> None:
        for name, table_state in state.items():
            self.table(name).load_state(table_state)
        # Tables present in storage but absent from the snapshot are emptied
        # (they were created before the snapshot was taken but held no rows,
        # or the snapshot predates them — recovery replays the rest).
        for name, table in self._tables.items():
            if name not in state:
                table.truncate()


class _Accumulator:
    """Incremental state for one aggregate call over one group."""

    def __init__(self, agg: AggregateCall) -> None:
        self._agg = agg
        self._count = 0
        self._sum: Any = None
        self._min: Any = None
        self._max: Any = None
        self._distinct: set[Any] | None = set() if agg.distinct else None

    def feed(self, row_ctx: EvalContext) -> None:
        if self._agg.arg is None:  # COUNT(*)
            self._count += 1
            return
        value = self._agg.arg.eval(row_ctx)
        if value is None:
            return  # SQL aggregates ignore NULLs
        if self._distinct is not None:
            if value in self._distinct:
                return
            self._distinct.add(value)
        self._count += 1
        self._sum = value if self._sum is None else self._sum + value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def result(self) -> Any:
        name = self._agg.name
        if name == "count":
            return self._count
        if name == "sum":
            return self._sum
        if name == "avg":
            if self._count == 0:
                return None
            return self._sum / self._count
        if name == "min":
            return self._min
        if name == "max":
            return self._max
        raise StorageError(f"unknown aggregate {name!r}")  # pragma: no cover


class _CompiledAccumulator:
    """Aggregate state fed by a compiled argument closure.

    Mirrors :class:`_Accumulator` exactly (NULL-skip, DISTINCT via a set,
    the same COUNT/SUM/AVG/MIN/MAX results) but evaluates the aggregate's
    argument through one pre-compiled closure call instead of an AST walk.
    """

    __slots__ = ("_name", "_arg_fn", "_count", "_sum", "_min", "_max", "_distinct")

    def __init__(
        self, name: str, arg_fn: Callable[[EvalContext], Any] | None, distinct: bool
    ) -> None:
        self._name = name
        self._arg_fn = arg_fn
        self._count = 0
        self._sum: Any = None
        self._min: Any = None
        self._max: Any = None
        self._distinct: set[Any] | None = set() if distinct else None

    def feed(self, ctx: EvalContext) -> None:
        if self._arg_fn is None:  # COUNT(*)
            self._count += 1
            return
        value = self._arg_fn(ctx)
        if value is None:
            return  # SQL aggregates ignore NULLs
        if self._distinct is not None:
            if value in self._distinct:
                return
            self._distinct.add(value)
        self._count += 1
        self._sum = value if self._sum is None else self._sum + value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def result(self) -> Any:
        name = self._name
        if name == "count":
            return self._count
        if name == "sum":
            return self._sum
        if name == "avg":
            if self._count == 0:
                return None
            return self._sum / self._count
        if name == "min":
            return self._min
        if name == "max":
            return self._max
        raise StorageError(f"unknown aggregate {name!r}")  # pragma: no cover

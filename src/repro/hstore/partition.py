"""Partitions: the unit of serial execution.

An H-Store node is divided into partitions; each partition owns a slice of
the database and executes its transactions *serially* — no locks, no
latches.  Here a partition bundles one :class:`ExecutionEngine` (storage +
query processing) with a busy flag the engine uses to assert serial
execution, plus the deterministic value-routing hash.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any

from repro.errors import PartitionError
from repro.hstore.catalog import Catalog
from repro.hstore.executor import ExecutionEngine
from repro.hstore.stats import EngineStats

__all__ = ["Partition", "stable_hash", "route_value"]


def stable_hash(value: Any) -> int:
    """Deterministic, process-independent hash for partition routing.

    Python's built-in ``hash`` is salted per process for strings, which would
    make routing non-reproducible across runs (and break command-log replay
    after a "reboot"), so integers route by value and strings by CRC-32.

    Floats route by their IEEE-754 bit pattern, except that integral floats
    route as the equal integer (``2.0 == 2`` in Python, so they must land on
    the same partition).  The former ``int(value)`` scheme collapsed every
    float onto its floor — 2.7 and 2 shared a partition, so two distinct
    routing keys were silently co-located and a partition-count change could
    split rows that replay expected together.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        return int.from_bytes(struct.pack("<d", value), "little")
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    raise PartitionError(f"cannot route on value of type {type(value).__name__}")


def route_value(value: Any, partition_count: int) -> int:
    """Partition id for a routing value."""
    if partition_count < 1:
        raise PartitionError("engine requires at least one partition")
    return stable_hash(value) % partition_count


class Partition:
    """One serial execution site: an EE plus execution bookkeeping."""

    def __init__(self, partition_id: int, catalog: Catalog, stats: EngineStats) -> None:
        self.partition_id = partition_id
        self.ee = ExecutionEngine(catalog, stats)
        self._busy = False

    def acquire(self) -> None:
        """Mark the partition busy; serial execution means this never nests."""
        if self._busy:
            raise PartitionError(
                f"partition {self.partition_id} is already executing a "
                f"transaction (serial execution violated)"
            )
        self._busy = True

    def release(self) -> None:
        self._busy = False

    @property
    def busy(self) -> bool:
        return self._busy

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Partition({self.partition_id})"

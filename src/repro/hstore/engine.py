"""The partition engine (PE): H-Store's transaction-processing brain.

The :class:`HStoreEngine` receives stored-procedure invocations from clients,
routes each to a partition, executes it serially inside a transaction, and
handles durability (command logging + snapshots) and recovery.  It is the
"base architecture directly inherited from H-Store" that the S-Store engine
(:class:`repro.core.engine.SStoreEngine`) extends with streams, windows,
triggers and workflows.

Extension points used by the streaming subclass:

* :meth:`_make_context` — wraps the transaction in a procedure context
  (S-Store substitutes a stream-aware context with ``emit``).
* :meth:`_after_commit` — fires after a successful commit (S-Store's PE
  triggers hang off this).
* :meth:`_snapshot_extra` / :meth:`_restore_extra` — piggyback streaming
  state on snapshots.
* :meth:`_replay_invocation` — how one command-log record is re-executed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.hstore.durability import DurabilityDirectory
    from repro.hstore.recovery import RecoveryReport
    from repro.obs.config import ObsConfig
    from repro.obs.metrics import Counter, Histogram, MetricsRegistry

from repro.errors import (
    CatalogError,
    ConstraintViolationError,
    PartitionError,
    ProcedureError,
    RecoveryError,
    ReproError,
    TransactionAborted,
    UnknownObjectError,
)
from repro.hstore.catalog import Catalog, IndexEntry, Schema, TableEntry, TableKind
from repro.hstore.clock import LogicalClock
from repro.hstore.cmdlog import CommandLog, LogRecord
from repro.hstore.executor import VECTOR_MIN_ROWS, ResultSet
from repro.hstore.parser import (
    CreateIndexStmt,
    CreateStreamStmt,
    CreateTableStmt,
    CreateViewStmt,
    CreateWindowStmt,
    DropIndexStmt,
    DropTableStmt,
    DropViewStmt,
    TruncateStmt,
    parse,
)
from repro.hstore.partition import Partition, route_value
from repro.hstore.plancache import PlanCache
from repro.hstore.planner import DdlPlan, Planner, SelectPlan
from repro.hstore.procedure import ProcedureContext, ProcedureResult, StoredProcedure
from repro.hstore.snapshot import Snapshot, SnapshotStore
from repro.hstore.stats import EngineStats
from repro.hstore.txn import TransactionContext
from repro.obs.trace import NULL_TRACER

__all__ = ["HStoreEngine", "PreparedInvocation", "ADHOC_RECORD"]

#: pseudo-procedure name for command-logged ad-hoc DML statements
ADHOC_RECORD = "<adhoc>"


@dataclass
class PreparedInvocation:
    """A ran-but-undecided transaction holding its partition fenced."""

    procedure: StoredProcedure
    params: tuple[Any, ...]
    txn: TransactionContext
    ctx: ProcedureContext
    partition_id: int
    result: ProcedureResult


class HStoreEngine:
    """A single-process, multi-partition, main-memory NewSQL engine."""

    def __init__(
        self,
        partitions: int = 1,
        *,
        log_group_size: int = 1,
        snapshot_interval: int | None = None,
        clock: LogicalClock | None = None,
        stats: EngineStats | None = None,
        command_logging: bool = True,
        obs: "ObsConfig | None" = None,
        compile: bool = True,
        vectorize: bool = True,
        vector_min_rows: int = VECTOR_MIN_ROWS,
        plan_cache_size: int = 128,
    ) -> None:
        if partitions < 1:
            raise PartitionError("engine requires at least one partition")
        self.stats = stats if stats is not None else EngineStats()
        #: observability (repro.obs): no-op tracer + no registry by default,
        #: so every instrumentation site costs one branch when disabled
        self.obs = obs
        self.tracer = NULL_TRACER
        self.metrics: "MetricsRegistry | None" = None
        if obs is not None:
            if obs.tracing:
                from repro.obs.trace import TraceCollector, Tracer

                self.tracer = Tracer(
                    process="engine",
                    collector=TraceCollector(obs.trace_capacity),
                    sql_spans=obs.sql_spans,
                )
            if obs.metrics:
                from repro.obs.metrics import MetricsRegistry

                self.metrics = MetricsRegistry()
                # pre-register the plan-cache counters (bound, not looked up
                # per statement) so dashboards see both at zero instead of
                # only whichever fired first
                self._cache_hit_counter = self.metrics.counter(
                    "plan_cache.hits", "ad-hoc statements served from the plan cache"
                )
                self._cache_miss_counter = self.metrics.counter(
                    "plan_cache.misses", "ad-hoc statements that had to be planned"
                )
        #: per-procedure instrument caches — the registry's labeled lookup
        #: (sort + string keys) is too slow to repeat on every transaction
        self._txn_hists: dict[str, "Histogram"] = {}
        self._txn_counters: dict[tuple[str, bool], "Counter"] = {}
        #: when set (by ``defer_txn_metrics``), the txn path appends
        #: ``(proc, duration_us, committed)`` here instead of touching the
        #: metric objects — the net server drains it at each commit-batch
        #: boundary, keeping the partition executor lean (the same move the
        #: cluster workers make by piggybacking metric deltas on replies)
        self._txn_obs: list[tuple[str, float, bool]] | None = None
        self.clock = clock if clock is not None else LogicalClock()
        self.catalog = Catalog()
        #: compile=False keeps the tree-walking interpreter as the execution
        #: path — slower, but the oracle the differential tests fuzz against;
        #: vectorize=False keeps compiled plans row-at-a-time (no columnar
        #: batch execution), the middle arm of the E18 comparison
        self.planner = Planner(
            self.catalog, compile_plans=compile, vectorize=vectorize
        )
        #: LRU of ad-hoc statement plans; 0 disables caching entirely
        self.plan_cache = PlanCache(plan_cache_size) if plan_cache_size > 0 else None
        self.partitions = [
            Partition(pid, self.catalog, self.stats) for pid in range(partitions)
        ]
        #: batch-execution floor: full scans over smaller tables stay on
        #: the row loop (tests pin 0 to force the vector path on tiny data)
        for p in self.partitions:
            p.ee.vector_min_rows = vector_min_rows
        self.procedures: dict[str, StoredProcedure] = {}
        self.command_log = CommandLog(log_group_size, self.stats)
        self.command_log.tracer = self.tracer
        #: False = run without durability (the A3 no-logging baseline);
        #: such an engine cannot crash-and-recover and says so loudly
        self.command_log.enabled = command_logging
        self.snapshots = SnapshotStore()
        #: take a snapshot automatically every N committed txns (None = manual)
        self.snapshot_interval = snapshot_interval
        self._txns_since_snapshot = 0
        self._next_txn_id = 0
        self._replaying = False
        self._crashed = False
        self._durability: "DurabilityDirectory | None" = None
        #: deterministic fault injection (repro.faults); None = no faults
        self.fault_injector: "FaultInjector | None" = None
        #: what the most recent restore_from_disk() did (torn records etc.)
        self.last_recovery_report: "RecoveryReport | None" = None

    def set_tracer_identity(self, process: str, origin: int) -> None:
        """Re-label this engine's tracer for multi-process deployments.

        A partition worker calls this right after building its engine shard
        so its spans carry the worker's process label and an id ``origin``
        that cannot collide with the coordinator's or a sibling's ids.
        No-op when tracing is disabled.
        """
        if not self.tracer.enabled:
            return
        from repro.obs.trace import Tracer

        self.tracer = Tracer(
            process=process,
            origin=origin,
            collector=self.tracer.collector,
            sql_spans=self.tracer.sql_spans,
        )
        self.command_log.tracer = self.tracer
        if self._durability is not None:
            self._durability.tracer = self.tracer

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def execute_ddl(self, sql: str) -> None:
        """Apply a DDL statement (CREATE TABLE / INDEX; S-Store adds more)."""
        statement = parse(sql)
        if isinstance(statement, CreateTableStmt):
            entry = TableEntry(
                name=statement.name,
                schema=Schema(list(statement.columns)),
                kind=TableKind.TABLE,
                primary_key=statement.primary_key,
                partition_column=statement.partition_column,
            )
            self._install_table(entry)
            return
        if isinstance(statement, CreateIndexStmt):
            entry = IndexEntry(
                name=statement.name,
                table_name=statement.table,
                column_names=statement.columns,
                unique=statement.unique,
                ordered=statement.ordered,
            )
            self.catalog.add_index(entry)
            for partition in self.partitions:
                partition.ee.table(entry.table_name).add_index(
                    entry.name,
                    entry.column_names,
                    unique=entry.unique,
                    ordered=entry.ordered,
                )
            return
        if isinstance(statement, DropTableStmt):
            entry = self.catalog.table(statement.name)
            if entry.kind is not TableKind.TABLE:
                raise CatalogError(
                    f"cannot DROP {entry.kind.value} {entry.name!r}; stream "
                    f"and window state is managed by the streaming layer"
                )
            self.catalog.drop_table(entry.name)
            for partition in self.partitions:
                partition.ee.drop_storage(entry.name)
            return
        if isinstance(statement, DropIndexStmt):
            entry = self.catalog.drop_index(statement.name)
            for partition in self.partitions:
                partition.ee.table(entry.table_name).drop_index(entry.name)
            return
        if isinstance(statement, TruncateStmt):
            entry = self.catalog.table(statement.table)
            if entry.kind is not TableKind.TABLE:
                raise CatalogError(
                    f"cannot TRUNCATE {entry.kind.value} {entry.name!r}"
                )
            for partition in self.partitions:
                partition.ee.table(entry.name).truncate()
            return
        if isinstance(
            statement, (CreateStreamStmt, CreateWindowStmt, CreateViewStmt, DropViewStmt)
        ):
            raise CatalogError(
                f"{type(statement).__name__.replace('Stmt', '')} requires the "
                f"S-Store engine (repro.SStoreEngine); plain H-Store has no "
                f"native streams, windows or delta views — that is the "
                f"paper's point"
            )
        raise CatalogError(f"not a DDL statement: {sql!r}")

    def _install_table(self, entry: TableEntry) -> TableEntry:
        """Register a table in the catalog and create storage everywhere.

        Partitioned tables get per-partition slices; replicated tables (no
        partition column) get a full copy on every partition — both cases
        are one storage instance per partition here.
        """
        self.catalog.add_table(entry)
        for partition in self.partitions:
            partition.ee.create_storage(entry)
        return entry

    # ------------------------------------------------------------------
    # Procedure registration
    # ------------------------------------------------------------------

    def register_procedure(
        self, procedure: StoredProcedure | type[StoredProcedure]
    ) -> StoredProcedure:
        """Register and pre-plan a stored procedure (H-Store deployment step)."""
        if isinstance(procedure, type):
            procedure = procedure()
        if procedure.name in self.procedures:
            raise ProcedureError(f"procedure {procedure.name!r} already registered")
        for statement_name, sql in procedure.statements.items():
            try:
                procedure.plans[statement_name] = self._plan_statement(
                    sql, f"{procedure.name}.{statement_name}"
                )
            except ReproError as exc:
                raise ProcedureError(
                    f"procedure {procedure.name!r} statement "
                    f"{statement_name!r} failed to plan: {exc}"
                ) from exc
        self.procedures[procedure.name] = procedure
        return procedure

    def _plan_statement(self, sql: str, label: str):
        """Parse + plan + closure-compile one statement, observed.

        Every planning site goes through here so ``repro.obs`` sees one
        ``compile`` span and one ``plan_compile_us`` observation per
        statement — the cost the PlanCache amortizes away for ad-hoc SQL
        and registration pays exactly once for stored procedures.
        """
        started_ns = time.perf_counter_ns() if self.metrics is not None else 0
        if self.tracer.enabled:
            with self.tracer.span("compile", label, sql=sql[:120]):
                plan = self.planner.plan(parse(sql))
        else:
            plan = self.planner.plan(parse(sql))
        if self.metrics is not None:
            self.metrics.histogram(
                "plan_compile_us",
                "statement parse+plan+closure-compile time in microseconds",
            ).observe((time.perf_counter_ns() - started_ns) / 1000.0)
        return plan

    def procedure(self, name: str) -> StoredProcedure:
        try:
            return self.procedures[name]
        except KeyError:
            raise UnknownObjectError(f"no procedure named {name!r}") from None

    # ------------------------------------------------------------------
    # Invocation paths
    # ------------------------------------------------------------------

    def call_procedure(self, name: str, *params: Any) -> ProcedureResult:
        """Client entry point: one client↔PE round trip per call."""
        self._require_alive()
        self.stats.client_pe_roundtrips += 1
        if self.tracer.enabled:
            with self.tracer.span("call", name) as span:
                result = self.invoke(name, params)
                span.set(success=result.success)
                return result
        return self.invoke(name, params)

    def invoke(self, name: str, params: tuple[Any, ...]) -> ProcedureResult:
        """Engine-internal invocation (no client round trip charged).

        This is the path PE triggers use in S-Store — the saving the paper's
        push-based workflows buy over client-driven polling.
        """
        procedure = self.procedure(name)
        if procedure.run_everywhere:
            return self._invoke_everywhere(procedure, params)
        partition_id = self._route(procedure, params)
        result = self._run_on_partition(procedure, params, partition_id)
        if result.success:
            self._log_commit(procedure, params, result, partition_id)
        return result

    def _route(self, procedure: StoredProcedure, params: tuple[Any, ...]) -> int:
        if procedure.partition_param is None:
            return 0
        if procedure.partition_param >= len(params):
            raise PartitionError(
                f"procedure {procedure.name!r} routes on parameter "
                f"#{procedure.partition_param}, got only {len(params)} params"
            )
        return route_value(params[procedure.partition_param], len(self.partitions))

    def _run_on_partition(
        self,
        procedure: StoredProcedure,
        params: tuple[Any, ...],
        partition_id: int,
    ) -> ProcedureResult:
        if self.tracer.enabled or self.metrics is not None:
            return self._run_observed(procedure, params, partition_id)
        return self._run_txn(procedure, params, partition_id)

    def _run_observed(
        self,
        procedure: StoredProcedure,
        params: tuple[Any, ...],
        partition_id: int,
    ) -> ProcedureResult:
        """The traced/metered transaction path (obs enabled only)."""
        started_ns = time.perf_counter_ns() if self.metrics is not None else 0
        if self.tracer.enabled:
            with self.tracer.span(
                "txn", procedure.name, partition=partition_id
            ) as span:
                result = self._run_txn(procedure, params, partition_id)
                # direct attrs stores — the span's dict already exists, and
                # set(**kwargs) would build a second dict per transaction
                attrs = span.attrs
                attrs["txn_id"] = result.txn_id
                attrs["committed"] = result.success
        else:
            result = self._run_txn(procedure, params, partition_id)
        if self.metrics is not None:
            duration_us = (time.perf_counter_ns() - started_ns) / 1000.0
            buf = self._txn_obs
            if buf is None:
                self._observe_txn(procedure.name, duration_us, result.success)
            else:
                buf.append((procedure.name, duration_us, result.success))
        return result

    def defer_txn_metrics(self) -> None:
        """Batch per-txn metric observation for an external drainer.

        After this, the txn path appends to a plain list (~an order of
        magnitude cheaper than histogram + counter updates) and the caller
        owns flushing via :meth:`flush_txn_metrics`.  The net server calls
        both: defer at start, flush on its event-loop thread after every
        commit batch — so by the time a client holds its response, its
        transaction is visible in the metrics.
        """
        if self._txn_obs is None:
            self._txn_obs = []

    def flush_txn_metrics(self) -> None:
        """Drain deferred observations into the metric instruments.

        Safe to call concurrently with the engine thread appending: the
        copy-then-delete slice only removes what was seen.
        """
        buf = self._txn_obs
        if not buf:
            return
        entries = buf[:]
        del buf[: len(entries)]
        # a commit batch is usually one procedure over and over: cache the
        # instruments across iterations and batch the counter increments
        hists = self._txn_hists
        last_key: str | None = None
        hist = None
        counts: dict[tuple[str, bool], int] = {}
        for procedure_name, duration_us, committed in entries:
            if procedure_name != last_key:
                last_key = procedure_name
                hist = hists.get(procedure_name)
                if hist is None:
                    hist = self.metrics.histogram(
                        "txn_latency_us",
                        "transaction latency in microseconds",
                        procedure=procedure_name,
                    )
                    hists[procedure_name] = hist
            hist.observe(duration_us)
            key = (procedure_name, committed)
            counts[key] = counts.get(key, 0) + 1
        for (procedure_name, committed), n in counts.items():
            counter = self._txn_counters.get((procedure_name, committed))
            if counter is None:
                counter = self.metrics.counter(
                    "txns_total",
                    "transactions by procedure and outcome",
                    procedure=procedure_name,
                    outcome="committed" if committed else "aborted",
                )
                self._txn_counters[procedure_name, committed] = counter
            counter.inc(n)

    def _observe_txn(
        self, procedure_name: str, duration_us: float, committed: bool
    ) -> None:
        histogram = self._txn_hists.get(procedure_name)
        if histogram is None:
            histogram = self.metrics.histogram(
                "txn_latency_us",
                "transaction latency in microseconds",
                procedure=procedure_name,
            )
            self._txn_hists[procedure_name] = histogram
        histogram.observe(duration_us)
        counter = self._txn_counters.get((procedure_name, committed))
        if counter is None:
            counter = self.metrics.counter(
                "txns_total",
                "transactions by procedure and outcome",
                procedure=procedure_name,
                outcome="committed" if committed else "aborted",
            )
            self._txn_counters[procedure_name, committed] = counter
        counter.inc()

    def _run_txn(
        self,
        procedure: StoredProcedure,
        params: tuple[Any, ...],
        partition_id: int,
    ) -> ProcedureResult:
        partition = self.partitions[partition_id]
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        txn = TransactionContext(txn_id, partition.ee, procedure.name)
        ctx = self._make_context(procedure, txn, partition_id)
        partition.acquire()
        try:
            data = procedure.run(ctx, *params)
        except TransactionAborted as exc:
            txn.abort()
            self.stats.txns_aborted += 1
            return ProcedureResult(
                success=False, error=str(exc), txn_id=txn_id, partition=partition_id
            )
        except ConstraintViolationError as exc:
            txn.abort()
            self.stats.txns_aborted += 1
            return ProcedureResult(
                success=False, error=str(exc), txn_id=txn_id, partition=partition_id
            )
        except ReproError:
            # Programming error inside the procedure: keep state consistent
            # by rolling back, then surface the bug to the caller.
            txn.abort()
            self.stats.txns_aborted += 1
            raise
        finally:
            partition.release()

        txn.commit()
        self.stats.txns_committed += 1
        result = ProcedureResult(
            success=True, data=data, txn_id=txn_id, partition=partition_id
        )
        self._after_commit(procedure, ctx, txn, params, result)
        return result

    def _invoke_everywhere(
        self, procedure: StoredProcedure, params: tuple[Any, ...]
    ) -> ProcedureResult:
        """Multi-partition transaction: run on every partition, all-or-nothing."""
        if self.tracer.enabled:
            with self.tracer.span(
                "txn", procedure.name, everywhere=True
            ) as span:
                result = self._invoke_everywhere_body(procedure, params)
                span.set(txn_id=result.txn_id, committed=result.success)
                return result
        return self._invoke_everywhere_body(procedure, params)

    def _invoke_everywhere_body(
        self, procedure: StoredProcedure, params: tuple[Any, ...]
    ) -> ProcedureResult:
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        txns: list[TransactionContext] = []
        contexts: list[ProcedureContext] = []
        data: list[Any] = []
        acquired: list[Partition] = []
        try:
            for partition in self.partitions:
                partition.acquire()
                acquired.append(partition)
                txn = TransactionContext(txn_id, partition.ee, procedure.name)
                ctx = self._make_context(procedure, txn, partition.partition_id)
                txns.append(txn)
                contexts.append(ctx)
                data.append(procedure.run(ctx, *params))
        except (TransactionAborted, ConstraintViolationError) as exc:
            for txn in reversed(txns):
                if txn.is_active:
                    txn.abort()
            self.stats.txns_aborted += 1
            return ProcedureResult(success=False, error=str(exc), txn_id=txn_id)
        except ReproError:
            for txn in reversed(txns):
                if txn.is_active:
                    txn.abort()
            self.stats.txns_aborted += 1
            raise
        finally:
            for partition in reversed(acquired):
                partition.release()

        for txn in txns:
            txn.commit()
        self.stats.txns_committed += 1
        result = ProcedureResult(success=True, data=data, txn_id=txn_id)
        for ctx, txn in zip(contexts, txns):
            self._after_commit(procedure, ctx, txn, params, result)
        self._log_commit(procedure, params, result, partition=-1)
        return result

    # ------------------------------------------------------------------
    # Prepared (fenced) invocations — the multi-process 2PC building block
    # ------------------------------------------------------------------
    #
    # A multi-partition transaction spanning OS processes cannot use
    # `_invoke_everywhere` directly: each worker must run the procedure,
    # report its outcome to the coordinator, and *hold the partition fenced*
    # until every sibling has prepared, so the commit/abort decision is
    # atomic across the cluster.  `prepare_invoke` runs the procedure and
    # leaves the transaction open with the partition still acquired;
    # `commit_prepared` / `abort_prepared` resolve it.

    def prepare_invoke(
        self, name: str, params: tuple[Any, ...]
    ) -> tuple[ProcedureResult, "PreparedInvocation | None"]:
        """Run a procedure but defer the commit/abort decision.

        Returns ``(result, prepared)``.  On success ``prepared`` holds the
        open transaction (and the acquired partition — the fence); the
        caller must resolve it with :meth:`commit_prepared` or
        :meth:`abort_prepared`.  On a procedure abort the transaction is
        already rolled back and ``prepared`` is ``None``.
        """
        self._require_alive()
        procedure = self.procedure(name)
        partition_id = self._route(procedure, params)
        partition = self.partitions[partition_id]
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        txn = TransactionContext(txn_id, partition.ee, procedure.name)
        ctx = self._make_context(procedure, txn, partition_id)
        span = (
            self.tracer.start_span(
                "txn", procedure.name, {"txn_id": txn_id, "phase": "prepare"}
            )
            if self.tracer.enabled
            else None
        )
        partition.acquire()
        try:
            data = procedure.run(ctx, *params)
        except (TransactionAborted, ConstraintViolationError) as exc:
            txn.abort()
            partition.release()
            self.stats.txns_aborted += 1
            if span is not None:
                self.tracer.end_span(span.set(outcome="aborted"))
            return (
                ProcedureResult(
                    success=False, error=str(exc), txn_id=txn_id, partition=partition_id
                ),
                None,
            )
        except ReproError:
            txn.abort()
            partition.release()
            self.stats.txns_aborted += 1
            if span is not None:
                self.tracer.end_span(span.set(outcome="error"))
            raise
        if span is not None:
            self.tracer.end_span(span.set(outcome="prepared"))
        result = ProcedureResult(
            success=True, data=data, txn_id=txn_id, partition=partition_id
        )
        return result, PreparedInvocation(
            procedure=procedure,
            params=params,
            txn=txn,
            ctx=ctx,
            partition_id=partition_id,
            result=result,
        )

    def commit_prepared(self, prepared: "PreparedInvocation") -> ProcedureResult:
        """Commit a held invocation: release the fence, log, fire hooks."""
        with self.tracer.span(
            "txn",
            prepared.procedure.name,
            phase="commit",
            txn_id=prepared.txn.txn_id,
        ):
            return self._commit_prepared_body(prepared)

    def _commit_prepared_body(
        self, prepared: "PreparedInvocation"
    ) -> ProcedureResult:
        prepared.txn.commit()
        self.partitions[prepared.partition_id].release()
        self.stats.txns_committed += 1
        self._after_commit(
            prepared.procedure,
            prepared.ctx,
            prepared.txn,
            prepared.params,
            prepared.result,
        )
        if not (prepared.procedure.read_only or self._replaying):
            # partition=-1 marks a fenced/everywhere transaction, matching
            # what _invoke_everywhere logs in the single-process engine
            self.command_log.append(
                txn_id=prepared.txn.txn_id,
                procedure=prepared.procedure.name,
                params=prepared.params,
                partition=-1,
                logical_time=self.clock.now,
            )
            self._note_logged_command()
        return prepared.result

    def abort_prepared(self, prepared: "PreparedInvocation") -> None:
        """Roll back a held invocation and release the fence."""
        prepared.txn.abort()
        self.partitions[prepared.partition_id].release()
        self.stats.txns_aborted += 1

    def shutdown(self) -> None:
        """Release external resources; a no-op for the in-process engine.

        Exists so harnesses can dispose any engine uniformly — the
        multi-process facade overrides this to stop its worker processes.
        """

    # ------------------------------------------------------------------
    # Ad-hoc SQL (testing / examples / interactive use)
    # ------------------------------------------------------------------

    def execute_sql(self, sql: str, *params: Any) -> ResultSet | int:
        """Plan and run one ad-hoc statement in an auto-commit transaction.

        Counts as a client request.  SELECTs against a multi-partition engine
        are scatter-gathered (rows concatenated); ad-hoc DML and grouped /
        ordered / limited scatter-gather SELECTs require a single partition.
        """
        self._require_alive()
        self.stats.client_pe_roundtrips += 1
        if self.tracer.enabled:
            with self.tracer.span("sql", "<adhoc>", sql=sql[:120]):
                return self._execute_sql(sql, params)
        return self._execute_sql(sql, params)

    def _execute_sql(self, sql: str, params: tuple[Any, ...]) -> ResultSet | int:
        """The ad-hoc execution body, without the client round-trip charge.

        The multi-process deployment calls this inside a worker: the client
        round trip was already charged once at the coordinator, and charging
        it again per worker would inflate the E4 counters.
        """
        self._require_alive()
        plan = self._plan_adhoc(sql)
        self._check_adhoc_plan(plan)

        if isinstance(plan, SelectPlan):
            if len(self.partitions) == 1:
                self.stats.pe_ee_roundtrips += 1
                return self.partitions[0].ee.execute(plan, params)
            if plan.grouped or plan.order_by or plan.limit is not None:
                raise PartitionError(
                    "ad-hoc aggregated/ordered SELECT needs a single partition"
                )
            rows: list[tuple[Any, ...]] = []
            columns: list[str] = plan.output_names
            for partition in self.partitions:
                self.stats.pe_ee_roundtrips += 1
                result = partition.ee.execute(plan, params)
                assert isinstance(result, ResultSet)
                rows.extend(result.rows)
            return ResultSet(columns=list(columns), rows=rows)

        if len(self.partitions) != 1:
            raise PartitionError("ad-hoc DML requires a single-partition engine")
        partition = self.partitions[0]
        txn_id = self._next_txn_id
        txn = TransactionContext(txn_id, partition.ee, "<adhoc>")
        self._next_txn_id += 1
        partition.acquire()
        try:
            self.stats.pe_ee_roundtrips += 1
            result = partition.ee.execute(plan, params, txn)
        except ReproError:
            txn.abort()
            self.stats.txns_aborted += 1
            raise
        finally:
            partition.release()
        txn.commit()
        self.stats.txns_committed += 1
        # Ad-hoc DML is a write command like any other: it must reach the
        # command log or recovery could not rebuild state written this way.
        if not self._replaying:
            self.command_log.append(
                txn_id=txn_id,
                procedure=ADHOC_RECORD,
                params=(sql, tuple(params)),
                partition=0,
                logical_time=self.clock.now,
                meta={"kind": "adhoc"},
            )
            self._note_logged_command()
        return result

    def _plan_adhoc(self, sql: str):
        """Plan one ad-hoc statement through the engine's PlanCache.

        Each distinct (whitespace-normalized) statement text is parsed and
        planned once per catalog version; repeat executions bind parameters
        against the cached plan.  DDL never reaches this path
        (:meth:`execute_ddl` has its own parse), and any DDL bumps
        ``catalog.version``, which lazily invalidates stale entries.
        """
        cache = self.plan_cache
        if cache is None:
            return self._plan_statement(sql, ADHOC_RECORD)
        version = self.catalog.version
        plan = cache.get(sql, version)
        if plan is not None:
            self.stats.plan_cache_hits += 1
            if self.metrics is not None:
                self._cache_hit_counter.inc()
            return plan
        self.stats.plan_cache_misses += 1
        if self.metrics is not None:
            self._cache_miss_counter.inc()
        plan = self._plan_statement(sql, ADHOC_RECORD)
        if not isinstance(plan, DdlPlan):
            cache.put(sql, version, plan)
        return plan

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def _log_commit(
        self,
        procedure: StoredProcedure,
        params: tuple[Any, ...],
        result: ProcedureResult,
        partition: int,
    ) -> None:
        if procedure.read_only or self._replaying:
            return
        assert result.txn_id is not None
        self.command_log.append(
            txn_id=result.txn_id,
            procedure=procedure.name,
            params=params,
            partition=partition,
            logical_time=self.clock.now,
        )
        self._note_logged_command()

    def _note_logged_command(self) -> None:
        """Advance the auto-snapshot counter (one durable command recorded)."""
        self._txns_since_snapshot += 1
        if (
            self.snapshot_interval is not None
            and self._txns_since_snapshot >= self.snapshot_interval
        ):
            self.take_snapshot()

    def take_snapshot(self) -> Snapshot:
        """Flush the log and capture a transaction-consistent checkpoint."""
        with self.tracer.span("snapshot", "take") as span:
            self.command_log.flush()
            snapshot = self.snapshots.take(
                through_lsn=self.command_log.durable_lsn,
                logical_time=self.clock.now,
                partition_state={
                    partition.partition_id: partition.ee.dump_state()
                    for partition in self.partitions
                },
                extra=self._snapshot_extra(),
            )
            self.stats.snapshots_taken += 1
            self._txns_since_snapshot = 0
            if self._durability is not None:
                self._durability.write_snapshot(snapshot)
            span.set(
                snapshot_id=snapshot.snapshot_id,
                through_lsn=snapshot.through_lsn,
            )
            return snapshot

    # ------------------------------------------------------------------
    # Deterministic fault injection (repro.faults)
    # ------------------------------------------------------------------

    def install_fault_injector(
        self, injector: "FaultInjector | None"
    ) -> "FaultInjector | None":
        """Thread a fault injector through every durability seam.

        Covers the group-commit flush path (``log.flush``), per-record disk
        appends (``log.append``), snapshot persistence (``snapshot.write``,
        ``snapshot.fsync``) and log replay (``recovery.replay``).  Pass
        ``None`` to remove injection.  Install *before*
        :meth:`enable_durability` / :meth:`restore_from_disk` so the
        directory they create inherits the seam.
        """
        self.fault_injector = injector
        self.command_log.fault_injector = injector
        if self._durability is not None:
            self._durability.fault_injector = injector
        return injector

    # ------------------------------------------------------------------
    # File-backed durability (survives process restarts, not just crash())
    # ------------------------------------------------------------------

    def enable_durability(
        self, path: Any, *, fsync_log: bool = False
    ) -> "DurabilityDirectory":
        """Persist the command log and snapshots under ``path``.

        Flushed log records are appended to ``<path>/command.log`` from now
        on, and every snapshot is written as a file.  Records already in the
        in-memory log (e.g., application seed DML executed during setup) are
        written out immediately so the durable history is complete.

        With ``fsync_log=True`` every append ends in one ``fsync`` — acked
        means on-disk, and the per-flush syscall becomes the fixed cost the
        group-commit batcher (``log_group_size``, the network coalescer)
        amortizes across concurrent transactions.
        """
        from repro.hstore.durability import DurabilityDirectory

        if not self.command_log.enabled:
            raise ReproError(
                "cannot enable durability: this engine was built with "
                "command_logging=False, so there is no history to persist"
            )
        directory = DurabilityDirectory(path, fsync_log=fsync_log)
        if directory.load_log_records():
            raise ReproError(
                f"durability directory {directory.path} already holds a log; "
                f"use restore_from_disk() to resume from it"
            )
        directory.fault_injector = self.fault_injector
        directory.tracer = self.tracer
        self.command_log.flush()
        directory.append_log_records(self.command_log.all_records())
        self._durability = directory
        self.command_log.on_flush = directory.append_log_records
        return directory

    def restore_from_disk(self, path: Any) -> int:
        """Rebuild state from a durability directory after a restart.

        The engine must already have the same schema and procedures
        registered (DDL and code are deployment artifacts, not data).  Any
        data the fresh engine wrote during setup (e.g., seed rows inserted
        by an application constructor) is discarded: the disk history *is*
        the database, and recovery replays it from scratch — deterministic
        setup writes are at the head of that history anyway.  Returns the
        number of replayed transactions.

        Hardened against crash debris: a torn trailing log record is
        dropped (and truncated off the file), and a damaged newest snapshot
        falls back to the previous valid one — both surfaced through
        :attr:`last_recovery_report`.
        """
        from repro.hstore.cmdlog import CommandLog
        from repro.hstore.durability import DurabilityDirectory
        from repro.hstore.recovery import RecoveryReport
        from repro.hstore.snapshot import SnapshotStore

        directory = DurabilityDirectory(path)
        directory.fault_injector = self.fault_injector
        directory.tracer = self.tracer
        new_log = CommandLog(self.command_log.group_size, self.stats)
        new_log.enabled = self.command_log.enabled
        new_log.fault_injector = self.fault_injector
        new_log.tracer = self.tracer
        with self.tracer.span("recovery", "restore_from_disk") as span:
            records, torn = directory.scan_log(repair=True)
            new_log.load_records(records)
            self.command_log = new_log
            self.snapshots = SnapshotStore()
            snapshot, skipped = directory.scan_snapshots()
            if snapshot is not None:
                self.snapshots.adopt(snapshot)
            replayed = self.recover()
            span.set(replayed=replayed, torn=torn)
        # resume persisting from here on
        self._durability = directory
        self.command_log.on_flush = directory.append_log_records
        self.last_recovery_report = RecoveryReport(
            lost_log_records=0,
            replayed_transactions=replayed,
            had_snapshot=snapshot is not None,
            torn_records=torn,
            snapshots_skipped=len(skipped),
        )
        return replayed

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------

    def crash(self) -> int:
        """Simulate a node crash.

        In-memory state is considered lost; un-flushed (group-commit pending)
        log records are lost too, exactly as with a real command log.  The
        engine refuses further work until :meth:`recover` runs.  Returns the
        number of lost log records.
        """
        if not self.command_log.enabled:
            raise RecoveryError(
                "cannot crash-and-recover: this engine was built with "
                "command_logging=False, so a crash would silently lose "
                "every transaction — enable command logging for durability"
            )
        lost = self.command_log.lose_pending()
        self._crashed = True
        return lost

    def recover(self) -> int:
        """Rebuild state: load the latest snapshot, replay the log suffix.

        Returns the number of replayed transactions.  Works with or without a
        snapshot (without one, replay starts from an empty database at LSN 0).
        """
        with self.tracer.span("recovery", "replay") as span:
            replayed = self._recover_body()
            span.set(replayed=replayed)
            return replayed

    def _recover_body(self) -> int:
        snapshot = self.snapshots.latest
        if snapshot is not None:
            for partition in self.partitions:
                partition.ee.load_state(
                    snapshot.partition_state.get(partition.partition_id, {})
                )
            self.clock.advance_to(snapshot.logical_time)
            self._restore_extra(snapshot.extra)
            replay_from = snapshot.through_lsn
        else:
            for partition in self.partitions:
                for table in partition.ee.tables().values():
                    table.truncate()
            self._restore_extra({})
            replay_from = 0

        self._crashed = False
        self._replaying = True
        replayed = 0
        try:
            for record in self.command_log.records_from(replay_from):
                if self.fault_injector is not None:
                    self.fault_injector.fire("recovery.replay", record=record)
                self.clock.advance_to(record.logical_time)
                self._replay_invocation(record)
                replayed += 1
        finally:
            self._replaying = False
        return replayed

    def _replay_invocation(self, record: LogRecord) -> None:
        if record.procedure == ADHOC_RECORD:
            sql, params = record.params
            self.execute_sql(sql, *params)
            return
        result = self.invoke(record.procedure, record.params)
        if not result.success:
            # A command that committed before the crash must commit again —
            # determinism is the engine contract.  Surfacing loudly beats
            # silently diverging.
            raise ReproError(
                f"replay of {record.procedure!r} (lsn={record.lsn}) aborted: "
                f"{result.error}"
            )

    def _require_alive(self) -> None:
        if self._crashed:
            raise ReproError("engine has crashed; call recover() first")

    # ------------------------------------------------------------------
    # Extension points for the streaming layer
    # ------------------------------------------------------------------

    def _make_context(
        self,
        procedure: StoredProcedure,
        txn: TransactionContext,
        partition_id: int,
    ) -> ProcedureContext:
        return ProcedureContext(self, procedure, txn, partition_id)

    def _after_commit(
        self,
        procedure: StoredProcedure,
        ctx: ProcedureContext,
        txn: TransactionContext,
        params: tuple[Any, ...],
        result: ProcedureResult,
    ) -> None:
        """Post-commit hook; plain H-Store does nothing here."""

    def _snapshot_extra(self) -> dict[str, Any]:
        return {}

    def _restore_extra(self, extra: dict[str, Any]) -> None:
        pass

    def _check_adhoc_plan(self, plan: Any) -> None:
        """Veto hook for ad-hoc statements (S-Store enforces scoping here)."""

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def table_rows(self, table_name: str, partition_id: int = 0) -> list[tuple[Any, ...]]:
        """All rows of a table on one partition (test/debug helper)."""
        return self.partitions[partition_id].ee.table(table_name).rows()

    def describe(self) -> str:
        """A text summary of the catalog: tables, streams, windows, indexes,
        procedures — the deployment at a glance."""
        lines: list[str] = []
        for entry in sorted(self.catalog.tables(), key=lambda e: (e.kind.value, e.name)):
            columns = ", ".join(
                f"{column.name} {column.sql_type}"
                + ("" if column.nullable else " NOT NULL")
                for column in entry.schema
            )
            suffix = ""
            if entry.primary_key:
                suffix += f" PRIMARY KEY ({', '.join(entry.primary_key)})"
            if entry.partition_column:
                suffix += f" PARTITION ON {entry.partition_column}"
            rows = self.partitions[0].ee.table(entry.name).row_count()
            lines.append(
                f"{entry.kind.value} {entry.name} ({columns}){suffix} "
                f"[{rows} rows]"
            )
            for index in self.catalog.indexes_on(entry.name):
                flavor = "TREE" if index.ordered else "HASH"
                unique = "UNIQUE " if index.unique else ""
                lines.append(
                    f"  {unique}INDEX {index.name} "
                    f"({', '.join(index.column_names)}) USING {flavor}"
                )
        if self.procedures:
            lines.append("")
            for name in sorted(self.procedures):
                procedure = self.procedures[name]
                lines.append(
                    f"PROCEDURE {name} ({len(procedure.plans)} statements)"
                )
        return "\n".join(lines)

    def explain(self, sql: str) -> str:
        """Plan a statement and render the physical plan as text."""
        from repro.hstore.explain import explain_plan

        return explain_plan(self.planner.plan(parse(sql)))

    def explain_procedure(self, name: str) -> str:
        """Render every pre-planned statement of a registered procedure."""
        from repro.hstore.explain import explain_plan

        procedure = self.procedure(name)
        sections = []
        for statement_name in sorted(procedure.plans):
            plan = procedure.plans[statement_name]
            sections.append(f"-- {statement_name}")
            sections.append(explain_plan(plan, indent="   "))
        return "\n".join(sections)

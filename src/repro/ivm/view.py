"""Delta views: GROUP BY aggregates maintained at the cost of the *change*.

The model is DBSP's Z-set view of a window: the window's contents are a
multiset, each maintenance event is a batch of weighted tuples (+1 admit,
-1 expire), and a view is a group-indexed fold over that delta stream.  The
fold is exact and O(1) per tuple for COUNT/``COUNT(*)`` and for SUM/AVG over
ints (Python ints are arbitrary-precision, so addition/subtraction is
order-independent); MIN/MAX cache the current extreme and repair lazily.

**Oracle parity rule.**  The tree-walking interpreter (and the compiled
path, which mirrors it) feeds each group's accumulator in *rowid order* —
that is what a SeqScan produces — with ``value < min`` strict comparisons,
so the first-encountered value wins ties, and float sums accumulate in scan
order.  Every place this module cannot maintain a value incrementally it
therefore falls back to recomputing **over the group's live rows in sorted
rowid order**, which replays the oracle's exact fold:

* MIN/MAX: deleting a row whose value equals the cached extreme (or is
  NaN) marks the group-aggregate *dirty*; the next read rescans that one
  group (counted in ``ivm.repairs``).  Inserts keep the strict-comparison
  update, so tie-keeping matches the oracle without repair.
* SUM/AVG: the first non-int value flips the group-aggregate to
  recompute-on-read (float addition does not commute bit-for-bit, so
  incremental subtraction would drift).  Int-only groups never repair.

Group emission order also matches the oracle: the interpreter emits groups
in first-appearance order of the rowid-ordered scan, i.e. ordered by each
group's minimum live rowid.  Rowids are assigned monotonically and admits
arrive in increasing rowid order, so each group's insertion-ordered row
dict yields its minimum live rowid in O(1) (``next(iter(rows))``), and a
read sorts the groups by that key — O(G log G), independent of window size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import CatalogError
from repro.hstore.expression import AggregateCall, ColumnRef
from repro.hstore.planner import SeqScan, SelectPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hstore.stats import EngineStats
    from repro.hstore.table import Table
    from repro.obs.metrics import MetricsRegistry

__all__ = ["AggSpec", "DeltaView", "ViewRead", "derive_view_shape", "match_plan"]

#: aggregate kinds a delta view maintains (DISTINCT aggregates never qualify)
_KINDS = ("count_star", "count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class AggSpec:
    """One maintained aggregate: a kind plus its source-column offset."""

    kind: str  # one of _KINDS
    offset: int | None  # None only for count_star

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise CatalogError(f"unsupported view aggregate kind {self.kind!r}")


@dataclass(frozen=True)
class ViewRead:
    """Plan attachment: serve this SELECT's extended rows from ``view``.

    ``agg_map[i]`` is the view-spec index backing the plan's i-th aggregate
    (a query may list the view's aggregates in any order or repeat them).
    """

    view: "DeltaView"
    agg_map: tuple[int, ...]


class _AggState:
    """Per-group incremental state of one aggregate."""

    __slots__ = ("count", "total", "extreme", "dirty", "exact")

    def __init__(self) -> None:
        self.count = 0  # live non-null values
        self.total: Any = None  # running sum (exact int mode only)
        self.extreme: Any = None  # cached MIN/MAX
        self.dirty = False  # MIN/MAX needs a repair scan
        self.exact = True  # SUM/AVG still maintained incrementally


class _Group:
    __slots__ = ("rows", "aggs")

    def __init__(self, agg_count: int) -> None:
        #: live rows by rowid; insertion-ordered, so next(iter(rows)) is the
        #: minimum live rowid (admits arrive in increasing rowid order and
        #: expiry only ever removes entries)
        self.rows: dict[int, tuple[Any, ...]] = {}
        self.aggs = [_AggState() for _ in range(agg_count)]


class DeltaView:
    """Incrementally maintained GROUP BY aggregate state over one window."""

    def __init__(
        self,
        name: str,
        table_name: str,
        group_offsets: tuple[int, ...],
        specs: tuple[AggSpec, ...],
        stats: "EngineStats",
        sql: str = "",
    ) -> None:
        self.name = name.lower()
        self.table_name = table_name.lower()
        self.group_offsets = group_offsets
        self.specs = specs
        self.sql = sql
        self._stats = stats
        self._groups: dict[tuple[Any, ...], _Group] = {}
        # optional repro.obs bindings (None = metrics off, zero overhead)
        self._deltas_counter: Any = None
        self._hits_counter: Any = None
        self._repairs_counter: Any = None
        self._apply_hist: Any = None

    def bind_metrics(self, registry: "MetricsRegistry") -> None:
        self._deltas_counter = registry.counter(
            "ivm.deltas_applied",
            "weighted window deltas folded into delta views",
            view=self.name,
        )
        self._hits_counter = registry.counter(
            "ivm.view_hits",
            "aggregate SELECTs served from a delta view instead of a scan",
            view=self.name,
        )
        self._repairs_counter = registry.counter(
            "ivm.repairs",
            "per-group invalidation repairs (MIN/MAX rescan, non-int SUM/AVG)",
            view=self.name,
        )
        self._apply_hist = registry.histogram(
            "view_apply_us",
            "time to fold one window delta batch into its views",
            view=self.name,
        )

    # ------------------------------------------------------------------
    # Delta application (called inside the maintaining transaction)
    # ------------------------------------------------------------------

    def apply(
        self,
        rowids: list[int],
        rows: list[tuple[Any, ...]],
        weight: int,
    ) -> None:
        """Fold one weighted batch: +1 admits, -1 expires."""
        started = time.perf_counter_ns() if self._apply_hist is not None else 0
        self._apply(rowids, rows, weight)
        self._stats.bump("ivm_deltas_applied", len(rows))
        if self._deltas_counter is not None:
            self._deltas_counter.inc(len(rows))
            self._apply_hist.observe((time.perf_counter_ns() - started) / 1000.0)

    def _apply(
        self,
        rowids: list[int],
        rows: list[tuple[Any, ...]],
        weight: int,
    ) -> None:
        groups = self._groups
        offsets = self.group_offsets
        specs = self.specs
        agg_count = len(specs)
        admit = weight > 0
        for rowid, row in zip(rowids, rows):
            key = tuple(row[o] for o in offsets)
            group = groups.get(key)
            if admit:
                if group is None:
                    group = _Group(agg_count)
                    groups[key] = group
                group.rows[rowid] = row
                for spec, state in zip(specs, group.aggs):
                    self._feed(spec, state, row)
            else:
                if group is None:
                    raise CatalogError(
                        f"delta view {self.name!r}: -1 delta for unknown "
                        f"group {key!r} (window/view state diverged)"
                    )
                del group.rows[rowid]
                if not group.rows:
                    # the group vanished; all per-aggregate state dies with it
                    del groups[key]
                    continue
                for spec, state in zip(specs, group.aggs):
                    self._unfeed(spec, state, row)

    @staticmethod
    def _feed(spec: AggSpec, state: _AggState, row: tuple[Any, ...]) -> None:
        kind = spec.kind
        if kind == "count_star":
            return  # len(group.rows) is the count; nothing to track
        value = row[spec.offset]
        if value is None:
            return  # SQL aggregates ignore NULLs
        if kind == "count":
            state.count += 1
            return
        if kind in ("sum", "avg"):
            state.count += 1
            if state.exact:
                # bool is excluded on purpose: the oracle's first-value
                # seeding would surface bool-typed sums we cannot reproduce
                # incrementally, so bools take the recompute path
                if type(value) is int:
                    state.total = (
                        value if state.total is None else state.total + value
                    )
                else:
                    state.exact = False
                    state.total = None
            return
        # min / max
        state.count += 1
        if state.dirty:
            return
        if state.extreme is None:
            state.extreme = value
            return
        try:
            if kind == "min":
                if value < state.extreme:
                    state.extreme = value
            else:
                if value > state.extreme:
                    state.extreme = value
        except TypeError:
            # incomparable mix: defer to the repair scan, which raises at
            # read time exactly where the oracle's accumulator would
            state.dirty = True

    @staticmethod
    def _unfeed(spec: AggSpec, state: _AggState, row: tuple[Any, ...]) -> None:
        kind = spec.kind
        if kind == "count_star":
            return
        value = row[spec.offset]
        if value is None:
            return
        if kind == "count":
            state.count -= 1
            return
        if kind in ("sum", "avg"):
            state.count -= 1
            if state.exact:
                if state.count == 0:
                    state.total = None
                else:
                    state.total -= value
            return
        # min / max
        state.count -= 1
        if state.count == 0:
            state.extreme = None
            state.dirty = False
            return
        if state.dirty:
            return
        # invalidation rule: removing the cached extreme (or any NaN, whose
        # comparisons are all False) may promote another row — repair lazily
        if value is state.extreme or value == state.extreme or value != value:
            state.dirty = True

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def ext_rows(
        self, agg_map: tuple[int, ...] | None = None
    ) -> list[tuple[Any, ...]]:
        """Extended rows (group key + aggregate values), oracle-ordered."""
        self._stats.bump("ivm_view_hits")
        if self._hits_counter is not None:
            self._hits_counter.inc()
        groups = self._groups
        if not groups:
            if self.group_offsets:
                return []
            # global aggregation over an empty window still yields one row
            defaults = tuple(
                0 if spec.kind in ("count_star", "count") else None
                for spec in self.specs
            )
            if agg_map is not None:
                defaults = tuple(defaults[i] for i in agg_map)
            return [defaults]
        ordered = sorted(groups.items(), key=lambda kv: next(iter(kv[1].rows)))
        rows: list[tuple[Any, ...]] = []
        for key, group in ordered:
            values = tuple(
                self._result(spec, state, group)
                for spec, state in zip(self.specs, group.aggs)
            )
            if agg_map is not None:
                values = tuple(values[i] for i in agg_map)
            rows.append(key + values)
        return rows

    def _result(self, spec: AggSpec, state: _AggState, group: _Group) -> Any:
        kind = spec.kind
        if kind == "count_star":
            return len(group.rows)
        if kind == "count":
            return state.count
        if kind in ("sum", "avg"):
            if not state.exact:
                total, count = self._recompute_sum(spec.offset, group)
            elif state.count == 0:
                return None
            else:
                total, count = state.total, state.count
            if kind == "sum":
                return total
            return None if count == 0 else total / count
        # min / max
        if state.dirty:
            state.extreme = self._repair_extreme(kind, spec.offset, group)
            state.dirty = False
        return state.extreme

    def _recompute_sum(self, offset: int, group: _Group) -> tuple[Any, int]:
        """Oracle-order fold for groups holding non-int values."""
        self._note_repair()
        total: Any = None
        count = 0
        rows = group.rows
        for rowid in sorted(rows):
            value = rows[rowid][offset]
            if value is None:
                continue
            total = value if total is None else total + value
            count += 1
        return total, count

    def _repair_extreme(self, kind: str, offset: int, group: _Group) -> Any:
        """Rescan one group in rowid order, exactly like the accumulator."""
        self._note_repair()
        extreme: Any = None
        rows = group.rows
        if kind == "min":
            for rowid in sorted(rows):
                value = rows[rowid][offset]
                if value is None:
                    continue
                if extreme is None or value < extreme:
                    extreme = value
        else:
            for rowid in sorted(rows):
                value = rows[rowid][offset]
                if value is None:
                    continue
                if extreme is None or value > extreme:
                    extreme = value
        return extreme

    def _note_repair(self) -> None:
        self._stats.bump("ivm_repairs")
        if self._repairs_counter is not None:
            self._repairs_counter.inc()

    # ------------------------------------------------------------------
    # Rebuild (abort rollback, recovery, initial registration)
    # ------------------------------------------------------------------

    def rebuild(self, table: "Table") -> None:
        """Recompute the view from its backing table (O(window), rare)."""
        self._groups.clear()
        storage = table.storage()
        if storage:
            rowids = sorted(storage)
            self._apply(rowids, [storage[r] for r in rowids], 1)
        self._stats.bump("ivm_rebuilds")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def group_count(self) -> int:
        return len(self._groups)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        aggs = ", ".join(
            f"{s.kind}@{s.offset}" if s.offset is not None else s.kind
            for s in self.specs
        )
        return (
            f"DeltaView({self.name!r} ON {self.table_name!r}, "
            f"groups={self.group_offsets}, aggs=[{aggs}])"
        )


# ---------------------------------------------------------------------------
# Plan matching: which SELECTs a view can serve
# ---------------------------------------------------------------------------


def _agg_spec_of(
    agg: AggregateCall, columns: dict[str, int]
) -> AggSpec | None:
    """Map one plan aggregate to a maintainable spec (None = ineligible)."""
    if agg.distinct:
        return None  # DISTINCT needs per-group value multisets; scan instead
    if agg.arg is None:
        return AggSpec("count_star", None) if agg.name == "count" else None
    if not isinstance(agg.arg, ColumnRef):
        return None
    offset = columns.get(agg.arg.key)
    if offset is None:
        return None
    if agg.name not in ("count", "sum", "avg", "min", "max"):
        return None
    return AggSpec(agg.name, offset)


def _plain_group_offsets(plan: SelectPlan) -> tuple[int, ...] | None:
    """Group-key column offsets iff every group expr is a plain column."""
    offsets: list[int] = []
    for expr in plan.group_exprs:
        if not isinstance(expr, ColumnRef):
            return None
        offset = plan.columns.get(expr.key)
        if offset is None:
            return None
        offsets.append(offset)
    return tuple(offsets)


def derive_view_shape(
    plan: SelectPlan,
) -> tuple[str, tuple[int, ...], tuple[AggSpec, ...]]:
    """Validate a CREATE VIEW definition plan; returns (table, groups, specs).

    The definition must be the plain maintainable shape — a grouped
    aggregate over one window-backed SeqScan with no predicates or
    post-processing.  Queries *against* the view may add HAVING / ORDER /
    LIMIT / DISTINCT freely (:func:`match_plan` allows them: they run over
    the view's O(groups) output).
    """
    if not isinstance(plan, SelectPlan):
        raise CatalogError("a view is defined by a SELECT statement")
    if plan.joins or plan.where is not None:
        raise CatalogError(
            "delta views maintain plain grouped aggregates; joins and WHERE "
            "clauses are not incrementally maintainable here"
        )
    if not plan.grouped:
        raise CatalogError(
            "a delta view needs at least one aggregate (COUNT/SUM/AVG/MIN/MAX)"
        )
    if plan.having is not None or plan.order_by or plan.limit is not None:
        raise CatalogError(
            "define the view as the bare grouped aggregate; apply HAVING/"
            "ORDER BY/LIMIT in the queries that read it"
        )
    if plan.distinct:
        raise CatalogError("SELECT DISTINCT cannot define a delta view")
    if plan.param_count:
        raise CatalogError("a view definition cannot take ? parameters")
    if not isinstance(plan.access, SeqScan):
        raise CatalogError("a delta view is defined over a full window scan")
    group_offsets = _plain_group_offsets(plan)
    if group_offsets is None:
        raise CatalogError("view GROUP BY keys must be plain columns")
    specs: list[AggSpec] = []
    for agg in plan.aggregates:
        spec = _agg_spec_of(agg, plan.columns)
        if spec is None:
            raise CatalogError(
                f"aggregate {agg.sql()} is not incrementally maintainable "
                f"(needs a plain non-DISTINCT column argument)"
            )
        specs.append(spec)
    return plan.access.table, group_offsets, tuple(specs)


def match_plan(view: DeltaView, plan: SelectPlan) -> tuple[int, ...] | None:
    """agg_map if ``view`` can serve ``plan``'s scan+aggregate stage.

    The caller has already checked the cheap gates (SeqScan on the view's
    table, no joins/WHERE, grouped).  Here the group keys must match the
    view's exactly (same columns, same order) and every plan aggregate must
    be one the view maintains.  HAVING, projection, DISTINCT, ORDER BY and
    LIMIT are untouched: they run downstream over the view's output.
    """
    if _plain_group_offsets(plan) != view.group_offsets:
        return None
    agg_map: list[int] = []
    for agg in plan.aggregates:
        spec = _agg_spec_of(agg, plan.columns)
        if spec is None:
            return None
        try:
            agg_map.append(view.specs.index(spec))
        except ValueError:
            return None
    return tuple(agg_map)

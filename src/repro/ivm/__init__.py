"""Incremental view maintenance (DBSP-style weighted deltas) over windows.

Windows emit ``(rowid, row, +1)`` on admit and ``(rowid, row, -1)`` on
expire inside the maintaining transaction; a :class:`DeltaView` folds those
deltas into GROUP BY aggregate state so a view-backed read costs O(groups)
instead of a full window scan.  See :mod:`repro.ivm.view` for the delta
algebra and docs/INTERNALS.md §12 for the design.
"""

from repro.ivm.view import AggSpec, DeltaView, ViewRead, derive_view_shape, match_plan

__all__ = ["AggSpec", "DeltaView", "ViewRead", "derive_view_shape", "match_plan"]

"""Crash-recovery equivalence: faulted run ≡ uninterrupted run.

The checker executes one deterministic client workload twice against
engines produced by the same factory:

1. **reference** — durability on, no faults, all operations applied once;
2. **faulted** — durability on, a :class:`FaultPlan` armed.  Whenever an
   injected fault kills the simulated process, the dead engine object is
   discarded, a fresh engine is built and restored from the durable
   directory (recovery itself may be re-killed by ``recovery.replay``
   faults and is simply retried), and the client resumes.

Resumption is *exactly-once*: each client operation (``ingest`` / ``tick`` /
``call``) appends exactly one command-log record, so the number of such
records in the recovered durable log says precisely which operations
survived.  An
operation whose record never became durable is retried; one whose record
was durable but whose acknowledgement was dropped is **not** — the paper's
command-logging contract, made testable.

At the end, table-by-table and window-by-window state must be equal.  The
checker assumes the durable log is not GC-truncated mid-run (snapshots here
keep the full log, which ``DurabilityDirectory`` does by default).

The engine factory may build an in-process engine *or* a
:class:`repro.parallel.ParallelHStoreEngine` process cluster — the checker
drives both through the same API.  Parallel factories must use
``log_group_size=1`` (so every completed op's record is durable the moment
it commits, keeping durable-record counts a prefix of the op sequence even
when ops scatter across worker logs) and restrict ``call`` ops to
single-partition procedures (run-everywhere commits log one record *per
worker*, which would break the one-record-per-op count).
"""

from __future__ import annotations

import pathlib
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.recovery import state_fingerprint, window_fingerprint
from repro.errors import InjectedFault, RecoveryError, ReproError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.hstore.engine import HStoreEngine

__all__ = ["Op", "EquivalenceReport", "RecoveryEquivalenceChecker", "full_fingerprint"]

#: one client operation: ("ingest", stream, rows) | ("tick", ticks)
#: | ("snapshot",) | ("call", procedure_name, params)
Op = tuple

#: command-log pseudo-procedures produced by exactly one client op each
_RECORD_PER_OP = ("<ingest>", "<tick>")


def full_fingerprint(engine: HStoreEngine) -> dict[str, Any]:
    """Tables, windows, and the logical clock — everything equivalence means.

    Multi-process clusters (:class:`repro.parallel.ParallelHStoreEngine`)
    provide their own same-shaped digest via ``cluster_fingerprint()``
    (per-worker table shards plus the tuple of worker clocks), so the
    checker compares process clusters and in-process engines through one
    code path.
    """
    cluster = getattr(engine, "cluster_fingerprint", None)
    if cluster is not None:
        return cluster()
    fingerprint: dict[str, Any] = {
        f"table:{key}": rows for key, rows in state_fingerprint(engine).items()
    }
    for name, digest in window_fingerprint(engine).items():
        fingerprint[f"window:{name}"] = digest
    fingerprint["clock"] = engine.clock.now
    return fingerprint


@dataclass
class EquivalenceReport:
    """Outcome of one reference-vs-faulted comparison."""

    equivalent: bool
    ops_total: int
    crashes: int
    recoveries: int
    replayed_transactions: int
    torn_records: int
    snapshots_skipped: int
    faults_fired: list[str] = field(default_factory=list)
    mismatched_keys: list[str] = field(default_factory=list)

    def summary(self) -> str:
        verdict = "EQUIVALENT" if self.equivalent else "DIVERGED"
        return (
            f"{verdict}: ops={self.ops_total} crashes={self.crashes} "
            f"recoveries={self.recoveries} replayed={self.replayed_transactions} "
            f"torn={self.torn_records} snapshots_skipped={self.snapshots_skipped} "
            f"faults=[{', '.join(self.faults_fired) or 'none fired'}]"
        )


class RecoveryEquivalenceChecker:
    """Runs a seeded workload twice and asserts recovered-state equality."""

    def __init__(
        self,
        build_engine: Callable[[], HStoreEngine],
        ops: Sequence[Op],
        plan: FaultPlan,
        *,
        workdir: str | pathlib.Path | None = None,
        max_recoveries: int = 12,
    ) -> None:
        self.build_engine = build_engine
        self.ops = list(ops)
        self.plan = plan
        self.injector = FaultInjector(plan)
        self._workdir = pathlib.Path(workdir) if workdir is not None else None
        self.max_recoveries = max_recoveries
        #: log procedure names produced by exactly one client op each —
        #: the pseudo-procedures plus every procedure named by a "call" op
        #: (which must therefore be a committing single-partition writer)
        self._logged_procedures = set(_RECORD_PER_OP) | {
            op[1] for op in self.ops if op[0] == "call"
        }

    # ------------------------------------------------------------------

    def run(self) -> EquivalenceReport:
        owns_workdir = self._workdir is None
        workdir = (
            pathlib.Path(tempfile.mkdtemp(prefix="repro-faults-"))
            if owns_workdir
            else self._workdir
        )
        try:
            reference = self._run_reference(workdir / "reference")
            return self._run_faulted(workdir / "faulted", reference)
        finally:
            if owns_workdir:
                shutil.rmtree(workdir, ignore_errors=True)

    # ------------------------------------------------------------------

    def _run_reference(self, directory: pathlib.Path) -> dict[str, Any]:
        engine = self.build_engine()
        try:
            engine.enable_durability(directory)
            for op in self.ops:
                self._apply(engine, op)
            self._quiesce(engine)
            return full_fingerprint(engine)
        finally:
            self._dispose(engine)

    def _run_faulted(
        self, directory: pathlib.Path, reference: dict[str, Any]
    ) -> EquivalenceReport:
        crashes = 0
        recoveries = 0

        engine = self.build_engine()
        # durability is enabled before the injector is armed: flushing the
        # setup history (factory seed DML) is part of deployment, and a
        # client could not retry it op-by-op the way it retries `ops`
        engine.enable_durability(directory)
        engine.install_fault_injector(self.injector)

        totals = {"replayed": 0, "torn": 0, "snapshots_skipped": 0}

        def recover(dead: HStoreEngine) -> HStoreEngine:
            nonlocal recoveries, crashes
            self._dispose(dead)
            fresh, report = self._recover(directory)
            recoveries += 1
            crashes += report.pop("crashes")
            for key, value in report.items():
                totals[key] += value
            return fresh

        index = 0
        verified = False
        while True:
            while index < len(self.ops):
                try:
                    self._apply(engine, self.ops[index])
                    index += 1
                except InjectedFault:
                    crashes += 1
                    if crashes > self.max_recoveries:
                        raise RecoveryError(
                            f"fault plan {self.plan.describe()} did not "
                            f"converge after {crashes} crashes"
                        )
                    engine = recover(engine)
                    index = self._resume_index(engine)
            self._quiesce(engine)
            if verified or not self._needs_verification_restart(crashes):
                break
            # A damage-only fault (corrupt snapshot) never kills the process
            # by itself; force one restart so recovery actually faces the
            # damaged artifacts before we compare state.
            verified = True
            try:
                engine.command_log.flush()
            except InjectedFault:
                crashes += 1
            engine = recover(engine)
            index = self._resume_index(engine)

        replayed = totals["replayed"]
        torn = totals["torn"]
        snapshots_skipped = totals["snapshots_skipped"]
        faulted = full_fingerprint(engine)
        self._dispose(engine)
        mismatched = sorted(
            key
            for key in set(reference) | set(faulted)
            if reference.get(key) != faulted.get(key)
        )
        return EquivalenceReport(
            equivalent=not mismatched,
            ops_total=len(self.ops),
            crashes=crashes,
            recoveries=recoveries,
            replayed_transactions=replayed,
            torn_records=torn,
            snapshots_skipped=snapshots_skipped,
            faults_fired=list(self.injector.fired_log),
            mismatched_keys=mismatched,
        )

    def _needs_verification_restart(self, crashes: int) -> bool:
        from repro.faults.plan import FaultAction

        corrupt_fired = any(
            spec.fired and spec.action == FaultAction.CORRUPT
            for spec in self.plan.specs
        )
        return corrupt_fired or (bool(self.injector.fired_log) and crashes == 0)

    # ------------------------------------------------------------------

    def _recover(self, directory: pathlib.Path) -> tuple[HStoreEngine, dict[str, int]]:
        """Restart until recovery completes (replay faults re-kill it)."""
        crashes = 0
        while True:
            engine = self.build_engine()
            engine.install_fault_injector(self.injector)
            try:
                engine.restore_from_disk(directory)
            except InjectedFault:
                self._dispose(engine)
                crashes += 1
                if crashes > self.max_recoveries:
                    raise RecoveryError(
                        f"recovery kept dying under plan {self.plan.describe()}"
                    )
                continue
            report = engine.last_recovery_report
            assert report is not None
            return engine, {
                "replayed": report.replayed_transactions,
                "torn": report.torn_records,
                "snapshots_skipped": report.snapshots_skipped,
                "crashes": crashes,
            }

    def _resume_index(self, engine: HStoreEngine) -> int:
        """First op whose command-log record did not survive the crash."""
        counter = getattr(engine, "durable_op_count", None)
        if counter is not None:
            # engines with non-trivial record accounting (a dstream cluster
            # broadcasts each tick to every worker's log) count for us
            durable = counter(frozenset(self._logged_procedures))
        else:
            durable = sum(
                1
                for record in engine.command_log.all_records()
                if record.procedure in self._logged_procedures
            )
        index = 0
        for op in self.ops:
            if durable == 0:
                break
            if op[0] in ("ingest", "tick", "call"):
                durable -= 1
            index += 1
        return index

    # ------------------------------------------------------------------

    def _apply(self, engine: HStoreEngine, op: Op) -> None:
        kind = op[0]
        if kind == "ingest":
            engine.ingest(op[1], [tuple(row) for row in op[2]])
        elif kind == "tick":
            engine.advance_time(op[1])
        elif kind == "snapshot":
            engine.take_snapshot()
        elif kind == "call":
            result = engine.call_procedure(op[1], *op[2])
            if not result.success:
                # a deterministic abort logs no record, which would break the
                # exactly-once record-counting resumption — fail loudly
                raise ReproError(
                    f"checker 'call' op {op[1]!r} aborted ({result.error}); "
                    f"call ops must be committing single-partition writers "
                    f"so each logs exactly one record"
                )
        else:
            raise ReproError(
                f"unsupported checker op {kind!r}; supported: ingest, tick, "
                f"snapshot, call (each ingest/tick/call must log exactly one "
                f"record for exactly-once resumption)"
            )

    @staticmethod
    def _dispose(engine: HStoreEngine) -> None:
        """Release a discarded engine's resources (worker processes)."""
        stop = getattr(engine, "shutdown", None)
        if stop is not None:
            stop()

    @staticmethod
    def _quiesce(engine: HStoreEngine) -> None:
        drain = getattr(engine, "run_until_quiescent", None)
        if drain is not None:
            drain()

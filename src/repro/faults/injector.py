"""The runtime fault injector the durability/recovery seams call into.

The seams are deliberately thin: each calls ``injector.fire(point, ...)``
with enough context (file handle, payload, path) for the injector to carry
out its action.  When no fault is scheduled for that occurrence, ``fire``
is a counter increment and a list scan — cheap enough to leave the seams
permanently in place.

Crash semantics: an :class:`~repro.errors.InjectedCrash` (or
:class:`~repro.errors.InjectedIOError`) propagating out of an engine call
means the simulated process died.  The in-memory engine object is then
garbage — recovery builds a *fresh* engine and restores from disk, exactly
like a real restart.
"""

from __future__ import annotations

import os
import pathlib
from typing import IO, Any

from repro.errors import InjectedCrash, InjectedIOError, ReproError
from repro.faults.plan import FaultAction, FaultPlan, FaultSpec, stage_of

__all__ = ["FaultInjector"]

#: bytes splatted over a snapshot file by the ``corrupt`` action
_CORRUPTION = b"\x00CORRUPT\x00"


class FaultInjector:
    """Executes a :class:`FaultPlan` against the live durability seams."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._counts: dict[str, int] = {}
        #: labels of faults that actually fired, in order (for reports)
        self.fired_log: list[str] = []

    # ------------------------------------------------------------------

    def occurrences(self, point: str) -> int:
        """How many times ``point`` has been hit so far."""
        return self._counts.get(point, 0)

    def fire(self, point: str, *, stage: str = "pre", **ctx: Any) -> None:
        """Called by a seam; raises if the plan schedules a fault here.

        ``stage`` is "pre" for the occurrence-counting call made before (or
        in place of) the durable write, "post" for the additional call some
        seams make after the write has landed (ack-drop faults live there).
        """
        if stage == "pre":
            self._counts[point] = self._counts.get(point, 0) + 1
        occurrence = self._counts.get(point, 0)
        for spec in self.plan.specs:
            if spec.fired or spec.point != point or spec.at != occurrence:
                continue
            if stage_of(spec.action) != stage:
                continue
            spec.fired = True
            self.fired_log.append(spec.label)
            self._execute(spec, ctx)

    # ------------------------------------------------------------------

    def _execute(self, spec: FaultSpec, ctx: dict[str, Any]) -> None:
        if spec.action == FaultAction.CRASH:
            if spec.point == "snapshot.write":
                # a crash mid-snapshot-write tears the file on disk
                self._truncate_file(ctx["path"])
            raise InjectedCrash(f"injected crash at {spec.label}")

        if spec.action == FaultAction.DROP_ACK:
            raise InjectedCrash(
                f"injected ack drop at {spec.label}: the write is durable "
                f"but the process died before acknowledging it"
            )

        if spec.action == FaultAction.IO_ERROR:
            if spec.point == "snapshot.write":
                # the failed write never landed
                path = pathlib.Path(ctx["path"])
                if path.exists():
                    path.unlink()
            raise InjectedIOError(
                spec.errno_code,
                f"{os.strerror(spec.errno_code)} (injected at {spec.label})",
            )

        if spec.action == FaultAction.TORN_WRITE:
            handle: IO[str] = ctx["handle"]
            payload: str = ctx["payload"]
            offset = self.plan.rng.randint(1, max(1, len(payload) - 2))
            handle.write(payload[:offset])
            handle.flush()
            raise InjectedCrash(
                f"injected torn write at {spec.label}: "
                f"{offset}/{len(payload)} bytes reached disk"
            )

        if spec.action == FaultAction.CORRUPT:
            self._corrupt_file(ctx["path"])
            return

        raise ReproError(f"unhandled fault action {spec.action!r}")  # pragma: no cover

    def _truncate_file(self, path: str | pathlib.Path) -> None:
        path = pathlib.Path(path)
        data = path.read_bytes()
        if len(data) > 1:
            path.write_bytes(data[: self.plan.rng.randint(1, len(data) - 1)])

    def _corrupt_file(self, path: str | pathlib.Path) -> None:
        path = pathlib.Path(path)
        data = bytearray(path.read_bytes())
        if not data:
            return
        position = self.plan.rng.randrange(len(data))
        data[position : position + len(_CORRUPTION)] = _CORRUPTION
        path.write_bytes(bytes(data))

"""Fault plans: seeded, reproducible schedules of injected failures.

A :class:`FaultPlan` names *where* (injection point), *what* (action) and
*when* (the N-th occurrence of the point) a fault fires.  Every random
choice the plan or its injector ever makes — torn-write byte offsets,
corruption positions, the point/action picked by :meth:`FaultPlan.single_fault`
— comes from one ``random.Random(seed)``, so a failing scenario replays
exactly from its seed.
"""

from __future__ import annotations

import errno
import random
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "INJECTION_POINTS",
    "VALID_ACTIONS",
    "FaultAction",
    "FaultSpec",
    "FaultPlan",
]


class FaultAction:
    """The failure modes the injector knows how to simulate."""

    #: kill the simulated process at the point (before the durable write at
    #: ``log.append``/``log.flush``; mid-write — tearing the file — at
    #: ``snapshot.write``)
    CRASH = "crash"
    #: write only a seeded prefix of the record's bytes, then crash
    #: (``log.append`` only)
    TORN_WRITE = "torn_write"
    #: the durable write succeeds but the process dies before acknowledging
    #: it (``log.flush`` only)
    DROP_ACK = "drop_ack"
    #: raise a simulated ``OSError`` (disk-full / EIO) in place of the write
    IO_ERROR = "io_error"
    #: silently damage the snapshot file's bytes; no exception
    #: (``snapshot.write`` only)
    CORRUPT = "corrupt"


#: the named seams threaded through the durability/recovery stack
INJECTION_POINTS = (
    "log.append",
    "log.flush",
    "snapshot.write",
    "snapshot.fsync",
    "recovery.replay",
)

#: which actions make sense at which point
VALID_ACTIONS: dict[str, frozenset[str]] = {
    "log.append": frozenset(
        {FaultAction.CRASH, FaultAction.TORN_WRITE, FaultAction.IO_ERROR}
    ),
    "log.flush": frozenset(
        {FaultAction.CRASH, FaultAction.DROP_ACK, FaultAction.IO_ERROR}
    ),
    "snapshot.write": frozenset(
        {FaultAction.CRASH, FaultAction.CORRUPT, FaultAction.IO_ERROR}
    ),
    "snapshot.fsync": frozenset({FaultAction.CRASH, FaultAction.IO_ERROR}),
    "recovery.replay": frozenset({FaultAction.CRASH, FaultAction.IO_ERROR}),
}

#: occurrence counting is "pre"; only the post-durable-write ack drop fires
#: on the "post" stage of its point
_POST_STAGE_ACTIONS = frozenset({FaultAction.DROP_ACK})


def stage_of(action: str) -> str:
    return "post" if action in _POST_STAGE_ACTIONS else "pre"


@dataclass
class FaultSpec:
    """One scheduled fault: fire ``action`` on the ``at``-th hit of ``point``."""

    point: str
    action: str
    #: 1-based occurrence of the injection point at which to fire
    at: int = 1
    #: errno for ``io_error`` faults
    errno_code: int = errno.ENOSPC
    #: set once the fault has fired; specs are one-shot
    fired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise ReproError(
                f"unknown injection point {self.point!r}; "
                f"known points: {', '.join(INJECTION_POINTS)}"
            )
        if self.action not in VALID_ACTIONS[self.point]:
            raise ReproError(
                f"action {self.action!r} is not valid at {self.point!r}; "
                f"valid: {', '.join(sorted(VALID_ACTIONS[self.point]))}"
            )
        if self.at < 1:
            raise ReproError("fault occurrence index 'at' is 1-based")

    @property
    def label(self) -> str:
        return f"{self.point}#{self.at}:{self.action}"


class FaultPlan:
    """A reproducible set of :class:`FaultSpec`\\ s plus the seeded RNG.

    Usage::

        plan = FaultPlan(seed=42)
        plan.add("log.flush", FaultAction.CRASH, at=3)
        plan.add("snapshot.write", FaultAction.CORRUPT)
        injector = FaultInjector(plan)
        engine.install_fault_injector(injector)
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.specs: list[FaultSpec] = []

    def add(
        self,
        point: str,
        action: str,
        *,
        at: int = 1,
        errno_code: int = errno.ENOSPC,
    ) -> FaultSpec:
        spec = FaultSpec(point=point, action=action, at=at, errno_code=errno_code)
        self.specs.append(spec)
        return spec

    @property
    def pending(self) -> list[FaultSpec]:
        return [spec for spec in self.specs if not spec.fired]

    @property
    def all_fired(self) -> bool:
        return all(spec.fired for spec in self.specs)

    def describe(self) -> str:
        return ", ".join(spec.label for spec in self.specs) or "<empty plan>"

    # ------------------------------------------------------------------

    @classmethod
    def single_fault(
        cls,
        seed: int,
        *,
        points: tuple[str, ...] = INJECTION_POINTS,
        max_occurrence: int = 12,
    ) -> "FaultPlan":
        """One seeded random fault — the unit of the E10 sweep.

        Snapshot-path points fire far less often than log-path points (once
        per checkpoint vs. once per command), so their occurrence bound is
        kept small to guarantee the fault actually triggers inside a short
        workload.
        """
        plan = cls(seed)
        point = plan.rng.choice(list(points))
        action = plan.rng.choice(sorted(VALID_ACTIONS[point]))
        bound = 2 if point.startswith("snapshot.") else max_occurrence
        at = plan.rng.randint(1, bound)
        errno_code = plan.rng.choice([errno.ENOSPC, errno.EIO])
        plan.add(point, action, at=at, errno_code=errno_code)
        if point == "recovery.replay":
            # a replay fault only fires once a recovery is underway; pair it
            # with a crash that forces one
            plan.add(
                "log.flush",
                FaultAction.CRASH,
                at=plan.rng.randint(2, max_occurrence),
            )
        return plan

"""Deterministic fault injection for the durability and recovery stack.

The paper's fault-tolerance claim is that upstream backup + command-log
replay recovers *bit-for-bit* the state an uninterrupted run would have
produced.  This package makes that claim testable under hostile failures
instead of only at clean quiescent points:

* :class:`FaultPlan` — a seeded, fully reproducible schedule of faults at
  named injection points (``log.append``, ``log.flush``, ``snapshot.write``,
  ``snapshot.fsync``, ``recovery.replay``);
* :class:`FaultInjector` — the runtime object the engine/durability seams
  call into; it crashes the process model, tears log records mid-write,
  drops post-flush acks, raises simulated ``OSError``\\ s, or corrupts
  snapshot files, exactly when the plan says so;
* :class:`RecoveryEquivalenceChecker` — runs one seeded workload twice
  (uninterrupted vs. faulted + recovered) and asserts table-by-table,
  window-by-window state equality.

See ``docs/INTERNALS.md`` § "Fault tolerance & fault injection" for the
contract each injection point honors.
"""

from repro.faults.checker import (
    EquivalenceReport,
    RecoveryEquivalenceChecker,
    full_fingerprint,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    INJECTION_POINTS,
    VALID_ACTIONS,
    FaultAction,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "INJECTION_POINTS",
    "VALID_ACTIONS",
    "FaultAction",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "RecoveryEquivalenceChecker",
    "EquivalenceReport",
    "full_fingerprint",
]

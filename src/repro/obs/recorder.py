"""The flight recorder: what the server was doing when it mattered.

A bounded ring of recent request records plus a separate slow-transaction
log (requests over a configurable threshold), designed for the network
front door but engine-agnostic: anything that serves requests can
:meth:`~FlightRecorder.record` one dict per request.

Records are cheap on purpose — one small dict append under a lock, no
span-tree assembly, no I/O — so the recorder can stay on by default.  The
expensive join (attaching each record's span tree out of the trace
collector) happens only at *dump* time: on an error, on a crash, or on
operator request (the net protocol's ``stats`` frame with ``flight`` set,
or the HTTP ``/flight`` endpoint).

Dump format is JSONL, one record per line::

    {"seq": 17, "kind": "call", "name": "validate_vote", "conn": 3,
     "trace_id": 1099511627777, "start_us": ..., "duration_us": 812.4,
     "ok": true, "error": null, "slow": false,
     "spans": [ ...span dicts for trace 1099511627777... ]}

``spans`` appears only when a collector is supplied and the record carried
a trace id — flight dumps from an untraced server still carry the request
facts.
"""

from __future__ import annotations

import json
import pathlib
import threading
from collections import deque
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import TraceCollector

__all__ = ["FlightRecorder"]

#: default slow-request threshold: 10ms is glacial for a point transaction
DEFAULT_SLOW_US = 10_000.0


class FlightRecorder:
    """Bounded request ring + slow log, dumped to JSONL on demand.

    Thread-safety: ``record`` runs on the engine thread while ``dump`` /
    ``summary`` / ``to_payload`` may run on an HTTP or event-loop thread,
    so every touch of the rings takes the (uncontended) lock.
    """

    def __init__(
        self,
        capacity: int = 512,
        *,
        slow_us: float = DEFAULT_SLOW_US,
        slow_capacity: int = 128,
    ) -> None:
        if capacity < 1:
            raise ValueError("FlightRecorder capacity must be >= 1")
        self.capacity = capacity
        self.slow_us = slow_us
        self._recent: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._slow: deque[dict[str, Any]] = deque(maxlen=slow_capacity)
        self._lock = threading.Lock()
        self.recorded = 0
        self.errors = 0
        self.slow_count = 0
        self.dumps = 0

    # ------------------------------------------------------------------

    def record(
        self,
        *,
        kind: str,
        name: str | None = None,
        conn: int | None = None,
        trace_id: int | None = None,
        start_us: int | None = None,
        duration_us: float | None = None,
        ok: bool = True,
        error: str | None = None,
    ) -> dict[str, Any]:
        """Append one request record; returns it (already sealed)."""
        slow = duration_us is not None and duration_us >= self.slow_us
        entry = {
            "seq": 0,  # assigned under the lock
            "kind": kind,
            "name": name,
            "conn": conn,
            "trace_id": trace_id,
            "start_us": start_us,
            "duration_us": duration_us,
            "ok": ok,
            "error": error,
            "slow": slow,
        }
        with self._lock:
            self.recorded += 1
            entry["seq"] = self.recorded
            self._recent.append(entry)
            if not ok:
                self.errors += 1
            if slow:
                self.slow_count += 1
                self._slow.append(entry)
        return entry

    # ------------------------------------------------------------------

    def recent(self, limit: int | None = None) -> list[dict[str, Any]]:
        with self._lock:
            records = list(self._recent)
        return records if limit is None else records[-limit:]

    def slow(self, limit: int | None = None) -> list[dict[str, Any]]:
        with self._lock:
            records = list(self._slow)
        return records if limit is None else records[-limit:]

    def summary(self) -> dict[str, Any]:
        with self._lock:
            return {
                "recorded": self.recorded,
                "retained": len(self._recent),
                "errors": self.errors,
                "slow": self.slow_count,
                "slow_retained": len(self._slow),
                "slow_threshold_us": self.slow_us,
                "capacity": self.capacity,
                "dumps": self.dumps,
            }

    # ------------------------------------------------------------------
    # the dump-time span join
    # ------------------------------------------------------------------

    def _joined(
        self,
        records: list[dict[str, Any]],
        collector: "TraceCollector | None",
    ) -> list[dict[str, Any]]:
        if collector is None:
            return [dict(record) for record in records]
        by_trace = collector.traces()
        out = []
        for record in records:
            entry = dict(record)
            spans = by_trace.get(record.get("trace_id"))
            if spans is not None:
                entry["spans"] = [span.to_dict() for span in spans]
            out.append(entry)
        return out

    def to_payload(
        self,
        *,
        collector: "TraceCollector | None" = None,
        limit: int = 64,
        slow_only: bool = False,
    ) -> list[dict[str, Any]]:
        """Recent (or slow) records as JSON-able dicts, span trees attached."""
        records = self.slow(limit) if slow_only else self.recent(limit)
        return self._joined(records, collector)

    def dump(
        self,
        path: str | pathlib.Path,
        *,
        collector: "TraceCollector | None" = None,
        reason: str = "operator",
    ) -> pathlib.Path:
        """Write the whole ring (+ span trees) as JSONL; returns the path."""
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        records = self._joined(self.recent(), collector)
        header = {
            "flight_recorder": self.summary(),
            "reason": reason,
        }
        with target.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, separators=(",", ":")) + "\n")
            for record in records:
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        with self._lock:
            self.dumps += 1
        return target

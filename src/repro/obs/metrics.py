"""Metrics: counters, gauges and fixed-bucket latency histograms.

Where the tracer answers "where did *this* transaction's time go", the
metrics registry answers "what is the engine doing *right now*" — the
always-on aggregates a dashboard tails and a benchmark snapshots.

Three instrument types, deliberately minimal:

* :class:`Counter` — monotonically increasing (txns committed, round trips);
* :class:`Gauge` — set-to-current-value (queue depth, live stream tuples);
* :class:`Histogram` — fixed log-spaced microsecond buckets with
  nearest-rank percentile estimation (p50/p95/p99 transaction latency).
  Fixed buckets keep ``observe`` O(log buckets) with zero allocation,
  which is what lets tracing-on stay inside the E12 overhead budget.

Two export formats:

* :meth:`MetricsRegistry.to_prometheus` — the text exposition format, so
  the output pastes into any Prometheus/Grafana tooling;
* :meth:`MetricsRegistry.to_json` — a nested snapshot the TUI dashboard
  and tests consume directly.

The existing :class:`~repro.hstore.stats.EngineStats` counters are mirrored
in via :meth:`MetricsRegistry.mirror_engine_stats` — the registry does not
replace the paper's round-trip counters, it re-exposes them.
"""

from __future__ import annotations

import bisect
import json
import pathlib
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_US",
]

#: log-spaced bucket upper bounds in microseconds: 1us .. ~100s
DEFAULT_LATENCY_BUCKETS_US: tuple[float, ...] = tuple(
    round(base * scale, 3)
    for scale in (1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000)
    for base in (1.0, 2.5, 5.0)
) + (100_000_000.0,)


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def set_to(self, value: float) -> None:
        """Mirror an externally tracked monotone counter (EngineStats)."""
        self.value = value


class Gauge:
    """A value that goes up and down."""

    __slots__ = ("name", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with nearest-rank percentile estimation.

    ``observe`` is a binary search plus two adds — no allocation, no
    sorting, bounded memory — so the transaction hot path can afford it.
    Percentiles interpolate within the winning bucket, clamped to the
    observed max so a sparse histogram does not report a bound far beyond
    anything seen.
    """

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count", "sum", "max")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_US,
    ) -> None:
        self.name = name
        self.help = help
        self.bounds: tuple[float, ...] = tuple(sorted(buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        # one extra overflow bucket for values above the last bound
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile estimate from the bucket counts."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(round(pct / 100.0 * self.count)))
        seen = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            seen += bucket_count
            if seen >= rank:
                upper = (
                    self.bounds[index] if index < len(self.bounds) else self.max
                )
                return min(upper, self.max)
        return self.max  # pragma: no cover - unreachable

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """A named family of counters, gauges and histograms with labels.

    Instruments are identified by ``(name, sorted(labels))``; asking for
    the same identity returns the same instrument, so call sites never
    need to cache handles (though hot paths should, to skip the dict
    lookup).
    """

    def __init__(self, *, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._instruments: dict[
            tuple[str, tuple[tuple[str, str], ...]], Counter | Gauge | Histogram
        ] = {}
        self._helps: dict[str, str] = {}

    # -- instrument access -------------------------------------------------

    def _get(
        self,
        cls: type,
        name: str,
        help: str,
        labels: Mapping[str, str],
        **kwargs: Any,
    ) -> Any:
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, help, **kwargs)
            self._instruments[key] = instrument
            if help:
                self._helps.setdefault(name, help)
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).kind}, requested {cls.kind}"
            )
        return instrument

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_US,
        **labels: str,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    # -- EngineStats mirroring ---------------------------------------------

    def mirror_engine_stats(
        self, snapshot: Mapping[str, int], **labels: str
    ) -> None:
        """Re-expose an ``EngineStats.snapshot()`` as ``engine_*`` counters.

        Call with a fresh snapshot whenever an up-to-date view is needed
        (exports below do not pull automatically — the registry has no
        reference to the engine).
        """
        for name, value in snapshot.items():
            self._get(Counter, f"engine_{name}", "", labels).set_to(value)

    # -- export ------------------------------------------------------------

    def instruments(
        self,
    ) -> list[tuple[str, tuple[tuple[str, str], ...], Counter | Gauge | Histogram]]:
        return sorted(
            ((name, key, inst) for (name, key), inst in self._instruments.items()),
            key=lambda item: (item[0], item[1]),
        )

    def to_json(self) -> dict[str, Any]:
        """Nested snapshot: metric name → [{labels, ...values}]."""
        out: dict[str, Any] = {}
        for name, key, instrument in self.instruments():
            entry: dict[str, Any] = {"labels": dict(key)}
            if isinstance(instrument, Histogram):
                entry.update(instrument.summary())
            else:
                entry["value"] = instrument.value
                entry["kind"] = instrument.kind
            out.setdefault(name, []).append(entry)
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        seen_header: set[str] = set()
        for name, key, instrument in self.instruments():
            full = f"{self.namespace}_{name}"
            if name not in seen_header:
                seen_header.add(name)
                help_text = self._helps.get(name, "")
                if help_text:
                    lines.append(f"# HELP {full} {help_text}")
                lines.append(f"# TYPE {full} {instrument.kind}")
            if isinstance(instrument, Histogram):
                cumulative = 0
                for bound, bucket_count in zip(
                    instrument.bounds, instrument.bucket_counts
                ):
                    cumulative += bucket_count
                    labels = _render_labels(key + (("le", f"{bound:g}"),))
                    lines.append(f"{full}_bucket{labels} {cumulative}")
                labels = _render_labels(key + (("le", "+Inf"),))
                lines.append(f"{full}_bucket{labels} {instrument.count}")
                lines.append(f"{full}_sum{_render_labels(key)} {instrument.sum:g}")
                lines.append(f"{full}_count{_render_labels(key)} {instrument.count}")
            else:
                lines.append(
                    f"{full}{_render_labels(key)} {instrument.value:g}"
                )
        return "\n".join(lines) + "\n"

    def write_json(self, path: str | pathlib.Path) -> pathlib.Path:
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return target

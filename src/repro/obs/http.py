"""A stdlib HTTP sidecar exposing the telemetry plane.

One tiny ``ThreadingHTTPServer`` on a daemon thread, serving GET-only
routes out of a plain ``{path: callable}`` table.  Each callable returns
``(content_type, body)``; raising :class:`HttpError` maps to that status,
anything else to 500.  Built for :class:`~repro.net.server.NetServer` —
which mounts ``/metrics`` (Prometheus text), ``/metrics.json``,
``/healthz``, ``/statsz`` and ``/flight`` — but generic enough for any
in-process publisher.

The engines are not thread-safe, so route callables that touch an engine
must hop onto its owning thread themselves (the net server routes those
reads through its single-worker engine executor); ``/healthz`` is answered
from plain counters so liveness probing works even when the engine is
wedged mid-batch.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

__all__ = ["HttpError", "ObsHttpServer"]

#: route callable: () -> (content_type, body-str-or-bytes)
RouteFn = Callable[[], tuple[str, Any]]


class HttpError(Exception):
    """Raise from a route callable to answer with a specific status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"
    routes: dict[str, RouteFn] = {}

    def log_message(self, *args: Any) -> None:  # pragma: no cover - silence
        pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        route = self.routes.get(path)
        if route is None:
            known = ", ".join(sorted(self.routes))
            self._answer(404, "text/plain", f"no route {path!r}; try: {known}\n")
            return
        try:
            content_type, body = route()
        except HttpError as exc:
            self._answer(exc.status, "text/plain", f"{exc}\n")
            return
        except TimeoutError:
            self._answer(503, "text/plain", "engine busy: snapshot timed out\n")
            return
        except Exception as exc:  # noqa: BLE001 - a probe must not kill serving
            self._answer(500, "text/plain", f"{type(exc).__name__}: {exc}\n")
            return
        self._answer(200, content_type, body)

    def _answer(self, status: int, content_type: str, body: Any) -> None:
        data = body.encode("utf-8") if isinstance(body, str) else bytes(body)
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # probe hung up; nothing to salvage


class ObsHttpServer:
    """Serve a route table over HTTP from a daemon thread."""

    def __init__(
        self,
        routes: dict[str, RouteFn],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.routes = dict(routes)
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObsHttpServer":
        if self._httpd is not None:
            return self
        handler = type("_BoundHandler", (_Handler,), {"routes": self.routes})
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

"""``repro.obs`` — end-to-end tracing, metrics and the demo dashboard.

The S-Store paper is a demo paper: its claims are shown on live dashboards
and argued via layer-crossing counts.  This package is the measurement
substrate that makes those arguments inspectable per event:

* :mod:`repro.obs.trace` — nestable spans with trace ids that survive the
  coordinator↔worker pipe hop, collected in a bounded ring buffer, exported
  as JSONL or Chrome ``trace_event`` JSON (opens in Perfetto);
* :mod:`repro.obs.metrics` — counters/gauges/latency histograms with
  Prometheus text exposition and JSON snapshots, mirroring the existing
  ``EngineStats`` round-trip counters;
* :mod:`repro.obs.config` — the :class:`ObsConfig` engines take at
  construction (default: off, one branch per hot-path site);
* :mod:`repro.obs.telemetry` — per-partition load telemetry piggybacked on
  worker mailbox replies, plus the Space-Saving heavy-hitter sketch;
* :mod:`repro.obs.recorder` — the flight recorder: a bounded ring of
  recent requests with span trees and a slow-transaction log, dumped to
  JSONL on error/crash/operator request;
* :mod:`repro.obs.http` — a stdlib HTTP sidecar serving ``/metrics``
  (Prometheus text), ``/healthz`` and friends;
* :mod:`repro.obs.dashboard` — ``python -m repro.obs.dashboard``, a
  stdlib-only live TUI reproducing the paper's demo screens (including a
  ``net`` mode that tails a remote server's ``/metrics`` endpoint).

Quick start::

    from repro.core.engine import SStoreEngine
    from repro.obs import ObsConfig

    engine = SStoreEngine(obs=ObsConfig())
    ...                                     # run a workload
    engine.tracer.collector.export_chrome("trace.json")   # → Perfetto
    print(engine.metrics.to_prometheus())
"""

from repro.obs.config import ObsConfig
from repro.obs.http import HttpError, ObsHttpServer
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.telemetry import PartitionTelemetry, SpaceSaving
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceCollector,
    TraceContext,
    Tracer,
    export_chrome_trace,
    export_jsonl,
    now_us,
)

__all__ = [
    "ObsConfig",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HttpError",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ObsHttpServer",
    "PartitionTelemetry",
    "Span",
    "SpaceSaving",
    "TraceCollector",
    "TraceContext",
    "Tracer",
    "export_chrome_trace",
    "export_jsonl",
    "now_us",
]

"""Span-based tracing: where one transaction's time and round trips go.

The paper argues its throughput story with *layer-crossing counts*; this
module turns those aggregates into per-event evidence.  A :class:`Span` is
one timed region of work — a transaction, a SQL statement, a trigger
cascade, a log flush, an IPC exchange — carrying a trace id shared by every
span in the same causal chain, so a Voter ingest, the TEs its PE triggers
fire, and the worker-side work of a multi-process call all stitch into one
tree.

Design constraints, in priority order:

1. **Disabled is free.**  Engines hold :data:`NULL_TRACER` by default and
   every hot-path instrumentation site guards on ``tracer.enabled`` — one
   attribute load and one branch when tracing is off.
2. **Enabled is cheap.**  A span is a ``__slots__`` object, ids are plain
   integer counters, timestamps come from ``perf_counter_ns`` (monotonic),
   and finished spans land in a bounded ring buffer (old spans fall off;
   tracing never grows without bound).
3. **Cross-process spans stitch.**  A tracer is constructed with a
   ``process`` label and an id ``origin`` so span/trace ids never collide
   between the coordinator and its workers, and span timestamps are mapped
   onto an epoch-anchored microsecond scale so per-process timelines line
   up (approximately — pipes are not PTP) in one Chrome trace.

Span kinds used by the engines (see ``docs/INTERNALS.md`` §9):
``call``, ``txn``, ``sql``, ``trigger``, ``window``, ``workflow``, ``ipc``,
``log.flush``, ``snapshot``, ``recovery``, ``compile`` (one per statement
parse+plan+closure-compile — §10).
"""

from __future__ import annotations

import json
import pathlib
import time
from collections import deque
from typing import Any, Iterable, Iterator

__all__ = [
    "Span",
    "TraceContext",
    "TraceCollector",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "export_jsonl",
    "export_chrome_trace",
    "now_us",
]

#: spans per process-id namespace; keeps ids unique across a 2^40-span run
_ORIGIN_STRIDE = 1 << 40

#: offset mapping ``perf_counter_ns`` onto epoch microseconds, captured at
#: import time in every process so sibling processes share a timebase
_EPOCH_OFFSET_US = time.time_ns() // 1000 - time.perf_counter_ns() // 1000


#: bound once — the span hot path calls this twice per span
_perf_ns = time.perf_counter_ns


def _now_us() -> int:
    """Monotonic microseconds, anchored to the epoch at process start."""
    return _EPOCH_OFFSET_US + _perf_ns() // 1000


def now_us() -> int:
    """Public timestamp source for out-of-band span recording.

    Same scale as every span's ``start_us``/``end_us``: monotonic, anchored
    to the epoch at process start, so timestamps taken here line up with
    spans recorded by any tracer in this process (and, approximately,
    sibling processes — see the module docstring).
    """
    return _EPOCH_OFFSET_US + _perf_ns() // 1000


class TraceContext(tuple):
    """An immutable ``(trace_id, span_id)`` pair that crosses processes.

    This is what a mailbox message carries: enough for the receiving
    tracer to parent its spans under the sender's active span.  A plain
    tuple subclass so it pickles small and compares by value.
    """

    __slots__ = ()

    def __new__(cls, trace_id: int, span_id: int) -> "TraceContext":
        return super().__new__(cls, (trace_id, span_id))

    def __getnewargs__(self) -> tuple[int, int]:
        # pickle rebuilds tuple subclasses through __new__; without this it
        # would pass the whole tuple as a single argument
        return (self[0], self[1])

    @property
    def trace_id(self) -> int:
        return self[0]

    @property
    def span_id(self) -> int:
        return self[1]


class Span:
    """One timed region of work inside a trace."""

    __slots__ = (
        "span_id",
        "trace_id",
        "parent_id",
        "kind",
        "name",
        "process",
        "start_us",
        "end_us",
        "attrs",
        "_tracer",
    )

    def __init__(
        self,
        span_id: int,
        trace_id: int,
        parent_id: int | None,
        kind: str,
        name: str,
        process: str,
        start_us: int,
        attrs: dict[str, Any] | None,
    ) -> None:
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.kind = kind
        self.name = name
        self.process = process
        self.start_us = start_us
        self.end_us: int | None = None
        self.attrs = attrs
        #: set by :meth:`Tracer.span` so the span closes itself on ``with``
        #: exit — the span is its own context manager, saving a per-span
        #: handle allocation on the hot path
        self._tracer: "Tracer | None" = None

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self.set(error=str(exc) or exc_type.__name__)
            self._tracer.end_span(self)
            return
        # inlined end_span fast path: a clean ``with`` exit always closes
        # the innermost open span
        tracer = self._tracer
        stack = tracer._stack
        if stack and stack[-1] is self:
            self.end_us = _EPOCH_OFFSET_US + _perf_ns() // 1000
            stack.pop()
            collector = tracer.collector
            collector._spans.append(self)
            collector.recorded += 1
            return
        tracer.end_span(self)

    @property
    def duration_us(self) -> int | None:
        if self.end_us is None:
            return None
        return self.end_us - self.start_us

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes after the span started (e.g. the txn outcome)."""
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "process": self.process,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "attrs": self.attrs or {},
        }

    # pickle support: __slots__ classes need explicit state plumbing so
    # worker span batches can ride the mailbox replies
    def __getstate__(self) -> tuple:
        return (
            self.span_id,
            self.trace_id,
            self.parent_id,
            self.kind,
            self.name,
            self.process,
            self.start_us,
            self.end_us,
            self.attrs,
        )

    def __setstate__(self, state: tuple) -> None:
        (
            self.span_id,
            self.trace_id,
            self.parent_id,
            self.kind,
            self.name,
            self.process,
            self.start_us,
            self.end_us,
            self.attrs,
        ) = state
        self._tracer = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dur = f"{self.duration_us}us" if self.end_us is not None else "open"
        return (
            f"Span({self.kind}:{self.name}, trace={self.trace_id}, "
            f"id={self.span_id}, parent={self.parent_id}, {dur})"
        )


class TraceCollector:
    """Bounded ring buffer of finished spans.

    ``capacity`` bounds memory: a long-running traced engine keeps the most
    recent spans and quietly drops the oldest (``dropped`` counts them).
    :meth:`drain` hands back and clears the buffer — the worker side of the
    mailbox protocol uses it to ship span batches with each reply.
    """

    def __init__(self, capacity: int = 65536) -> None:
        self._spans: deque[Span] = deque(maxlen=capacity)
        self.capacity = capacity
        self.recorded = 0

    @property
    def dropped(self) -> int:
        return self.recorded - len(self._spans)

    def record(self, span: Span) -> None:
        self._spans.append(span)
        self.recorded += 1

    def absorb(self, spans: Iterable[Span]) -> None:
        """Adopt spans recorded elsewhere (another process's batch)."""
        for span in spans:
            self.record(span)

    def spans(self) -> list[Span]:
        return list(self._spans)

    def drain(self) -> list[Span]:
        out = list(self._spans)
        self._spans.clear()
        return out

    def clear(self) -> None:
        self._spans.clear()
        self.recorded = 0

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(list(self._spans))

    # -- queries (tests and tools) ----------------------------------------

    def traces(self) -> dict[int, list[Span]]:
        """Finished spans grouped by trace id, in recording order."""
        grouped: dict[int, list[Span]] = {}
        for span in self._spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def find(self, kind: str | None = None, name: str | None = None) -> list[Span]:
        return [
            span
            for span in self._spans
            if (kind is None or span.kind == kind)
            and (name is None or span.name == name)
        ]

    # -- export ------------------------------------------------------------

    def export_jsonl(self, path: str | pathlib.Path) -> pathlib.Path:
        return export_jsonl(self.spans(), path)

    def export_chrome(self, path: str | pathlib.Path) -> pathlib.Path:
        return export_chrome_trace(self.spans(), path)


class Tracer:
    """Records nestable spans into a :class:`TraceCollector`.

    The tracer keeps a stack of open spans; a new span parents under the
    top of the stack (or under an explicitly activated remote context),
    and a root span allocates a fresh trace id.  Strictly single-threaded,
    matching the engines' serial execution model.
    """

    enabled = True

    def __init__(
        self,
        *,
        process: str = "engine",
        origin: int = 0,
        collector: TraceCollector | None = None,
        sql_spans: bool = True,
    ) -> None:
        self.process = process
        #: record per-SQL-statement spans (the hottest level; see ObsConfig)
        self.sql_spans = sql_spans
        self.collector = collector if collector is not None else TraceCollector()
        self._id_base = origin * _ORIGIN_STRIDE
        self._next_id = 1
        self._stack: list[Span] = []
        #: adopted remote parent, used when the local stack is empty
        self._remote: TraceContext | None = None

    # -- span lifecycle ----------------------------------------------------

    def start_span(
        self, kind: str, name: str, attrs: dict[str, Any] | None = None
    ) -> Span:
        span_id = self._id_base + self._next_id
        self._next_id += 1
        stack = self._stack
        if stack:
            parent = stack[-1]
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif self._remote is not None:
            trace_id, parent_id = self._remote
        else:
            trace_id, parent_id = span_id, None
        span = Span(
            span_id,
            trace_id,
            parent_id,
            kind,
            name,
            self.process,
            _EPOCH_OFFSET_US + _perf_ns() // 1000,
            attrs,
        )
        stack.append(span)
        return span

    def end_span(self, span: Span) -> Span:
        span.end_us = _EPOCH_OFFSET_US + _perf_ns() // 1000
        stack = self._stack
        # fast path: well-nested close of the innermost open span — this is
        # every span the engines record outside of exception unwinds
        if stack and stack[-1] is span:
            stack.pop()
            collector = self.collector
            collector._spans.append(span)
            collector.recorded += 1
            return span
        if not any(open_span is span for open_span in stack):
            # ended out of band (double end, or a span adopted from a peer):
            # record it without disturbing the stack
            self.collector.record(span)
            return span
        # close any children left open (an exception unwound past them)
        while stack:
            top = stack.pop()
            if top is span:
                break
            top.end_us = span.end_us
            top.set(leaked=True)
            self.collector.record(top)
        self.collector.record(span)
        return span

    def span(self, kind: str, name: str, **attrs: Any) -> Span:
        """``with tracer.span("txn", "validate_vote", txn_id=7) as span:``

        The hot-path form: :meth:`start_span` is inlined here because this
        runs a handful of times per transaction on every traced engine.
        """
        span_id = self._id_base + self._next_id
        self._next_id += 1
        stack = self._stack
        if stack:
            parent = stack[-1]
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif self._remote is not None:
            trace_id, parent_id = self._remote
        else:
            trace_id, parent_id = span_id, None
        span = Span(
            span_id,
            trace_id,
            parent_id,
            kind,
            name,
            self.process,
            _EPOCH_OFFSET_US + _perf_ns() // 1000,
            attrs or None,
        )
        span._tracer = self
        stack.append(span)
        return span

    # -- out-of-band recording ---------------------------------------------

    def alloc_id(self) -> int:
        """Allocate one span/trace id from this tracer's origin namespace.

        For callers that must know a span's id *before* the work it covers
        runs — e.g. a network client that ships the id to the server inside
        the request and only records the client-side span once the response
        arrives.
        """
        span_id = self._id_base + self._next_id
        self._next_id += 1
        return span_id

    def record_span(
        self,
        kind: str,
        name: str,
        *,
        trace_id: int,
        start_us: int,
        end_us: int,
        parent_id: int | None = None,
        span_id: int | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> Span:
        """Record a finished span directly, bypassing the span stack.

        The stack is strictly LIFO and single-threaded; concurrent in-flight
        work (pipelined network requests, a commit batch shared by several
        client traces) cannot use ``with tracer.span(...)``.  This path
        builds the span from explicit timestamps (:func:`now_us`) and ids
        (:meth:`alloc_id`) and appends it straight to the collector.
        """
        if span_id is None:
            span_id = self._id_base + self._next_id
            self._next_id += 1
        span = Span(
            span_id, trace_id, parent_id, kind, name, self.process, start_us, attrs
        )
        span.end_us = end_us
        self.collector.record(span)
        return span

    # -- sampling ----------------------------------------------------------

    def suspend(self) -> None:
        """Turn every instrumentation site into its no-op branch.

        ``enabled`` is what each hot path checks before recording, so
        flipping it off makes a suspended stretch cost exactly what an
        untraced engine costs — one attribute load and one branch per
        site.  This is the head-based-sampling primitive: the network
        server suspends the tracer around requests it decides not to
        trace, then :meth:`resume`\\ s.  Must bracket whole requests on the
        single engine thread — suspending with spans still open on the
        stack would tear a trace.
        """
        self.enabled = False

    def resume(self) -> None:
        self.enabled = True

    # -- trace-context propagation ----------------------------------------

    def current_context(self) -> TraceContext | None:
        """The active ``(trace_id, span_id)``, for shipping to a peer."""
        if self._stack:
            top = self._stack[-1]
            return TraceContext(top.trace_id, top.span_id)
        return self._remote

    def activate(self, context: TraceContext | tuple | None) -> None:
        """Adopt a remote parent for subsequently started root-level spans."""
        if context is None:
            self._remote = None
        else:
            self._remote = TraceContext(context[0], context[1])

    def deactivate(self) -> None:
        self._remote = None

    @property
    def depth(self) -> int:
        return len(self._stack)


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Engines default to the shared :data:`NULL_TRACER` instance; hot paths
    guard with ``if tracer.enabled:`` so tracing-off costs one branch.
    The API still works (returns inert spans) so cold paths may skip the
    guard without crashing.
    """

    enabled = False
    sql_spans = False

    def __init__(self) -> None:
        self.process = "null"
        self.collector = TraceCollector(capacity=1)
        # attrs is a real dict so hot paths may store attributes into the
        # shared noop span without branching on the tracer being real
        self._noop_span = Span(0, 0, None, "noop", "noop", "null", 0, {})
        self._handle = _NullHandle(self._noop_span)

    def start_span(self, kind: str, name: str, attrs: Any = None) -> Span:
        return self._noop_span

    def end_span(self, span: Span) -> Span:
        return span

    def span(self, kind: str, name: str, **attrs: Any) -> "_NullHandle":
        return self._handle

    def alloc_id(self) -> int:
        return 0

    def record_span(self, kind: str, name: str, **kwargs: Any) -> Span:
        return self._noop_span

    def current_context(self) -> None:
        return None

    def activate(self, context: Any) -> None:
        pass

    def deactivate(self) -> None:
        pass

    def suspend(self) -> None:
        pass

    def resume(self) -> None:
        pass

    @property
    def depth(self) -> int:
        return 0


class _NullHandle:
    __slots__ = ("_span",)

    def __init__(self, span: Span) -> None:
        self._span = span

    @property
    def span(self) -> Span:
        return self._span

    def set(self, **attrs: Any) -> Span:
        return self._span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        pass


#: the shared disabled tracer every engine starts with
NULL_TRACER = NullTracer()


# ---------------------------------------------------------------------------
# export
# ---------------------------------------------------------------------------


def export_jsonl(spans: Iterable[Span], path: str | pathlib.Path) -> pathlib.Path:
    """One span per line, as JSON — grep-able, diff-able, stream-able."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict(), separators=(",", ":")) + "\n")
    return target


def export_chrome_trace(
    spans: Iterable[Span], path: str | pathlib.Path
) -> pathlib.Path:
    """Chrome ``trace_event`` JSON — opens directly in Perfetto.

    Each tracer ``process`` becomes a Chrome process row (coordinator and
    workers side by side); spans are complete ("ph": "X") events with the
    trace id and attributes in ``args`` so Perfetto's search and selection
    panes surface them.
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    processes: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    for span in spans:
        pid = processes.setdefault(span.process, len(processes) + 1)
        args: dict[str, Any] = {"trace_id": span.trace_id, "span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.attrs:
            args.update(span.attrs)
        events.append(
            {
                "name": f"{span.kind}:{span.name}",
                "cat": span.kind,
                "ph": "X",
                "ts": span.start_us,
                "dur": (span.duration_us or 0),
                "pid": pid,
                "tid": 1,
                "args": args,
            }
        )
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": process},
        }
        for process, pid in processes.items()
    ]
    target.write_text(
        json.dumps({"traceEvents": metadata + events}, separators=(",", ":"))
    )
    return target

"""Per-partition load telemetry: metric deltas and heavy-hitter sketches.

The ROADMAP's elastic-repartitioning item triggers on "per-worker metrics
already exported via repro.obs" — this module is where those metrics come
from.  Every :class:`~repro.parallel.worker.PartitionWorker` keeps a
:class:`PartitionTelemetry` next to its engine shard and piggybacks one
bounded delta on each mailbox reply; the coordinator folds the deltas into
partition-labeled counters/histograms in its
:class:`~repro.obs.metrics.MetricsRegistry` and keeps the latest hot-key
sketch per partition (see
:meth:`~repro.parallel.engine.ParallelHStoreEngine.partition_skew`).

Piggybacking, not polling: the coordinator learns each partition's load as
a side effect of traffic it already sends, with no extra IPC round trips
and no sampling thread.  An idle partition ships nothing — which is itself
the skew signal.

The hot-key detector is the classic Space-Saving sketch (Metwally,
Agrawal, El Abbadi 2005): ``k`` counters, O(1) memory, with two hard
guarantees the property tests pin down (``N`` = total offered weight):

* every estimate **overcounts**: ``true ≤ estimate ≤ true + error`` where
  ``error`` is tracked per counter and bounded by ``N / k``;
* any key with true frequency ``> N / k`` is **guaranteed present** —
  a genuinely hot key cannot be evicted by cold ones.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

__all__ = ["SpaceSaving", "PartitionTelemetry"]


class SpaceSaving:
    """Bounded top-K frequency sketch with per-key error bounds.

    ``offer`` is O(1) amortized on hits and O(capacity) on an eviction
    (a min-scan over at most ``capacity`` counters — ``capacity`` is small,
    16 by default, so the scan is cheaper than a heap's bookkeeping).
    """

    __slots__ = ("capacity", "total", "_counts", "_errors")

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("SpaceSaving capacity must be >= 1")
        self.capacity = capacity
        #: total offered weight N (including weight on evicted keys)
        self.total = 0
        self._counts: dict[Any, int] = {}
        self._errors: dict[Any, int] = {}

    def __len__(self) -> int:
        return len(self._counts)

    def offer(self, key: Any, weight: int = 1) -> None:
        """Account ``weight`` occurrences of ``key``."""
        self.total += weight
        counts = self._counts
        if key in counts:
            counts[key] += weight
            return
        if len(counts) < self.capacity:
            counts[key] = weight
            self._errors[key] = 0
            return
        # evict the minimum counter; the newcomer inherits its count as its
        # error bound (it may have occurred up to min_count times unseen)
        victim = min(counts, key=counts.__getitem__)
        floor = counts.pop(victim)
        del self._errors[victim]
        counts[key] = floor + weight
        self._errors[key] = floor

    def top(self, k: int | None = None) -> list[tuple[Any, int, int]]:
        """``(key, estimate, error)`` triples, highest estimate first.

        ``true_count`` is bracketed by ``estimate - error <= true <=
        estimate``; keys with ``estimate - error > threshold`` are
        *guaranteed* above ``threshold``.
        """
        ranked = sorted(
            ((key, count, self._errors[key]) for key, count in self._counts.items()),
            key=lambda item: (-item[1], str(item[0])),
        )
        return ranked if k is None else ranked[:k]

    @property
    def error_bound(self) -> float:
        """Worst-case overcount of any estimate: ``N / capacity``."""
        return self.total / self.capacity

    def merge(self, other: "SpaceSaving") -> "SpaceSaving":
        """Fold another sketch in; estimates and error bounds both add.

        Every merged estimate still brackets the combined true count
        (``est - err <= true <= est``): per-key counts and errors add when
        both sides tracked the key, and a key entering through the eviction
        path inherits the victim's count as additional error, exactly as in
        :meth:`offer`.
        """
        carried = 0
        for key, count, error in other.top():
            carried += count
            if key in self._counts:
                self._counts[key] += count
                self._errors[key] += error
                self.total += count
            else:
                self.offer(key, count)
                self._errors[key] += error
        # weight the other sketch absorbed on keys it later evicted
        self.total += max(0, other.total - carried)
        return self

    # -- wire form (mailbox replies are pickled; keep it plain) ----------

    def to_list(self) -> list[tuple[Any, int, int]]:
        return self.top()

    def to_dict(self) -> dict[str, Any]:
        return {
            "capacity": self.capacity,
            "total": self.total,
            "top": [[str(key), count, error] for key, count, error in self.top()],
            "error_bound": self.error_bound,
        }

    @classmethod
    def from_state(
        cls, capacity: int, total: int, entries: Iterable[tuple[Any, int, int]]
    ) -> "SpaceSaving":
        sketch = cls(capacity)
        sketch.total = total
        for key, count, error in entries:
            sketch._counts[key] = count
            sketch._errors[key] = error
        return sketch


class PartitionTelemetry:
    """The worker-side accumulator: what rides home on each mailbox reply.

    One instance per partition worker.  :meth:`drain` computes the
    EngineStats delta since the previous reply (nonzero counters only — an
    idle tick ships nothing), stamps the handling latency, and attaches the
    current hot-key top-K.  The payload is a plain dict of plain values so
    it pickles small alongside the reply tuple.
    """

    __slots__ = ("worker_id", "sketch", "_last_snapshot")

    def __init__(self, worker_id: int, heavy_hitter_k: int = 16) -> None:
        self.worker_id = worker_id
        self.sketch = SpaceSaving(heavy_hitter_k)
        self._last_snapshot: dict[str, int] = {}

    def offer_key(self, key: Any, weight: int = 1) -> None:
        self.sketch.offer(key, weight)

    def drain(
        self, snapshot: Mapping[str, int], op: str, op_us: float
    ) -> dict[str, Any] | None:
        """The per-reply payload, or ``None`` when nothing changed."""
        last = self._last_snapshot
        delta = {
            name: value - last.get(name, 0)
            for name, value in snapshot.items()
            if value != last.get(name, 0)
        }
        self._last_snapshot = dict(snapshot)
        return {
            "stats": delta,
            "op": op,
            "op_us": op_us,
            "sketch": {
                "capacity": self.sketch.capacity,
                "total": self.sketch.total,
                "top": self.sketch.to_list(),
            },
        }

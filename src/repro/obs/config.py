"""Observability configuration: one opt-in knob per engine.

An engine constructed without an :class:`ObsConfig` gets the shared no-op
tracer and no metrics registry — every instrumentation site then costs one
attribute load and one branch.  Passing ``ObsConfig()`` turns on both the
tracer and the metrics registry; the fields below trim either side.

The config is a frozen picklable dataclass because the multi-process
deployment ships it to every :class:`~repro.parallel.worker.PartitionWorker`
inside the worker's :class:`~repro.parallel.worker.WorkerConfig` — the
workers build their own tracer/registry from it and stream span batches
back over the mailbox.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ObsConfig"]


@dataclass(frozen=True)
class ObsConfig:
    """What to observe and how much to retain."""

    #: record spans (txn/sql/trigger/ipc/... — see repro.obs.trace)
    tracing: bool = True
    #: keep a metrics registry and update latency histograms per txn
    metrics: bool = True
    #: ring-buffer capacity of the trace collector, in spans
    trace_capacity: int = 65536
    #: also record per-EE-event spans — one per SQL statement, window
    #: maintenance firing and EE-trigger firing.  The microscope setting,
    #: off by default: a span costs a couple of microseconds and the EE
    #: executes thousands of such events per second, so they cost ~15%
    #: throughput where the default txn/PE-trigger/workflow-level tracing
    #: stays under 5% (measured by benchmark E12).
    sql_spans: bool = False
    #: piggyback bounded per-partition metric deltas (EngineStats deltas,
    #: op latency, hot-key sketch) on worker mailbox replies; the
    #: coordinator folds them into partition-labeled instruments.  Requires
    #: ``metrics``; costs one small dict per reply (measured by E17).
    partition_telemetry: bool = True
    #: counter capacity of each worker's Space-Saving heavy-hitter sketch:
    #: any key whose frequency exceeds N/k of that partition's offered keys
    #: is guaranteed present in the top-k report
    heavy_hitter_k: int = 16

    @property
    def enabled(self) -> bool:
        return self.tracing or self.metrics

"""Live terminal dashboard over an instrumented engine run.

``python -m repro.obs.dashboard`` deploys one of the demo applications
(Voter or BikeShare) on an instrumented engine, drives its workload, and
redraws an operator's view a few times a second:

* throughput — committed txns/s and stream tuples ingested/s, from
  ``EngineStats`` deltas between frames;
* latency — per-procedure p50/p95/p99 out of the ``txn_latency_us`` /
  ``call_latency_us`` histograms in the engine's metrics registry;
* layer-crossing round trips (client↔PE, PE↔EE, coordinator↔worker IPC);
* queue depths — pending stream TEs and per-stream buffered tuples on the
  streaming engine, or per-worker committed counts on the process cluster;
* an application panel (Voter leaderboard / BikeShare station occupancy);
* the tracer's span count, so a viewer can see the trace growing live.

``--engine net`` needs no engine at all: the dashboard polls a remote
:class:`~repro.net.server.NetServer`'s HTTP telemetry sidecar
(``--url http://host:port``, the ``/statsz`` route) and renders the same
operator view — plus the partition-skew and stream-lag panels — from the
scrape, so one terminal can watch a server running anywhere.

Everything is stdlib: the "TUI" is an ANSI clear-screen redraw (suppress
with ``--plain``, which appends frames instead — that is also what the
``make obs`` smoke test and CI use, since neither has a tty worth clearing).

``--export-trace`` / ``--export-chrome`` / ``--export-metrics`` write the
run's trace (JSONL / Chrome ``trace_event``) and metrics (JSON) on exit, so
a two-second smoke run doubles as the artifact generator for CI.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Callable

from repro.obs.config import ObsConfig

CLEAR = "\x1b[2J\x1b[H"

#: how much workload one step() feeds before the next redraw
VOTER_CHUNK = 120
BIKESHARE_TICKS = 4


# ---------------------------------------------------------------------------
# Drivers: one per (app, engine) combination
# ---------------------------------------------------------------------------


class VoterSStoreDriver:
    """Voter on the streaming engine: ingest → trigger chain per batch."""

    name = "voter @ sstore"

    def __init__(self, obs: ObsConfig, seed: int, workers: int) -> None:
        from repro.apps.voter.sstore_app import VoterSStoreApp
        from repro.apps.voter.workload import VoterWorkload
        from repro.core.engine import SStoreEngine

        self.engine = SStoreEngine(obs=obs)
        self.app = VoterSStoreApp(self.engine, batch_size=4)
        self._requests = VoterWorkload(seed=seed).generate(500_000)
        self._cursor = 0

    def step(self) -> None:
        chunk = self._requests[self._cursor : self._cursor + VOTER_CHUNK]
        self._cursor += len(chunk)
        if chunk:
            self.app.submit(chunk, ingest_chunk=4)

    def queue_lines(self) -> list[str]:
        status = self.engine.workflow_status()
        lines = [f"pending TEs: {status['pending_tes']}"]
        for name, info in sorted(status["streams"].items()):
            lines.append(
                f"stream {name:<18} live={info['live_tuples']:<5}"
                f" buffered={info['buffered']}"
            )
        return lines

    def app_lines(self) -> list[str]:
        top = self.app.leaderboards()["top"]
        return ["top contestants:"] + [
            f"  #{number}  {name:<12} {votes} votes"
            for number, name, votes in top
        ]

    def shutdown(self) -> None:
        self.engine.shutdown()


class VoterParallelDriver:
    """Voter on the process cluster: client-chained SPs over N workers."""

    name = "voter @ parallel"

    def __init__(self, obs: ObsConfig, seed: int, workers: int) -> None:
        from repro.apps.voter.hstore_app import VoterHStoreApp
        from repro.apps.voter.workload import VoterWorkload
        from repro.parallel.engine import ParallelHStoreEngine

        self.engine = ParallelHStoreEngine(workers=workers, obs=obs)
        self.app = VoterHStoreApp(self.engine)
        self._requests = VoterWorkload(seed=seed).generate(500_000)
        self._cursor = 0

    def step(self) -> None:
        chunk = self._requests[self._cursor : self._cursor + VOTER_CHUNK]
        self._cursor += len(chunk)
        if chunk:
            self.app.run_sequential(chunk)

    def queue_lines(self) -> list[str]:
        return [
            f"worker {stats_snapshot['_worker']}:"
            f" committed={stats_snapshot['txns_committed']:<6}"
            f" ee_stmts={stats_snapshot['ee_statements']}"
            for stats_snapshot in (
                dict(stats.snapshot(), _worker=wid)
                for wid, stats in enumerate(self.engine.worker_stats())
            )
        ]

    def app_lines(self) -> list[str]:
        # grouped/ordered SQL is not scatter-gatherable, so merge the
        # partitions' vote counts client-side instead of ORDER BY ... LIMIT
        names = {
            int(number): name
            for number, name in self.engine.table_rows("contestants")
        }
        counts = sorted(
            (
                (int(votes), int(number))
                for number, votes in self.engine.table_rows("contestant_votes")
            ),
            reverse=True,
        )
        return ["top contestants:"] + [
            f"  #{number}  {names.get(number, '<eliminated>'):<12} {votes} votes"
            for votes, number in counts[:3]
        ]

    def extra_lines(self) -> list[str]:
        if self.engine.metrics is None:
            return []
        return _skew_lines(self.engine.partition_skew())

    def shutdown(self) -> None:
        self.engine.shutdown()


class BikeShareSStoreDriver:
    """BikeShare city simulation on the streaming engine."""

    name = "bikeshare @ sstore"

    def __init__(self, obs: ObsConfig, seed: int, workers: int) -> None:
        from repro.apps.bikeshare.sstore_app import BikeShareApp
        from repro.apps.bikeshare.workload import BikeShareSimulation
        from repro.core.engine import SStoreEngine

        self.engine = SStoreEngine(obs=obs)
        self.app = BikeShareApp(self.engine)
        self.sim = BikeShareSimulation(self.app, seed=seed)

    def step(self) -> None:
        self.sim.run(BIKESHARE_TICKS)

    def queue_lines(self) -> list[str]:
        status = self.engine.workflow_status()
        lines = [f"pending TEs: {status['pending_tes']}"]
        for name, info in sorted(status["streams"].items()):
            lines.append(
                f"stream {name:<18} live={info['live_tuples']:<5}"
                f" buffered={info['buffered']}"
            )
        return lines

    def app_lines(self) -> list[str]:
        lines = ["stations (bikes docked / capacity):"]
        for station_id, name, bikes, docks in self.app.stations():
            capacity = int(bikes) + int(docks)
            bar = "#" * int(bikes)
            lines.append(
                f"  s{station_id:<3} {str(name):<10}"
                f" [{bar:<{capacity}}] {int(bikes)}/{capacity}"
            )
        speed = self.app.city_speed()
        if speed is not None:
            lines.append(f"city speed: {speed:.1f}")
        return lines

    def shutdown(self) -> None:
        self.engine.shutdown()


class NetDashboardDriver:
    """Operator view of a *remote* server: no engine, only HTTP scrapes.

    Polls the net server's telemetry sidecar (``/statsz``) and renders the
    standard panels from the scrape — the process holding the engine can be
    anywhere.  Unreachable scrapes keep the last good snapshot and note the
    error instead of crashing the viewer.
    """

    def __init__(self, url: str) -> None:
        self.engine = None
        self.url = url.rstrip("/")
        self.name = f"net @ {self.url}"
        self._stats: dict[str, Any] = {}
        self._error: str | None = None

    def step(self) -> None:
        import json as _json
        import urllib.error
        import urllib.request

        try:
            with urllib.request.urlopen(self.url + "/statsz", timeout=2.0) as resp:
                self._stats = _json.loads(resp.read().decode("utf-8"))
            self._error = None
        except (urllib.error.URLError, OSError, ValueError) as exc:
            self._error = str(exc)
            time.sleep(0.2)  # don't spin against a dead server

    def snapshot(self) -> dict[str, int]:
        return dict(self._stats.get("engine") or {})

    def latency_lines(self) -> list[str]:
        metrics = self._stats.get("metrics") or {}
        lines = []
        for name in ("txn_latency_us", "call_latency_us", "net.request_us"):
            for entry in metrics.get(name, []):
                if not entry.get("count"):
                    continue
                label = entry.get("labels", {}).get("procedure", name)
                lines.append(
                    f"{label:<20} n={int(entry['count']):<7}"
                    f" p50={entry['p50']:>8.0f}us p95={entry['p95']:>8.0f}us"
                    f" p99={entry['p99']:>8.0f}us"
                )
        return lines

    def queue_lines(self) -> list[str]:
        server = self._stats.get("server") or {}
        lines = [
            f"connections={server.get('connections_open', 0)}"
            f" inflight={server.get('inflight', 0)}"
            f" busy_rejected={server.get('busy_rejected', 0)}"
            f" batches={server.get('batches', 0)}"
        ]
        health = (self._stats.get("telemetry") or {}).get("stream_health")
        if health:
            for name, info in sorted(health.get("streams", {}).items()):
                lines.append(
                    f"stream {name:<18} lag={info['lag']:<5}"
                    f" produced={info['produced']}"
                )
            for wid, info in sorted(health.get("workers", {}).items()):
                lines.append(
                    f"worker {wid}: outbound={info['outbound_depth']}"
                    f" pending_tes={info['pending_tes']}"
                )
        return lines

    def extra_lines(self) -> list[str]:
        skew = (self._stats.get("telemetry") or {}).get("partition_skew")
        return _skew_lines(skew) if skew else []

    def app_lines(self) -> list[str]:
        flight = (self._stats.get("telemetry") or {}).get("flight") or {}
        lines = [
            f"flight recorder: recorded={flight.get('recorded', 0)}"
            f" errors={flight.get('errors', 0)} slow={flight.get('slow', 0)}"
            f" (threshold {flight.get('slow_threshold_us', 0):g}us)"
        ]
        if self._error is not None:
            lines.append(f"SCRAPE FAILED: {self._error}")
        return lines

    def shutdown(self) -> None:
        pass


DRIVERS: dict[tuple[str, str], Callable[..., Any]] = {
    ("voter", "sstore"): VoterSStoreDriver,
    ("voter", "parallel"): VoterParallelDriver,
    ("bikeshare", "sstore"): BikeShareSStoreDriver,
}


# ---------------------------------------------------------------------------
# Frame rendering
# ---------------------------------------------------------------------------


def _skew_lines(skew: dict[str, Any]) -> list[str]:
    """The partition-skew panel: load bars + heavy hitters per partition.

    Works on both the in-process :meth:`partition_skew` dict (int worker
    ids, tuple hot keys) and its JSON round-trip from ``/statsz`` (string
    ids, list hot keys).
    """
    partitions = skew.get("partitions") or {}
    if not partitions:
        return []
    lines = [
        f"partition skew (max/mean {skew.get('skew_ratio', 0):.2f},"
        f" {skew.get('total_txns', 0)} txns)"
    ]
    peak = max(int(skew.get("max_txns", 0)), 1)
    for wid in sorted(partitions, key=str):
        info = partitions[wid]
        txns = int(info.get("txns_committed", 0))
        bar = "#" * max(1 if txns else 0, int(round(20 * txns / peak)))
        hot = " ".join(
            f"{key}x{int(estimate)}" for key, estimate, _err in info.get("hot_keys", [])[:4]
        )
        lines.append(f"  p{wid} [{bar:<20}] {txns:<7} hot: {hot or '-'}")
    return lines


def _engine_snapshot(engine: Any) -> dict[str, int]:
    stats = engine.stats
    if callable(stats):  # ParallelHStoreEngine.stats() vs HStoreEngine.stats
        stats = stats()
    return stats.snapshot()


def _latency_lines(engine: Any) -> list[str]:
    lines: list[str] = []
    for name, labels, instrument in engine.metrics.instruments():
        if name not in ("txn_latency_us", "call_latency_us"):
            continue
        label = dict(labels).get("procedure", "?")
        s = instrument.summary()
        if not s["count"]:
            continue
        lines.append(
            f"{label:<20} n={int(s['count']):<7}"
            f" p50={s['p50']:>8.0f}us p95={s['p95']:>8.0f}us"
            f" p99={s['p99']:>8.0f}us"
        )
    return lines or ["(no samples yet)"]


def render_frame(
    driver: Any,
    snapshot: dict[str, int],
    previous: dict[str, int],
    dt: float,
    elapsed: float,
) -> str:
    def rate(counter: str) -> float:
        return (snapshot.get(counter, 0) - previous.get(counter, 0)) / max(dt, 1e-9)

    lines = [
        f"repro.obs dashboard — {driver.name} — t={elapsed:5.1f}s",
        "=" * 64,
        "throughput",
        f"  committed: {rate('txns_committed'):8.0f} txn/s"
        f"   (total {snapshot.get('txns_committed', 0)})",
        f"  ingested:  {rate('stream_tuples_ingested'):8.0f} tuples/s"
        f"   (total {snapshot.get('stream_tuples_ingested', 0)})",
        "",
        "round trips",
        f"  client↔PE: {snapshot.get('client_pe_roundtrips', 0):<8}"
        f" PE↔EE: {snapshot.get('pe_ee_roundtrips', 0):<8}"
        f" IPC: {snapshot.get('ipc_roundtrips', 0)}",
        "",
        "latency (per procedure)",
    ]
    latency_fn = getattr(driver, "latency_lines", None)
    latency = latency_fn() if latency_fn is not None else _latency_lines(driver.engine)
    lines += [f"  {line}" for line in (latency or ["(no samples yet)"])]
    lines += ["", "queues / partitions"]
    lines += [f"  {line}" for line in driver.queue_lines()]
    extra_fn = getattr(driver, "extra_lines", None)
    if extra_fn is not None:
        extra = extra_fn()
        if extra:
            lines += [""] + extra
    engine = getattr(driver, "engine", None)
    if engine is not None and engine.tracer.enabled:
        collector = engine.tracer.collector
        lines += [
            "",
            f"trace: {len(collector)} spans recorded"
            f" ({collector.dropped} dropped)",
        ]
    lines += [""]
    lines += driver.app_lines()
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Main loop
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.dashboard",
        description="live view of an instrumented Voter/BikeShare run",
    )
    parser.add_argument("--app", choices=("voter", "bikeshare"), default="voter")
    parser.add_argument(
        "--engine", choices=("sstore", "parallel", "net"), default="sstore"
    )
    parser.add_argument("--workers", type=int, default=2,
                        help="partition count for --engine parallel")
    parser.add_argument("--url", default="http://127.0.0.1:9090",
                        help="telemetry sidecar base URL for --engine net")
    parser.add_argument("--seconds", type=float, default=10.0,
                        help="how long to run the workload")
    parser.add_argument("--refresh", type=float, default=0.5,
                        help="seconds between redraws")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--plain", action="store_true",
                        help="append frames instead of ANSI clear-screen")
    parser.add_argument("--no-trace", action="store_true",
                        help="metrics only (what the overhead benchmark calls"
                             " the metrics-on/tracing-off configuration)")
    parser.add_argument("--export-trace", metavar="PATH",
                        help="write the trace as JSONL on exit")
    parser.add_argument("--export-chrome", metavar="PATH",
                        help="write a Chrome trace_event file on exit")
    parser.add_argument("--export-metrics", metavar="PATH",
                        help="write the metrics registry as JSON on exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.engine == "net":
        driver: Any = NetDashboardDriver(args.url)
    else:
        try:
            driver_cls = DRIVERS[(args.app, args.engine)]
        except KeyError:
            print(
                f"unsupported combination: --app {args.app} --engine {args.engine}"
                " (bikeshare needs the streaming engine)",
                file=sys.stderr,
            )
            return 2
        obs = ObsConfig(tracing=not args.no_trace)
        driver = driver_cls(obs, args.seed, args.workers)

    def snapshot_now() -> dict[str, int]:
        taker = getattr(driver, "snapshot", None)
        return taker() if taker is not None else _engine_snapshot(driver.engine)

    previous = snapshot_now()
    started = last_draw = time.monotonic()
    try:
        while True:
            driver.step()
            now = time.monotonic()
            if now - last_draw >= args.refresh or now - started >= args.seconds:
                snapshot = snapshot_now()
                frame = render_frame(
                    driver, snapshot, previous, now - last_draw, now - started
                )
                sys.stdout.write(frame if args.plain else CLEAR + frame)
                sys.stdout.write("\n")
                sys.stdout.flush()
                previous, last_draw = snapshot, now
            if now - started >= args.seconds:
                break
    except KeyboardInterrupt:
        pass
    finally:
        engine = getattr(driver, "engine", None)
        if engine is not None:
            tracer = engine.tracer
            if tracer.enabled and args.export_trace:
                tracer.collector.export_jsonl(args.export_trace)
                print(f"trace written to {args.export_trace}")
            if tracer.enabled and args.export_chrome:
                tracer.collector.export_chrome(args.export_chrome)
                print(f"chrome trace written to {args.export_chrome}")
            if engine.metrics is not None and args.export_metrics:
                engine.metrics.write_json(args.export_metrics)
                print(f"metrics written to {args.export_metrics}")
        driver.shutdown()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

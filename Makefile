PYTHON ?= python
export PYTHONPATH := src

# five fixed seeds for the deterministic fault-schedule sweep
FAULT_SEEDS ?= 0 1 7 42 1337

.PHONY: test faults parallel bench

test:
	$(PYTHON) -m pytest -x -q

faults:
	@for seed in $(FAULT_SEEDS); do \
		echo "== fault sweep: REPRO_FAULT_SEED=$$seed =="; \
		REPRO_FAULT_SEED=$$seed $(PYTHON) -m pytest -m faults -q || exit 1; \
	done

parallel:
	$(PYTHON) -m pytest -m parallel -q

bench:
	$(PYTHON) -m pytest benchmarks -q

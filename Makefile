PYTHON ?= python
export PYTHONPATH := src

# five fixed seeds for the deterministic fault-schedule sweep
FAULT_SEEDS ?= 0 1 7 42 1337

.PHONY: test faults parallel obs compile dstream ivm net telemetry columnar bench

test:
	$(PYTHON) -m pytest -x -q

faults:
	@for seed in $(FAULT_SEEDS); do \
		echo "== fault sweep: REPRO_FAULT_SEED=$$seed =="; \
		REPRO_FAULT_SEED=$$seed $(PYTHON) -m pytest -m faults -q || exit 1; \
	done

parallel:
	$(PYTHON) -m pytest -m parallel -q

# observability suite + a 2-second dashboard smoke that doubles as the
# artifact generator (sample trace + metrics land in benchmarks/_results/)
obs:
	$(PYTHON) -m pytest tests/obs -q
	$(PYTHON) -m repro.obs.dashboard --app voter --engine sstore \
		--seconds 2 --refresh 0.5 --plain \
		--export-trace benchmarks/_results/trace.jsonl \
		--export-chrome benchmarks/_results/trace_chrome.json \
		--export-metrics benchmarks/_results/metrics.json

# distributed streaming: workflow scheduling on the process cluster, the
# differential ordering oracle, and streaming crash/recover equivalence
dstream:
	$(PYTHON) -m pytest -m dstream -q

# incremental view maintenance: delta-view unit tests plus the hypothesis
# differential sweep (view-backed reads vs the interpreter's full recompute)
ivm:
	$(PYTHON) -m pytest -m ivm -q

# closure-compiler suites: unit tests for compiled plans and the plan
# cache, plus hypothesis differential fuzzing against the interpreter
compile:
	$(PYTHON) -m pytest tests/hstore/test_compile.py \
		tests/hstore/test_plan_cache.py \
		tests/property/test_prop_compile_diff.py -q

# TCP front door: wire-protocol codec units + hypothesis garbage fuzzing,
# typed-error round trips, and the asyncio server lifecycle/load suite
# (includes the telemetry-plane suite: trace stitching over TCP, head
# sampling, the /metrics sidecar, and piggybacked worker deltas)
net:
	$(PYTHON) -m pytest -m net -q

# columnar storage + vectorized execution: column-store layout units,
# bulk-insert atomicity, EXPLAIN modes, and the hypothesis differential
# oracle (vectorized vs row-compiled vs interpreter, bit-for-bit)
columnar:
	$(PYTHON) -m pytest -m columnar -q

# telemetry-plane benchmark: default-on overhead bar (<5%), cross-process
# trace stitch completeness, and watermark-lag fidelity on a split pipeline
telemetry:
	$(PYTHON) -m pytest benchmarks/bench_e17_telemetry.py -q

bench:
	$(PYTHON) -m pytest benchmarks -q

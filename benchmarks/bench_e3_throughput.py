"""E3 — Throughput: S-Store beats H-Store on the same streaming workload.

Paper claim (§1, §3.1, §4): "by exploiting push-based semantics and our
implementation of triggers, we can achieve significant improvement in
transaction throughput", demoed as live side-by-side TPS counters.

Measured here three ways, all on the identical vote stream:

* wall-clock runtime of this Python implementation (pytest-benchmark);
* exact layer-crossing counts (client↔PE and PE↔EE);
* simulated TPS under a LAN latency model (counts × per-crossing cost) —
  the figure comparable to the demo's TPS displays.

Expected shape: S-Store ahead; the gap widens with client-side ingest
batching (one push delivers many tuples), which polling H-Store clients
cannot amortize.
"""

from __future__ import annotations

import pytest

from repro.apps.voter.workload import VoterWorkload
from repro.bench import (
    format_table,
    run_voter_hstore_sequential,
    run_voter_sstore,
)

CONTESTANTS = 10
VOTES = 600


def _requests():
    return VoterWorkload(seed=303, num_contestants=CONTESTANTS).generate(VOTES)


@pytest.fixture(scope="module")
def results():
    return {}


def test_e3_hstore_throughput(benchmark, results):
    result = benchmark.pedantic(
        lambda: run_voter_hstore_sequential(
            _requests(), num_contestants=CONTESTANTS
        ),
        rounds=2,
        iterations=1,
    )
    results["h-store"] = result
    benchmark.extra_info["simulated_tps"] = round(result.simulated_tps)


def test_e3_sstore_throughput_unbatched(benchmark, results):
    result = benchmark.pedantic(
        lambda: run_voter_sstore(
            _requests(), num_contestants=CONTESTANTS, batch_size=1, ingest_chunk=1
        ),
        rounds=2,
        iterations=1,
    )
    results["s-store"] = result
    benchmark.extra_info["simulated_tps"] = round(result.simulated_tps)


def test_e3_sstore_throughput_batched(benchmark, results):
    result = benchmark.pedantic(
        lambda: run_voter_sstore(
            _requests(), num_contestants=CONTESTANTS, batch_size=1, ingest_chunk=25
        ),
        rounds=2,
        iterations=1,
    )
    results["s-store-batched"] = result
    benchmark.extra_info["simulated_tps"] = round(result.simulated_tps)


def test_e3_shape_holds(benchmark, results, save_report):
    # `--benchmark-only` runs only benchmark-fixture tests, so the shape
    # check itself is registered as a (trivial) benchmark
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    h = results["h-store"]
    s = results["s-store"]
    sb = results["s-store-batched"]
    rows = [
        [
            name,
            round(r.simulated_tps),
            r.counters["client_pe_roundtrips"],
            r.counters["pe_ee_roundtrips"],
            f"{r.wall_seconds:.3f}s",
        ]
        for name, r in (("h-store", h), ("s-store", s), ("s-store batched×25", sb))
    ]
    save_report(
        "e3_throughput",
        format_table(
            ["system", "simulated_tps", "client_pe_rt", "pe_ee_rt", "wall"],
            rows,
        )
        + f"\nspeedup (unbatched): {s.simulated_tps / h.simulated_tps:.2f}x"
        + f"\nspeedup (batched):   {sb.simulated_tps / h.simulated_tps:.2f}x",
    )
    # the paper's claim: same results, higher throughput
    assert s.summary == h.summary
    assert s.simulated_tps > h.simulated_tps
    assert sb.simulated_tps > 2 * h.simulated_tps

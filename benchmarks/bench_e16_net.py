"""E16 — The network front door: TPS and tail latency vs. client count.

ISSUE 8's tentpole, measured over real sockets:

* **client-count sweep** (1/10/100/1000 TCP connections, closed-loop
  voters): sustained TPS must *rise* with concurrency because the commit
  coalescer amortizes one log flush over every concurrently arriving txn —
  the acceptance bar is ≥2x TPS at 100 clients vs. 1;
* **overload check**: with ``max_inflight`` exhausted by an open-loop
  request storm, admission control fast-rejects (``SERVER_BUSY``) instead
  of queueing, so the p99 of *admitted* requests stays bounded by the
  in-flight cap — not by the storm size;
* **differential check**: the state committed through 100 concurrent
  network clients is row-identical to the same workload run in-process.

Guarded in ``check_regression.py``: the 100c/1c TPS ratio and the two
1.0-boolean flags (p99-bounded, state-differential).
"""

from __future__ import annotations

import asyncio
import tempfile
import time

import pytest

from repro.apps.voter import schema
from repro.apps.voter.procedures import ValidateVote
from repro.bench import format_table, percentiles, write_bench_json
from repro.errors import ServerBusyError
from repro.hstore.engine import HStoreEngine
from repro.net.client import NetClient
from repro.net.server import NetServer

CLIENT_SWEEP = [(1, 300), (10, 60), (100, 10), (1000, 2)]  # (clients, votes each)
OVERLOAD_MAX_INFLIGHT = 64
OVERLOAD_CLIENTS = 20
OVERLOAD_PIPELINE_DEPTH = 100


def make_engine(log_dir: str | None = None) -> HStoreEngine:
    """A voter engine; with ``log_dir``, acks cost a real fsync.

    The fsync is the point of the sweep: it is the fixed per-flush cost
    the commit coalescer amortizes, so TPS *rises* with client count.
    Without it ``CommandLog.flush()`` is an in-memory pointer move and
    group commit has nothing to win.
    """
    engine = HStoreEngine(command_logging=True)
    schema.install_tables(engine)
    schema.seed_contestants(engine)
    engine.register_procedure(ValidateVote)
    if log_dir is not None:
        engine.enable_durability(log_dir, fsync_log=True)
    return engine


def votes_for(clients: int, per_client: int) -> list[list[tuple]]:
    """All-distinct valid votes: final state is interleaving-independent."""
    return [
        [(f"{c:04d}-555-{i:04d}", (c + i) % schema.NUM_CONTESTANTS + 1, i)
         for i in range(per_client)]
        for c in range(clients)
    ]


def run_scale(clients: int, per_client: int) -> dict:
    """One sweep point: N closed-loop TCP clients against a fresh engine.

    All connections are established *before* the clock starts, so the TPS
    number measures the steady state, not the connection storm.
    """

    async def body(log_dir: str) -> dict:
        engine = make_engine(log_dir)
        server = NetServer(engine, port=0, max_inflight=2048, max_pipeline=64)
        await server.start()
        latencies: list[float] = []

        async def one_client(client: NetClient, share: list[tuple]) -> None:
            async with client:
                for vote in share:
                    started = time.perf_counter()
                    result = await client.call_procedure("validate_vote", *vote)
                    latencies.append((time.perf_counter() - started) * 1e6)
                    assert result.success

        connections = await asyncio.gather(
            *(NetClient.connect("127.0.0.1", server.port) for _ in range(clients))
        )
        shares = votes_for(clients, per_client)
        started = time.perf_counter()
        await asyncio.gather(
            *(one_client(conn, share) for conn, share in zip(connections, shares))
        )
        wall = time.perf_counter() - started
        counters = server.counters.copy()
        rows = sorted(engine.execute_sql("SELECT * FROM votes").rows)
        await server.stop()
        engine.shutdown()
        requests = clients * per_client
        return {
            "clients": clients,
            "requests": requests,
            "wall_seconds": wall,
            "tps": requests / wall,
            "latency_us": percentiles(latencies),
            "log_flushes": counters["log_flushes"],
            "batches": counters["batches"],
            "rows": rows,
        }

    with tempfile.TemporaryDirectory(prefix="e16-net-") as log_dir:
        return asyncio.run(body(log_dir))


def run_in_process(clients: int, per_client: int) -> list[tuple]:
    """The oracle: same votes, plain in-process calls, no network."""
    engine = make_engine()
    for share in votes_for(clients, per_client):
        for vote in share:
            assert engine.call_procedure("validate_vote", *vote).success
    rows = sorted(engine.execute_sql("SELECT * FROM votes").rows)
    engine.shutdown()
    return rows


def run_overload() -> dict:
    """Open-loop storm vs. a small in-flight budget: p99 must stay bounded."""

    async def body() -> dict:
        engine = make_engine()
        server = NetServer(
            engine,
            port=0,
            max_inflight=OVERLOAD_MAX_INFLIGHT,
            max_pipeline=OVERLOAD_PIPELINE_DEPTH + 8,
        )
        await server.start()

        # light phase: one closed-loop client → baseline service latency
        light: list[float] = []
        async with await NetClient.connect("127.0.0.1", server.port) as client:
            for i in range(200):
                started = time.perf_counter()
                await client.call_procedure(
                    "validate_vote", f"light-{i:04d}", i % 25 + 1, i
                )
                light.append((time.perf_counter() - started) * 1e6)

        # storm phase: 20 clients × 100 *pipelined* requests, all at once
        admitted: list[float] = []
        busy = 0

        async def storm_client(cid: int) -> None:
            nonlocal busy
            async with await NetClient.connect("127.0.0.1", server.port) as client:
                async def fire(i: int) -> None:
                    nonlocal busy
                    started = time.perf_counter()
                    try:
                        await client.call_procedure(
                            "validate_vote", f"{cid:03d}s-{i:04d}", i % 25 + 1, i
                        )
                    except ServerBusyError:
                        busy += 1
                        return
                    admitted.append((time.perf_counter() - started) * 1e6)

                await asyncio.gather(
                    *(fire(i) for i in range(OVERLOAD_PIPELINE_DEPTH))
                )

        started = time.perf_counter()
        await asyncio.gather(*(storm_client(c) for c in range(OVERLOAD_CLIENTS)))
        storm_wall = time.perf_counter() - started
        counters = server.counters.copy()
        await server.stop()
        engine.shutdown()

        light_stats = percentiles(light)
        admitted_stats = percentiles(admitted)
        mean_light = sum(light) / len(light)
        # fast-reject caps the queue at max_inflight requests, so an
        # admitted request waits at most ~max_inflight service times; an
        # unbounded queue would wait ~(storm size / max_inflight)× that
        bound_us = 8 * OVERLOAD_MAX_INFLIGHT * mean_light
        return {
            "storm_requests": OVERLOAD_CLIENTS * OVERLOAD_PIPELINE_DEPTH,
            "storm_wall_seconds": storm_wall,
            "admitted": len(admitted),
            "busy_rejected": busy,
            "busy_counter": counters["busy_rejected"],
            "light_latency_us": light_stats,
            "admitted_latency_us": admitted_stats,
            "mean_light_us": mean_light,
            "p99_bound_us": bound_us,
            "p99_bounded": admitted_stats["p99"] <= bound_us,
        }

    return asyncio.run(body())


def test_e16_net_tps_and_overload(benchmark, save_report):
    sweep: list[dict] = []
    overload: dict = {}
    oracle_rows: list = []

    def run_all():
        sweep.clear()
        for clients, per_client in CLIENT_SWEEP:
            sweep.append(run_scale(clients, per_client))
        overload.update(run_overload())
        oracle_rows.extend(run_in_process(100, 10))

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    by_clients = {point["clients"]: point for point in sweep}
    tps_1 = by_clients[1]["tps"]
    tps_100 = by_clients[100]["tps"]
    scaling_100c = tps_100 / tps_1

    hundred = by_clients[100]
    differential_ok = hundred.pop("rows") == oracle_rows
    for point in sweep:
        point.pop("rows", None)

    table_rows = [
        [
            point["clients"],
            point["requests"],
            f"{point['wall_seconds']:.3f}s",
            f"{point['tps']:.0f}",
            f"{point['latency_us']['p50']:.0f}",
            f"{point['latency_us']['p99']:.0f}",
            f"{point['requests'] / max(1, point['log_flushes']):.1f}",
        ]
        for point in sweep
    ]
    save_report(
        "e16_net",
        format_table(
            ["clients", "reqs", "wall", "tps", "p50 µs", "p99 µs", "reqs/flush"],
            table_rows,
        )
        + f"\nTPS scaling 100c/1c = {scaling_100c:.2f}x"
        + f"\noverload: {overload['admitted']} admitted / "
        f"{overload['busy_rejected']} busy-rejected, admitted p99 = "
        f"{overload['admitted_latency_us']['p99']:.0f}µs "
        f"(bound {overload['p99_bound_us']:.0f}µs) → "
        f"bounded={overload['p99_bounded']}"
        + f"\ndifferential @100c: identical={differential_ok}",
    )

    # acceptance: ≥2x sustained TPS at 100 clients vs 1 (group commit),
    # overload keeps p99 bounded via fast-reject, state identical
    assert scaling_100c >= 2.0, f"TPS scaling {scaling_100c:.2f}x < 2x"
    assert overload["busy_rejected"] > 0, "storm never tripped admission control"
    assert overload["p99_bounded"], (
        f"admitted p99 {overload['admitted_latency_us']['p99']:.0f}µs exceeds "
        f"bound {overload['p99_bound_us']:.0f}µs"
    )
    assert differential_ok, "networked state diverged from in-process run"

    write_bench_json(
        "e16_net",
        {
            "sweep": sweep,
            "overload": overload,
            "guard": {
                "net_tps_100c": scaling_100c,
                "net_p99_bounded_overload": float(overload["p99_bounded"]),
                "net_state_differential": float(differential_ok),
            },
        },
    )

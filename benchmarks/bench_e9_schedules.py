"""E9 — The stream-oriented transaction model: schedule validity.

Paper claims (§2): S-Store schedules preserve (1) the natural order of each
procedure's TEs, (2) workflow order per input batch ("a serializable
schedule in S-Store"), and (3) serial execution when workflow procedures
share writable tables.  H-Store provides none of these.

Measured: the recorded commit histories of both systems on the same vote
stream, checked by the rule-by-rule schedule validator; plus validator
throughput (it is itself a per-commit-history pass).
"""

from __future__ import annotations

import pytest

from repro.apps.voter.workload import VoterWorkload
from repro.bench import (
    format_table,
    run_voter_dstream,
    run_voter_hstore_interleaved,
    run_voter_sstore,
)
from repro.core.transaction import validate_schedule

CONTESTANTS = 8
VOTES = 500


def _requests():
    return VoterWorkload(seed=909, num_contestants=CONTESTANTS).generate(VOTES)


@pytest.fixture(scope="module")
def histories():
    sstore = run_voter_sstore(_requests(), num_contestants=CONTESTANTS)
    hstore = run_voter_hstore_interleaved(
        _requests(), num_contestants=CONTESTANTS, clients=10, seed=4
    )
    workflow = sstore.app.workflow
    return {
        "workflow": workflow,
        "s-store": sstore.app.engine.schedule_history,
        "h-store": hstore.app.te_history,
    }


def test_e9_sstore_schedule_valid(benchmark, histories, save_report):
    violations = benchmark(
        validate_schedule, histories["s-store"], histories["workflow"]
    )
    benchmark.extra_info["violations"] = len(violations)
    save_report(
        "e9_sstore",
        f"TEs={len(histories['s-store'])} violations={len(violations)}",
    )
    assert violations == []
    assert histories["workflow"].serial_required


def test_e9_hstore_schedule_invalid(benchmark, histories, save_report):
    violations = benchmark(
        validate_schedule, histories["h-store"], histories["workflow"]
    )
    by_rule: dict[str, int] = {}
    for violation in violations:
        by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
    benchmark.extra_info["violations"] = len(violations)
    save_report(
        "e9_hstore",
        format_table(["rule", "violations"], sorted(by_rule.items()))
        + f"\ntotal TEs: {len(histories['h-store'])}",
    )
    assert violations
    assert "natural-order" in by_rule
    assert "contiguity" in by_rule


def test_e9_dstream_schedule_valid(benchmark, histories, save_report):
    """E9 re-run against the cluster: every worker's committed-TE history
    satisfies the same schedule rules the single engine does."""
    result = run_voter_dstream(
        _requests(), num_contestants=CONTESTANTS, workers=2, shutdown=False
    )
    engine = result.app.engine
    try:
        worker_histories = engine.schedule_histories()
    finally:
        engine.shutdown()

    def validate_all():
        return [
            validate_schedule(history, histories["workflow"])
            for history in worker_histories
        ]

    per_worker = benchmark(validate_all)
    total_tes = sum(len(history) for history in worker_histories)
    benchmark.extra_info["violations"] = sum(len(v) for v in per_worker)
    save_report(
        "e9_dstream",
        format_table(
            ["worker", "TEs", "violations"],
            [
                [wid, len(history), len(violations)]
                for wid, (history, violations) in enumerate(
                    zip(worker_histories, per_worker)
                )
            ],
        )
        + f"\ntotal TEs across workers: {total_tes}",
    )
    assert all(violations == [] for violations in per_worker)
    # the serial voter workflow runs somewhere: the history is not vacuous
    assert total_tes == len(histories["s-store"])

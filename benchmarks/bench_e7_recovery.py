"""E7 — Upstream-backup fault tolerance.

Paper claim (§2): "we leverage H-Store's command logging mechanism to
provide an upstream backup based fault tolerance technique for our streaming
transaction workflows."

Measured: (a) recovered state is bit-identical to the pre-crash state, with
and without snapshots; (b) recovery time scales with the replayed log suffix
length, so snapshots shorten it; (c) only border inputs are logged (the
upstream-backup property itself).
"""

from __future__ import annotations

import time

import pytest

from repro.apps.voter.sstore_app import VoterSStoreApp
from repro.apps.voter.workload import VoterWorkload
from repro.bench import format_table
from repro.core.recovery import crash_and_recover_streaming

CONTESTANTS = 8
VOTES = 400


def _prepared(snapshot_interval=None) -> VoterSStoreApp:
    app = VoterSStoreApp(
        num_contestants=CONTESTANTS, snapshot_interval=snapshot_interval
    )
    requests = VoterWorkload(seed=707, num_contestants=CONTESTANTS).generate(VOTES)
    app.submit(requests, ingest_chunk=4)
    return app


def test_e7_recovery_without_snapshot(benchmark, save_report):
    app = _prepared()

    def crash_recover():
        return crash_and_recover_streaming(app.engine)

    report = benchmark.pedantic(crash_recover, rounds=3, iterations=1)
    benchmark.extra_info["replayed"] = report.replayed_records
    save_report(
        "e7_no_snapshot",
        f"replayed={report.replayed_records} state_matches={report.state_matches}",
    )
    assert report.state_matches
    assert not report.had_snapshot


def test_e7_recovery_with_snapshot(benchmark, save_report):
    app = _prepared(snapshot_interval=60)

    def crash_recover():
        return crash_and_recover_streaming(app.engine)

    report = benchmark.pedantic(crash_recover, rounds=3, iterations=1)
    benchmark.extra_info["replayed"] = report.replayed_records
    save_report(
        "e7_with_snapshot",
        f"replayed={report.replayed_records} state_matches={report.state_matches}",
    )
    assert report.state_matches
    assert report.had_snapshot
    # the snapshot bounded the replay suffix
    assert report.replayed_records < VOTES / 4


def test_e7_replay_scales_with_suffix(benchmark, save_report):
    """Recovery time grows with the un-snapshotted suffix — snapshots pay."""
    rows = []

    def measure():
        rows.clear()
        for fraction in (0.25, 0.5, 1.0):
            app = VoterSStoreApp(num_contestants=CONTESTANTS)
            requests = VoterWorkload(
                seed=708, num_contestants=CONTESTANTS
            ).generate(int(VOTES * fraction))
            app.submit(requests, ingest_chunk=4)
            started = time.perf_counter()
            report = crash_and_recover_streaming(app.engine)
            elapsed = time.perf_counter() - started
            assert report.state_matches
            rows.append([f"{fraction:.2f}", report.replayed_records,
                         f"{elapsed * 1000:.1f}ms"])
        return rows

    benchmark.pedantic(measure, rounds=1, iterations=1)
    save_report(
        "e7_replay_scaling",
        format_table(["workload fraction", "records replayed", "recovery time"], rows),
    )


def test_e7_only_border_inputs_logged(benchmark, save_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    app = _prepared()
    kinds: dict[str, int] = {}
    for record in app.engine.command_log.all_records():
        kinds[record.procedure] = kinds.get(record.procedure, 0) + 1
    save_report(
        "e7_log_contents",
        format_table(["record kind", "count"], sorted(kinds.items())),
    )
    # upstream backup: ingest records (+ the seed DML) only — never a
    # validate_vote / update_leaderboard / remove_lowest TE
    assert set(kinds) <= {"<ingest>", "<adhoc>", "<tick>"}
    te_count = len(app.engine.schedule_history)
    assert te_count > kinds.get("<ingest>", 0)  # interior work was derived

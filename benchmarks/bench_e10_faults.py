"""E10 — Crash-recovery equivalence under seeded fault injection.

Paper claim (§2): command logging + snapshots give the streaming engine
"exactly the same fault tolerance guarantees" as the OLTP engine —
recovery replays the border-input log deterministically and reconstructs a
state indistinguishable from one that never crashed.

Measured: a sweep of seeded single-fault scenarios (crashes, torn log
writes, dropped acks, disk-full/EIO errors, corrupt snapshots — placed by
``FaultPlan.single_fault``) over a Voter workload.  Every scenario must
recover to a state identical to the uninterrupted reference run: the
success rate is asserted at 100%.
"""

from __future__ import annotations

import time

from repro.apps.voter.sstore_app import VoterSStoreApp
from repro.apps.voter.workload import VoterWorkload
from repro.bench import format_table
from repro.faults import FaultPlan, RecoveryEquivalenceChecker

CONTESTANTS = 4
VOTES = 60
INGEST_CHUNK = 3
SCENARIOS = 24
SEED_BASE = 9100


def _build_engine():
    app = VoterSStoreApp(num_contestants=CONTESTANTS, snapshot_interval=10)
    return app.engine


def _voter_ops():
    requests = VoterWorkload(seed=707, num_contestants=CONTESTANTS).generate(VOTES)
    ops = []
    for start in range(0, len(requests), INGEST_CHUNK):
        chunk = requests[start : start + INGEST_CHUNK]
        ops.append(("ingest", "votes_in", [request.as_row() for request in chunk]))
    ops.append(("tick", 1))
    return ops


def _run_scenario(seed):
    plan = FaultPlan.single_fault(seed)
    checker = RecoveryEquivalenceChecker(_build_engine, _voter_ops(), plan)
    return plan, checker.run()


def test_e10_fault_sweep(benchmark, save_report):
    ops = _voter_ops()
    rows = []
    failures = []
    started = time.perf_counter()
    for index in range(SCENARIOS):
        seed = SEED_BASE + index
        plan, report = _run_scenario(seed)
        rows.append(
            [
                seed,
                plan.describe(),
                "ok" if report.equivalent else "DIVERGED",
                report.crashes,
                report.recoveries,
                report.replayed_transactions,
                report.torn_records,
                report.snapshots_skipped,
            ]
        )
        if not report.equivalent:
            failures.append((seed, report.summary()))
    elapsed = time.perf_counter() - started

    # timing: one representative crash-heavy scenario, re-run under the harness
    benchmark.pedantic(lambda: _run_scenario(SEED_BASE), rounds=3, iterations=1)
    benchmark.extra_info["scenarios"] = SCENARIOS
    benchmark.extra_info["sweep_seconds"] = round(elapsed, 3)

    succeeded = SCENARIOS - len(failures)
    table = format_table(
        ["seed", "plan", "verdict", "crashes", "recoveries",
         "replayed", "torn", "snap_skip"],
        rows,
    )
    save_report(
        "e10_faults",
        f"{table}\n\nrecovered {succeeded}/{SCENARIOS} scenarios "
        f"({100.0 * succeeded / SCENARIOS:.0f}%) in {elapsed:.2f}s",
    )
    assert not failures, failures

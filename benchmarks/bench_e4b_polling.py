"""E4b — Polling vs. push: the freshness/overhead dilemma.

Paper (§2): the S-Store architecture "avoid[s] ... the need to poll for new
data".  A pull-based H-Store deployment stages accepted votes and has a
poller client drain them:

* poll *frequently* and you pay a client↔PE round trip per poll — many of
  them empty on a quiet system;
* poll *rarely* and the leaderboards go stale (staged backlog grows) and
  eliminations run on outdated totals.

Push-based S-Store has neither cost: zero polls, zero staleness — the
commit of the upstream TE *is* the notification.

Measured: round trips per 1000 votes, empty polls, and maximum staleness
(staged backlog high-water mark) across poll intervals, vs. S-Store push.
"""

from __future__ import annotations

import pytest

from repro.apps.voter.hstore_app import VoterHStoreApp
from repro.apps.voter.workload import VoterWorkload
from repro.bench import format_table, run_voter_sstore

CONTESTANTS = 8
VOTES = 400


def _requests():
    return VoterWorkload(seed=440, num_contestants=CONTESTANTS).generate(VOTES)


@pytest.fixture(scope="module")
def collected():
    return {}


@pytest.mark.parametrize("poll_every", [1, 5, 25])
def test_e4b_polling(benchmark, poll_every, collected):
    def run():
        app = VoterHStoreApp(num_contestants=CONTESTANTS)
        app.run_polling(_requests(), poll_every=poll_every)
        return app

    app = benchmark.pedantic(run, rounds=2, iterations=1)
    collected[f"poll every {poll_every}"] = {
        "roundtrips": app.engine.stats.client_pe_roundtrips,
        "empty_polls": app.empty_polls,
        "max_staleness": app.max_backlog,
    }
    benchmark.extra_info["max_staleness"] = app.max_backlog


def test_e4b_push(benchmark, collected):
    result = benchmark.pedantic(
        lambda: run_voter_sstore(
            _requests(), num_contestants=CONTESTANTS, ingest_chunk=25
        ),
        rounds=2,
        iterations=1,
    )
    collected["s-store push"] = {
        "roundtrips": result.counters["client_pe_roundtrips"],
        "empty_polls": 0,
        "max_staleness": 0,  # downstream TEs run before ingest returns
    }


def test_e4b_shape_holds(benchmark, collected, save_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [
            name,
            round(data["roundtrips"] * 1000 / VOTES),
            data["empty_polls"],
            data["max_staleness"],
        ]
        for name, data in collected.items()
    ]
    save_report(
        "e4b_polling",
        format_table(
            ["mode", "client_pe_rt_per_1000", "empty_polls", "max_staleness"],
            rows,
        ),
    )
    eager = collected["poll every 1"]
    lazy = collected["poll every 25"]
    push = collected["s-store push"]
    # the dilemma: frequent polling costs round trips...
    assert eager["roundtrips"] > 1.5 * lazy["roundtrips"]
    # ...infrequent polling costs freshness...
    assert lazy["max_staleness"] >= 5 * max(1, eager["max_staleness"] // 5)
    assert lazy["max_staleness"] > eager["max_staleness"]
    # ...and push beats both on both axes
    assert push["roundtrips"] < lazy["roundtrips"]
    assert push["max_staleness"] == 0
    assert push["empty_polls"] == 0
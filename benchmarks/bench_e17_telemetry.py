"""E17 — The telemetry plane: default-on overhead, stitch and lag fidelity.

ISSUE 9's acceptance benchmark, three parts:

* **overhead**: the E16 networked Voter stack (closed-loop TCP clients,
  admission control, group-commit batching, buffered command logging) run
  as a *paired* experiment — an obs-off server and a default-``ObsConfig``
  server live in the same process, requests alternate between them in
  bursts, and the overhead is the **median of per-pair wall ratios**.  On
  a contended single core every other estimator (best-of-rounds TPS,
  min-CPU) is at the mercy of ambient load: adjacent bursts see the same
  machine, so the pairwise ratio cancels what the configs share and the
  median discards the bursts a scheduler hiccup poisoned.  Pair order
  alternates (off-first, on-first) so linear load drift cancels too, and
  the whole experiment repeats up to three times with the best median
  taken — the E12/E16 best-of-rounds convention, for the case where a
  neighbor hammers the machine for an entire attempt.  fsync is off
  for this section only — the kernel's journal CPU accounting varies by
  tens of µs per request between runs, which would swamp a <5% signal
  (E16 itself guards the fsync'd TPS).  The engine-thread CPU ratio — the
  partition executor is the scarce resource — is reported alongside.
  Bar: **<5%** median wall overhead, clients untraced (the default-on
  experience; server-rooted traces are head-sampled at 1/``trace_sample``).
* **trace stitching**: a fully-traced run against a 2-worker partition
  cluster — every client call must come back as one complete cross-process
  trace (client span, server request span, group-commit window, worker
  txn), and the completeness *fraction* is the guard (must be 1.0).
* **watermark-lag fidelity**: on a split relay → sink streaming pipe the
  ``stream_health()`` report must agree with the authoritative per-worker
  dstream state, the published gauges must equal the report, and a
  quiescent cluster must show zero lag everywhere.

A sample flight-recorder dump from the traced run lands in
``benchmarks/_results/flight.jsonl`` (CI uploads it as an artifact).

Guards (``check_regression.py`` treats guards as higher-is-better, so the
overhead bar is encoded as a 1.0-boolean like E16's ``p99_bounded``; the
raw percentage is in the JSON body): ``telemetry_overhead_pct`` (1.0 iff
median overhead < 5%), ``trace_stitch_complete`` (fraction), and
``stream_lag_fidelity`` (1.0-boolean).
"""

from __future__ import annotations

import asyncio
import pathlib
import statistics
import tempfile
import time

from repro.apps.voter import schema
from repro.apps.voter.procedures import ValidateVote
from repro.bench import format_table, percentiles, write_bench_json
from repro.core.engine import StreamProcedure
from repro.core.workflow import WorkflowSpec
from repro.dstream import DStreamEngine
from repro.hstore.engine import HStoreEngine
from repro.net.client import NetClient
from repro.net.server import NetServer
from repro.obs import ObsConfig
from repro.obs.trace import Tracer
from repro.parallel import ParallelHStoreEngine

WORKERS = 2
# paired-burst overhead experiment
PAIRS = 32
BURST_CLIENTS = 20
BURST_PER_CLIENT = 25
OVERHEAD_BAR_PCT = 5.0
# fully-traced cluster run (stitch + skew + flight dump)
TRACED_CLIENTS = 10
TRACED_PER_CLIENT = 40
CLIENT_ORIGIN = 900  # clear of engine origins (coordinator 0, workers 1..N)

RESULTS_DIR = pathlib.Path(__file__).parent / "_results"


class RoutedValidateVote(ValidateVote):
    """SP1 routed by phone number (same as E11): single-partition votes."""

    partition_param = 0


# module level so worker subprocesses can unpickle them (the
# tests/dstream/procs.py pattern)
class BenchRelay(StreamProcedure):
    name = "bench_relay"
    statements = {"log": "INSERT INTO e17_relay_log (k) VALUES (?)"}

    def run(self, ctx) -> None:
        out = []
        for (k,) in ctx.batch:
            ctx.execute("log", k)
            out.append((k,))
        ctx.emit("e17_mid", out)


class BenchSink(StreamProcedure):
    name = "bench_sink"
    statements = {"log": "INSERT INTO e17_sink_log (k) VALUES (?)"}

    def run(self, ctx) -> None:
        for (k,) in ctx.batch:
            ctx.execute("log", k)


def votes_for(clients: int, per_client: int) -> list[list[tuple]]:
    return [
        [(f"{c:04d}-555-{i:04d}", (c + i) % schema.NUM_CONTESTANTS + 1, i)
         for i in range(per_client)]
        for c in range(clients)
    ]


# ----------------------------------------------------------------------
# part 1: paired-burst overhead
# ----------------------------------------------------------------------


def run_overhead(max_attempts: int = 3) -> dict:
    """Best-of-attempts median pair overhead (the E12/E16 convention).

    One experiment is already a median over ``PAIRS`` alternating paired
    bursts; on a quiet machine that lands within ~±1.5 points of the
    intrinsic cost.  A load spell lasting the whole experiment (minutes of
    neighbor activity) inflates every pair though, so — exactly like E12's
    and E16's best-of-interleaved-rounds — the experiment repeats up to
    ``max_attempts`` times and the *best* median is the measurement.  All
    attempts land in the JSON for the skeptical reader.
    """
    attempts: list[dict] = []
    for _ in range(max_attempts):
        result = _overhead_once()
        attempts.append(result)
        if result["wall_overhead_pct"] < OVERHEAD_BAR_PCT:
            break
    best = min(attempts, key=lambda r: r["wall_overhead_pct"])
    best["attempt_medians_pct"] = [a["wall_overhead_pct"] for a in attempts]
    return best


def _overhead_once() -> dict:
    """Median per-pair overhead of default-on telemetry, E16 stack."""

    async def _make(obs: ObsConfig | None, log_dir: str):
        engine = HStoreEngine(command_logging=True, obs=obs)
        engine.enable_durability(log_dir, fsync_log=False)
        schema.install_tables(engine)
        schema.seed_contestants(engine)
        engine.register_procedure(ValidateVote)
        server = NetServer(engine, port=0, max_inflight=2048, max_pipeline=64)
        await server.start()
        conns = await asyncio.gather(
            *(NetClient.connect(port=server.port) for _ in range(BURST_CLIENTS))
        )
        return engine, server, conns

    async def _burst(server: NetServer, conns, tag: str) -> tuple[float, float]:
        """Returns (wall µs/req, engine-thread CPU µs/req) for one burst."""
        loop = asyncio.get_running_loop()

        async def one(ci: int, client: NetClient) -> None:
            for i in range(BURST_PER_CLIENT):
                result = await client.call_procedure(
                    "validate_vote",
                    f"{tag}-{ci:03d}-{i:03d}",
                    (ci + i) % schema.NUM_CONTESTANTS + 1,
                    i,
                )
                assert result.success

        cpu0 = await loop.run_in_executor(server._executor, time.thread_time)
        wall0 = time.perf_counter()
        await asyncio.gather(*(one(ci, c) for ci, c in enumerate(conns)))
        wall1 = time.perf_counter()
        cpu1 = await loop.run_in_executor(server._executor, time.thread_time)
        n = BURST_CLIENTS * BURST_PER_CLIENT
        return (wall1 - wall0) / n * 1e6, (cpu1 - cpu0) / n * 1e6

    async def body() -> dict:
        with tempfile.TemporaryDirectory() as d_off, \
                tempfile.TemporaryDirectory() as d_on:
            off = await _make(None, d_off)
            on = await _make(ObsConfig(), d_on)
            try:
                # one warmup burst each: the first burst pays import/JIT-cold
                # costs that would land on whichever config runs first
                await _burst(off[1], off[2], "warm-off")
                await _burst(on[1], on[2], "warm-on")
                pairs: list[tuple[float, float, float]] = []
                for pair in range(PAIRS):
                    # alternate which config goes first so a linear drift in
                    # ambient load biases half the pairs each way (cancels
                    # in the median) instead of all of them one way
                    if pair % 2 == 0:
                        wall_off, cpu_off = await _burst(off[1], off[2], f"off-{pair:03d}")
                        wall_on, cpu_on = await _burst(on[1], on[2], f"on-{pair:03d}")
                    else:
                        wall_on, cpu_on = await _burst(on[1], on[2], f"on-{pair:03d}")
                        wall_off, cpu_off = await _burst(off[1], off[2], f"off-{pair:03d}")
                    pairs.append((wall_off, wall_on / wall_off, cpu_on / cpu_off))
            finally:
                for _, server, _conns in (off, on):
                    await server.stop()
                for engine, _, _ in (off, on):
                    engine.shutdown()
            wall_ratios = [p[1] for p in pairs]
            return {
                "pairs": PAIRS,
                "burst_requests": BURST_CLIENTS * BURST_PER_CLIENT,
                "wall_overhead_pct": (statistics.median(wall_ratios) - 1) * 100,
                "engine_cpu_overhead_pct": (
                    statistics.median(p[2] for p in pairs) - 1
                ) * 100,
                "wall_ratio_quartiles": statistics.quantiles(wall_ratios, n=4),
                "pair_overheads_pct": [(r - 1) * 100 for r in wall_ratios],
            }

    return asyncio.run(body())


# ----------------------------------------------------------------------
# part 2: fully-traced cluster run (stitch, skew, flight dump)
# ----------------------------------------------------------------------


def stitch_fraction(client_tracer: Tracer, engine) -> tuple[float, int]:
    """Fraction of client calls whose trace stitched end to end."""
    by_trace: dict[int, list] = {}
    for span in client_tracer.collector.spans() + engine.tracer.collector.spans():
        by_trace.setdefault(span.trace_id, []).append(span)
    traces = [
        spans for spans in by_trace.values()
        if any(s.name == "client.call" for s in spans)
    ]
    complete = sum(
        1
        for spans in traces
        if {"net.call", "net.commit_batch"} <= {s.name for s in spans}
        and "txn" in {s.kind for s in spans}
    )
    return (complete / len(traces) if traces else 0.0), len(traces)


def run_traced_cluster() -> dict:
    """Traced closed-loop clients against a 2-worker partition cluster."""

    async def body() -> dict:
        engine = ParallelHStoreEngine(WORKERS, obs=ObsConfig())
        schema.install_tables(engine)
        engine.register_procedure(RoutedValidateVote)
        schema.seed_contestants(engine)
        server = NetServer(engine, port=0)
        await server.start()
        tracer = Tracer(process="client", origin=CLIENT_ORIGIN)
        latencies: list[float] = []

        async def one_client(client: NetClient, share: list[tuple]) -> None:
            async with client:
                for vote in share:
                    started = time.perf_counter()
                    result = await client.call_procedure("validate_vote", *vote)
                    latencies.append((time.perf_counter() - started) * 1e6)
                    assert result.success

        connections = await asyncio.gather(
            *(
                NetClient.connect("127.0.0.1", server.port, tracer=tracer)
                for _ in range(TRACED_CLIENTS)
            )
        )
        shares = votes_for(TRACED_CLIENTS, TRACED_PER_CLIENT)
        started = time.perf_counter()
        await asyncio.gather(
            *(one_client(conn, share) for conn, share in zip(connections, shares))
        )
        wall = time.perf_counter() - started

        fraction, traces = stitch_fraction(tracer, engine)
        skew = engine.partition_skew()
        RESULTS_DIR.mkdir(exist_ok=True)
        server.flight.dump(
            RESULTS_DIR / "flight.jsonl",
            collector=engine.tracer.collector,
            reason="bench-e17",
        )
        result = {
            "requests": TRACED_CLIENTS * TRACED_PER_CLIENT,
            "tps": TRACED_CLIENTS * TRACED_PER_CLIENT / wall,
            "latency_us": percentiles(latencies),
            "stitch_fraction": fraction,
            "stitched_traces": traces,
            "partition_skew": {
                "skew_ratio": skew["skew_ratio"],
                "total_txns": skew["total_txns"],
            },
            "flight_summary": server.flight.summary(),
        }
        await server.stop()
        engine.shutdown()
        return result

    return asyncio.run(body())


# ----------------------------------------------------------------------
# part 3: watermark-lag fidelity
# ----------------------------------------------------------------------


def run_lag_fidelity() -> dict:
    """Split streaming pipe: report vs. authoritative state vs. gauges."""
    engine = DStreamEngine(2, obs=ObsConfig(metrics=True))
    for ddl in (
        "CREATE STREAM e17_src (k INTEGER)",
        "CREATE STREAM e17_mid (k INTEGER)",
        "CREATE TABLE e17_relay_log (k INTEGER NOT NULL)",
        "CREATE TABLE e17_sink_log (k INTEGER NOT NULL)",
    ):
        engine.execute_ddl(ddl)
    engine.register_procedure(BenchRelay)
    engine.register_procedure(BenchSink)
    spec = WorkflowSpec("e17_pipe")
    spec.add_node(
        "bench_relay", input_stream="e17_src", batch_size=4,
        output_streams=("e17_mid",),
    )
    spec.add_node("bench_sink", input_stream="e17_mid")
    engine.deploy_workflow(
        spec, placement={"bench_relay": 0, "bench_sink": 1}
    )
    ingests = 25
    for chunk in range(ingests):
        engine.ingest("e17_src", [(chunk * 4 + i,) for i in range(4)])
    engine.run_until_quiescent()

    health = engine.stream_health()
    states = engine.dstream_status()
    # authoritative lag per stream, straight from the raw worker state
    produced: dict[str, int] = {}
    applied: dict[str, int] = {}
    for state in states:
        for name, token in state["stream_seq"].items():
            produced[name] = max(produced.get(name, 0), token)
        for name, watermark in state["watermarks"].items():
            applied[name] = max(applied.get(name, 0), watermark)
    report_matches_state = all(
        info["lag"] == produced[name] - applied.get(name, 0)
        for name, info in health["streams"].items()
    )
    quiescent_zero = all(
        info["lag"] == 0 for info in health["streams"].values()
    ) and all(
        info["outbound_depth"] == 0 and info["pending_tes"] == 0
        for info in health["workers"].values()
    )
    snapshot = engine.metrics.to_json()
    gauges = {
        entry["labels"]["stream"]: entry["value"]
        for entry in snapshot["stream.watermark_lag"]
    }
    gauges_match = all(
        gauges.get(name) == info["lag"]
        for name, info in health["streams"].items()
    )
    e2e_count = sum(e["count"] for e in snapshot["stream.e2e_us"])
    engine.shutdown()
    return {
        "streams": health["streams"],
        "report_matches_state": report_matches_state,
        "quiescent_zero_lag": quiescent_zero,
        "gauges_match_report": gauges_match,
        "e2e_samples": e2e_count,
        "e2e_samples_expected": ingests,
        "fidelity": bool(
            report_matches_state
            and quiescent_zero
            and gauges_match
            and e2e_count == ingests
        ),
    }


def test_e17_telemetry_overhead_and_fidelity(benchmark, save_report):
    overhead: dict = {}
    traced: dict = {}
    lag: dict = {}

    def run_all():
        overhead.update(run_overhead())
        traced.update(run_traced_cluster())
        lag.update(run_lag_fidelity())

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    overhead_pct = overhead["wall_overhead_pct"]
    stitch = traced["stitch_fraction"]

    quartiles = overhead["wall_ratio_quartiles"]
    save_report(
        "e17_telemetry",
        format_table(
            ["metric", "value"],
            [
                ["pairs", overhead["pairs"]],
                ["burst requests", overhead["burst_requests"]],
                ["median wall overhead", f"{overhead_pct:+.2f}%"],
                [
                    "median engine-thread CPU overhead",
                    f"{overhead['engine_cpu_overhead_pct']:+.2f}%",
                ],
                [
                    "attempt medians",
                    " ".join(
                        f"{a:+.2f}%" for a in overhead["attempt_medians_pct"]
                    ),
                ],
                [
                    "pair-ratio quartiles",
                    " ".join(f"{(q - 1) * 100:+.1f}%" for q in quartiles),
                ],
            ],
        )
        + f"\noverhead bar: {OVERHEAD_BAR_PCT}% (best-of-attempts median of "
        f"{overhead['pairs']} alternating paired bursts, obs-off vs default "
        "ObsConfig, untraced clients)"
        + f"\ntrace stitch: {stitch:.3f} complete over "
        f"{traced['stitched_traces']} traces "
        f"({traced['tps']:.0f} tps traced, p99 "
        f"{traced['latency_us']['p99']:.0f} µs)"
        + f"\nlag fidelity: report==state {lag['report_matches_state']}, "
        f"gauges==report {lag['gauges_match_report']}, quiescent zero "
        f"{lag['quiescent_zero_lag']}, e2e {lag['e2e_samples']}/"
        f"{lag['e2e_samples_expected']}",
    )

    assert overhead_pct < OVERHEAD_BAR_PCT, (
        f"default-on telemetry costs {overhead_pct:.2f}% median wall "
        f"(bar {OVERHEAD_BAR_PCT}%)"
    )
    assert stitch == 1.0, f"only {stitch:.3f} of traces stitched end to end"
    assert lag["fidelity"], f"watermark-lag fidelity failed: {lag}"

    write_bench_json(
        "e17_telemetry",
        {
            "config": {
                "workers": WORKERS,
                "pairs": PAIRS,
                "burst_clients": BURST_CLIENTS,
                "burst_per_client": BURST_PER_CLIENT,
                "traced_clients": TRACED_CLIENTS,
                "traced_per_client": TRACED_PER_CLIENT,
                "overhead_bar_pct": OVERHEAD_BAR_PCT,
            },
            "overhead": overhead,
            "traced_cluster": traced,
            "lag_fidelity": lag,
            "guard": {
                # higher-is-better booleans (E16 convention); raw pct above
                "telemetry_overhead_pct": float(overhead_pct < OVERHEAD_BAR_PCT),
                "trace_stitch_complete": stitch,
                "stream_lag_fidelity": float(lag["fidelity"]),
            },
        },
    )

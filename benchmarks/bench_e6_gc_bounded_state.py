"""E6 — Uniform state management: GC keeps stream state bounded.

Paper claim (§2): "stream and window state has a short lifespan... S-Store
provides automatic garbage collection mechanisms for tuples that expire from
stream or window state."

Measured: live-tuple high-water marks of stream and window state while an
unbounded tuple stream flows through a two-stage workflow — with total input
an order of magnitude larger than any retained state.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.core.engine import SStoreEngine, StreamProcedure
from repro.core.workflow import WorkflowSpec

TUPLES = 2000
WINDOW = 50
CHUNK = 10


def build():
    eng = SStoreEngine()
    eng.execute_ddl("CREATE STREAM feed (seq INTEGER, v INTEGER)")
    eng.execute_ddl("CREATE STREAM derived (seq INTEGER, v INTEGER)")
    eng.execute_ddl(
        f"CREATE WINDOW recent ON feed ROWS {WINDOW} SLIDE 1 OWNED BY stage1"
    )

    class Stage1(StreamProcedure):
        name = "stage1"
        statements = {"peek": "SELECT COUNT(*) FROM recent"}

        def run(self, ctx):
            ctx.execute("peek")
            ctx.emit("derived", [row for row in ctx.batch])

    class Stage2(StreamProcedure):
        name = "stage2"
        statements = {}

        def run(self, ctx):
            pass

    eng.register_procedure(Stage1)
    eng.register_procedure(Stage2)
    wf = WorkflowSpec("wf")
    wf.add_node(
        "stage1", input_stream="feed", batch_size=CHUNK, output_streams=("derived",)
    )
    wf.add_node("stage2", input_stream="derived")
    eng.deploy_workflow(wf)
    return eng


def run_with_gc() -> dict[str, int]:
    eng = build()
    high = {"feed": 0, "derived": 0, "recent": 0}
    for start in range(0, TUPLES, CHUNK):
        eng.ingest("feed", [(i, i % 11) for i in range(start, start + CHUNK)])
        for name in high:
            high[name] = max(
                high[name], eng.partitions[0].ee.table(name).row_count()
            )
    high["gced"] = eng.stats.stream_tuples_gced
    return high


def test_e6_state_stays_bounded(benchmark, save_report):
    high = benchmark.pedantic(run_with_gc, rounds=2, iterations=1)
    rows = [
        ["feed (stream)", high["feed"]],
        ["derived (stream)", high["derived"]],
        ["recent (window)", high["recent"]],
        ["tuples ingested", TUPLES],
        ["tuples GCed", high["gced"]],
    ]
    save_report(
        "e6_gc_bounded_state",
        format_table(["state", "live high-water mark"], rows),
    )
    benchmark.extra_info["stream_high_water"] = high["feed"]

    # streams never retain more than in-flight work; the window never
    # exceeds its declared size; everything consumed was collected
    assert high["feed"] <= 2 * CHUNK
    assert high["derived"] <= 2 * CHUNK
    assert high["recent"] <= WINDOW
    assert high["gced"] >= 2 * TUPLES  # feed + derived both fully collected


def test_e6_windows_bound_unbounded_streams(benchmark):
    """Even with GC watermarks pinned (no consumers), windows stay finite."""

    def run():
        eng = SStoreEngine()
        eng.execute_ddl("CREATE STREAM raw (v INTEGER)")
        eng.execute_ddl("CREATE WINDOW w ON raw ROWS 25 SLIDE 5 OWNED BY nobody")
        # no workflow: tuples cannot be ingested by clients into a stream
        # with no consumer batching, so drive the window through the hook
        # path via a single-node workflow with a no-op procedure

        class Noop(StreamProcedure):
            name = "noop"
            statements = {}

            def run(self, ctx):
                pass

        eng.register_procedure(Noop)
        wf = WorkflowSpec("wf")
        wf.add_node("noop", input_stream="raw", batch_size=5)
        eng.deploy_workflow(wf)
        for i in range(1000):
            eng.ingest("raw", [(i,)])
        return eng.partitions[0].ee.table("w").row_count()

    final = benchmark.pedantic(run, rounds=2, iterations=1)
    assert final <= 25

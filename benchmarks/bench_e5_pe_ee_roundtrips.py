"""E5 — Native windowing removes PE↔EE round trips.

Paper claim (§2, §3.1): "...as well as a reduction of PE-to-EE round trips
due to native support for windowing."  The H-Store SP2 maintains the
100-vote trending window with explicit SQL — INSERT the tuple, COUNT the
window, find the MIN sequence, DELETE the oldest — each statement one
PE↔EE crossing.  S-Store's window is maintained by an internal EE trigger
during the statement that inserted the stream tuple: zero extra crossings.

Measured: the window-maintenance experiment in isolation — a stream of N
tuples through (a) an S-Store EE-maintained ROWS window and (b) the manual
SQL pattern — comparing PE↔EE round trips and EE trigger firings.
"""

from __future__ import annotations

import pytest

from repro.core.engine import SStoreEngine, StreamProcedure
from repro.core.workflow import WorkflowSpec
from repro.hstore.engine import HStoreEngine
from repro.hstore.procedure import StoredProcedure
from repro.bench import format_table

TUPLES = 500
WINDOW = 100


def run_sstore_windowing() -> dict[str, int]:
    eng = SStoreEngine()
    eng.execute_ddl("CREATE STREAM feed (seq INTEGER, v INTEGER)")
    eng.execute_ddl(
        f"CREATE WINDOW recent ON feed ROWS {WINDOW} SLIDE 1 OWNED BY observe"
    )

    class Observe(StreamProcedure):
        name = "observe"
        statements = {"stat": "SELECT COUNT(*), AVG(v) FROM recent"}

        def run(self, ctx):
            ctx.execute("stat")

    eng.register_procedure(Observe)
    wf = WorkflowSpec("wf")
    wf.add_node("observe", input_stream="feed", batch_size=1)
    eng.deploy_workflow(wf)

    before = eng.stats.snapshot()
    for i in range(TUPLES):
        eng.ingest("feed", [(i, i % 7)])
    return eng.stats.delta(before)


def run_hstore_windowing() -> dict[str, int]:
    eng = HStoreEngine()
    eng.execute_ddl(
        "CREATE TABLE recent (seq INTEGER NOT NULL, v INTEGER, "
        "PRIMARY KEY (seq))"
    )

    class Observe(StoredProcedure):
        name = "observe"
        statements = {
            "push": "INSERT INTO recent VALUES (?, ?)",
            "count": "SELECT COUNT(*) FROM recent",
            "oldest": "SELECT MIN(seq) FROM recent",
            "evict": "DELETE FROM recent WHERE seq = ?",
            "stat": "SELECT COUNT(*), AVG(v) FROM recent",
        }

        def run(self, ctx, seq, v):
            ctx.execute("push", seq, v)
            if ctx.execute("count").scalar() > WINDOW:
                ctx.execute("evict", ctx.execute("oldest").scalar())
            ctx.execute("stat")

    eng.register_procedure(Observe)
    before = eng.stats.snapshot()
    for i in range(TUPLES):
        eng.call_procedure("observe", i, i % 7)
    return eng.stats.delta(before)


@pytest.fixture(scope="module")
def collected():
    return {}


def test_e5_sstore_native_window(benchmark, collected):
    collected["s-store"] = benchmark.pedantic(
        run_sstore_windowing, rounds=2, iterations=1
    )
    benchmark.extra_info["pe_ee_per_tuple"] = round(
        collected["s-store"]["pe_ee_roundtrips"] / TUPLES, 2
    )


def test_e5_hstore_manual_window(benchmark, collected):
    collected["h-store"] = benchmark.pedantic(
        run_hstore_windowing, rounds=2, iterations=1
    )
    benchmark.extra_info["pe_ee_per_tuple"] = round(
        collected["h-store"]["pe_ee_roundtrips"] / TUPLES, 2
    )


def test_e5_shape_holds(benchmark, collected, save_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    s = collected["s-store"]
    h = collected["h-store"]
    rows = [
        [
            name,
            round(counters["pe_ee_roundtrips"] / TUPLES, 2),
            round(counters["ee_trigger_firings"] / TUPLES, 2),
            counters["rows_deleted"],
        ]
        for name, counters in (("s-store", s), ("h-store", h))
    ]
    save_report(
        "e5_pe_ee_roundtrips",
        format_table(
            ["system", "pe_ee_rt_per_tuple", "ee_triggers_per_tuple", "evictions"],
            rows,
        ),
    )
    # S-Store: ingest insert + the stat query ≈ 2 crossings per tuple;
    # H-Store: push + count + stat (+ oldest + evict when full) ≈ 4-5.
    assert h["pe_ee_roundtrips"] > 1.5 * s["pe_ee_roundtrips"]
    # the window upkeep happened inside the EE on S-Store...
    assert s["ee_trigger_firings"] >= TUPLES
    # ...and not at all on H-Store
    assert h["ee_trigger_firings"] == 0

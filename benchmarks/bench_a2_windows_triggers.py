"""A2 — Ablation: window parameters and EE-trigger chain depth.

Design points from DESIGN.md §4.2 ("two trigger levels"):

* window slide granularity trades update freshness against maintenance work
  (a slide-1 window slides on every tuple; slide-k every k tuples);
* window size is nearly free at maintenance time (eviction is O(evicted));
* chains of SQL EE triggers process N stages inside ONE transaction with
  zero extra PE↔EE round trips per stage — depth costs EE work only.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.core.engine import SStoreEngine, StreamProcedure
from repro.core.workflow import WorkflowSpec

TUPLES = 600


def run_window(size: int, slide: int) -> dict[str, int]:
    eng = SStoreEngine()
    eng.execute_ddl("CREATE STREAM feed (seq INTEGER, v INTEGER)")
    eng.execute_ddl(
        f"CREATE WINDOW w ON feed ROWS {size} SLIDE {slide} OWNED BY sink"
    )

    class Sink(StreamProcedure):
        name = "sink"
        statements = {}

        def run(self, ctx):
            pass

    eng.register_procedure(Sink)
    wf = WorkflowSpec("wf")
    wf.add_node("sink", input_stream="feed", batch_size=10)
    eng.deploy_workflow(wf)
    for start in range(0, TUPLES, 10):
        eng.ingest("feed", [(i, i % 5) for i in range(start, start + 10)])
    return eng.stats.snapshot()


class TestWindowSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return {}

    @pytest.mark.parametrize(
        "size,slide", [(100, 1), (100, 10), (100, 100), (10, 1), (500, 1)]
    )
    def test_a2_window(self, benchmark, size, slide, sweep):
        stats = benchmark.pedantic(
            lambda: run_window(size, slide), rounds=2, iterations=1
        )
        sweep[(size, slide)] = stats
        benchmark.extra_info["slides"] = stats["window_slides"]

    def test_a2_window_shape(self, benchmark, sweep, save_report):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows = [
            [size, slide, stats["window_slides"], stats["rows_inserted"],
             stats["rows_deleted"]]
            for (size, slide), stats in sorted(sweep.items())
        ]
        save_report(
            "a2_window_sweep",
            format_table(
                ["size", "slide", "slides", "rows_inserted", "rows_evicted"], rows
            ),
        )
        # slide count is TUPLES/slide regardless of size
        assert sweep[(100, 1)]["window_slides"] == TUPLES
        assert sweep[(100, 10)]["window_slides"] == TUPLES // 10
        assert sweep[(100, 100)]["window_slides"] == TUPLES // 100
        # size doesn't change slide count
        assert sweep[(10, 1)]["window_slides"] == sweep[(500, 1)]["window_slides"]


def run_trigger_chain(depth: int) -> dict[str, int]:
    """seed stream → EE-trigger chain of ``depth`` derived streams."""
    eng = SStoreEngine()
    eng.execute_ddl("CREATE STREAM s0 (v INTEGER)")
    for level in range(1, depth + 1):
        eng.execute_ddl(f"CREATE STREAM s{level} (v INTEGER)")
        eng.create_ee_trigger(
            f"t{level}",
            f"s{level - 1}",
            f"INSERT INTO s{level} VALUES (?)",
            param_columns=["v"],
        )

    class Source(StreamProcedure):
        name = "source"
        statements = {}

        def run(self, ctx):
            pass

    eng.register_procedure(Source)
    wf = WorkflowSpec("wf")
    wf.add_node("source", input_stream="s0", batch_size=10)
    eng.deploy_workflow(wf)
    for start in range(0, 200, 10):
        eng.ingest("s0", [(i,) for i in range(start, start + 10)])
    return eng.stats.snapshot()


class TestTriggerDepth:
    @pytest.fixture(scope="class")
    def sweep(self):
        return {}

    @pytest.mark.parametrize("depth", [0, 1, 2, 4, 8])
    def test_a2_trigger_depth(self, benchmark, depth, sweep):
        stats = benchmark.pedantic(
            lambda: run_trigger_chain(depth), rounds=2, iterations=1
        )
        sweep[depth] = stats
        benchmark.extra_info["ee_trigger_firings"] = stats["ee_trigger_firings"]

    def test_a2_trigger_shape(self, benchmark, sweep, save_report):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows = [
            [depth, stats["ee_trigger_firings"], stats["pe_ee_roundtrips"],
             stats["ee_statements"]]
            for depth, stats in sorted(sweep.items())
        ]
        save_report(
            "a2_trigger_depth",
            format_table(
                ["chain depth", "ee_trigger_firings", "pe_ee_rt", "ee_statements"],
                rows,
            ),
        )
        # every chain stage fires once per tuple...
        assert sweep[4]["ee_trigger_firings"] == 4 * 200
        # ...but the PE↔EE crossing count does not grow with depth
        assert sweep[8]["pe_ee_roundtrips"] == sweep[0]["pe_ee_roundtrips"]

"""E12 — Observability overhead: tracing must not distort what it measures.

An instrument the engine cannot afford to leave on is an instrument nobody
turns on.  This experiment prices the :mod:`repro.obs` layer on the E3
S-Store throughput workload (the vote stream through ingest → triggers →
leaderboards), across four configurations:

* ``off`` — no ``ObsConfig``: every instrumentation site degenerates to one
  attribute load and one branch on the shared no-op tracer.  This is the
  baseline, and its absolute time is recorded so regressions against the
  uninstrumented engine show up across benchmark runs.
* ``metrics`` — latency histograms and counters only (no spans).
* ``tracing`` — the default ``ObsConfig()``: spans for txns, triggers,
  windows, workflows, log flushes, plus metrics.  The headline number:
  must stay under ``MAX_OVERHEAD`` (5%).
* ``tracing+sql`` — ``sql_spans=True``, one span per EE statement.  The
  microscope setting; reported for scale (~15%) but intentionally *not*
  held to the 5% bar — that cost is why it is off by default.

Methodology: min-of-N interleaved rounds over *CPU* time.  Each round runs
every configuration once in sequence, so slow machine phases (GC, thermal,
CI noise) hit all configurations rather than biasing one; the minimum over
rounds is the least-noise estimate of each configuration's true cost.  The
workload is pure CPU (an in-process engine, no I/O waits), so
``time.process_time`` is the right clock — wall time on a shared CI box
charges another tenant's scheduling burst to whichever config was running.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.apps.voter.sstore_app import VoterSStoreApp
from repro.apps.voter.workload import VoterWorkload
from repro.bench import format_table, write_bench_json
from repro.core.engine import SStoreEngine
from repro.obs import ObsConfig

CONTESTANTS = 10
VOTES = 600
#: compiled execution (E13) made each round ~3x shorter, which shrank the
#: measured region relative to a shared box's contention bursts — more
#: rounds give every configuration more chances to sample a calm window,
#: which is what the min-over-rounds estimator needs
ROUNDS = 16
#: the acceptance bar for default-on tracing
MAX_OVERHEAD = 0.05

CONFIGS: dict[str, ObsConfig | None] = {
    "off": None,
    "metrics": ObsConfig(tracing=False),
    "tracing": ObsConfig(),
    "tracing+sql": ObsConfig(sql_spans=True),
}


def _requests():
    return VoterWorkload(seed=303, num_contestants=CONTESTANTS).generate(VOTES)


def _run_once(obs: ObsConfig | None) -> tuple[float, SStoreEngine]:
    engine = SStoreEngine(obs=obs)
    app = VoterSStoreApp(engine, num_contestants=CONTESTANTS)
    requests = _requests()
    # a collection inherited from the *previous* config's garbage must not
    # land inside this config's timed region
    gc.collect()
    started = time.process_time()
    app.submit(requests, ingest_chunk=5)
    return time.process_time() - started, engine


@pytest.fixture(scope="module")
def sweep():
    best: dict[str, float] = {name: float("inf") for name in CONFIGS}
    spans: dict[str, int] = {}
    for _ in range(ROUNDS):
        for name, obs in CONFIGS.items():
            elapsed, engine = _run_once(obs)
            best[name] = min(best[name], elapsed)
            if engine.tracer.enabled:
                spans[name] = len(engine.tracer.collector)
    return best, spans


def test_e12_obs_overhead(benchmark, sweep, save_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    best, spans = sweep
    base = best["off"]
    overhead = {name: elapsed / base - 1.0 for name, elapsed in best.items()}

    rows = [
        [
            name,
            f"{best[name] * 1000:.1f}ms",
            f"{overhead[name] * 100:+.2f}%",
            spans.get(name, 0),
        ]
        for name in CONFIGS
    ]
    save_report(
        "e12_obs_overhead",
        format_table(["config", "best cpu", "overhead", "spans"], rows)
        + f"\nbar: default tracing < {MAX_OVERHEAD:.0%} "
        + f"(min of {ROUNDS} interleaved rounds, {VOTES} votes)",
    )
    write_bench_json(
        "e12_obs",
        {
            "workload": {"votes": VOTES, "contestants": CONTESTANTS},
            "rounds": ROUNDS,
            "cpu_seconds": best,
            "overhead_vs_off": overhead,
            "spans_recorded": spans,
            "max_overhead_bar": MAX_OVERHEAD,
        },
    )

    # the tracer actually traced — a zero-overhead result that recorded
    # nothing would prove the wrong thing
    assert spans["tracing"] > 1000
    assert spans["tracing+sql"] > spans["tracing"]
    # headline claims: metrics and default tracing are affordable
    assert overhead["metrics"] < MAX_OVERHEAD, overhead
    assert overhead["tracing"] < MAX_OVERHEAD, overhead

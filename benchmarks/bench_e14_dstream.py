"""E14 — Distributed streaming: the workflow scheduler on the cluster.

ISSUE 6's tentpole, measured: the same voter workflow runs in-process and
on DStreamEngine clusters of 1/2/4 workers.  The cluster must be
*semantically invisible* — identical committed state, identical per-stream
batch commit order, identical election — while paying real IPC for every
ingest.  Reported: throughput of each deployment plus the (deterministic)
messaging overhead; the equivalence flags and the votes-per-roundtrip
ratio are regression-guarded.
"""

from __future__ import annotations

import pytest

from repro.apps.voter.workload import VoterWorkload
from repro.bench import (
    compare_summaries,
    format_table,
    run_voter_dstream,
    run_voter_sstore,
    write_bench_json,
)
from repro.dstream.oracle import differential_report

CONTESTANTS = 8
VOTES = 400
BATCH_SIZE = 2
INGEST_CHUNK = 4
WORKER_COUNTS = [1, 2, 4]


def _requests():
    return VoterWorkload(seed=1414, num_contestants=CONTESTANTS).generate(VOTES)


@pytest.fixture(scope="module")
def reference():
    return run_voter_sstore(
        _requests(),
        num_contestants=CONTESTANTS,
        batch_size=BATCH_SIZE,
        ingest_chunk=INGEST_CHUNK,
    )


def test_e14_cluster_vs_inprocess_throughput(benchmark, reference, save_report):
    rows = []
    results = {}
    equivalence = {}

    def run_all():
        results.clear()
        equivalence.clear()
        for workers in WORKER_COUNTS:
            result = run_voter_dstream(
                _requests(),
                num_contestants=CONTESTANTS,
                batch_size=BATCH_SIZE,
                ingest_chunk=INGEST_CHUNK,
                workers=workers,
                shutdown=False,
            )
            engine = result.app.engine
            try:
                report = differential_report(reference.app.engine, engine)
                anomaly = compare_summaries(reference.summary, result.summary)
                equivalence[workers] = (report, anomaly)
            finally:
                engine.shutdown()
            results[workers] = result

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows.append(
        [
            "in-process",
            f"{reference.wall_seconds:.3f}s",
            f"{reference.simulated_tps:.0f}",
            reference.counters.get("ipc_roundtrips", 0),
            "—",
        ]
    )
    for workers in WORKER_COUNTS:
        result = results[workers]
        report, anomaly = equivalence[workers]
        assert report.equivalent, f"{workers}w: {report.summary()}"
        assert not anomaly.any_anomaly, f"{workers}w: {anomaly}"
        rows.append(
            [
                result.system,
                f"{result.wall_seconds:.3f}s",
                f"{result.simulated_tps:.0f}",
                result.counters.get("ipc_roundtrips", 0),
                report.summary(),
            ]
        )

    two = results[2]
    votes_per_ipc = two.votes_processed / max(
        1, two.counters.get("ipc_roundtrips", 0)
    )
    votes_per_client_rt = two.votes_processed / max(
        1, two.counters.get("client_pe_roundtrips", 0)
    )
    save_report(
        "e14_dstream",
        format_table(
            ["deployment", "wall", "simulated tps", "ipc", "differential"],
            rows,
        )
        + f"\nvotes/ipc @2w = {votes_per_ipc:.3f}, "
        f"votes/client-roundtrip @2w = {votes_per_client_rt:.3f}",
    )
    write_bench_json(
        "e14_dstream",
        {
            "workload": {
                "votes": VOTES,
                "contestants": CONTESTANTS,
                "batch_size": BATCH_SIZE,
                "ingest_chunk": INGEST_CHUNK,
            },
            "wall_seconds": {
                "in_process": reference.wall_seconds,
                **{
                    f"workers_{workers}": results[workers].wall_seconds
                    for workers in WORKER_COUNTS
                },
            },
            "simulated_tps": {
                "in_process": reference.simulated_tps,
                **{
                    f"workers_{workers}": results[workers].simulated_tps
                    for workers in WORKER_COUNTS
                },
            },
            "ipc_roundtrips": {
                f"workers_{workers}": results[workers].counters.get(
                    "ipc_roundtrips", 0
                )
                for workers in WORKER_COUNTS
            },
            # regression-guarded metrics: all deterministic — equivalence
            # flags (1.0 = the oracle held at every worker count) and the
            # cluster's messaging efficiency on a fixed workload
            "guard": {
                "state_order_equivalence": float(
                    all(
                        report.equivalent and not anomaly.any_anomaly
                        for report, anomaly in equivalence.values()
                    )
                ),
                "votes_per_ipc_roundtrip": votes_per_ipc,
                "votes_per_client_roundtrip": votes_per_client_rt,
            },
        },
    )


def test_e14_commit_order_identical_across_worker_counts(reference):
    """The per-stream batch commit order is the same at every scale."""
    from repro.dstream.oracle import commit_order_of

    ref_order = commit_order_of(reference.app.engine)
    for workers in (2, 4):
        result = run_voter_dstream(
            _requests(),
            num_contestants=CONTESTANTS,
            batch_size=BATCH_SIZE,
            ingest_chunk=INGEST_CHUNK,
            workers=workers,
            shutdown=False,
        )
        engine = result.app.engine
        try:
            assert commit_order_of(engine) == ref_order
        finally:
            engine.shutdown()

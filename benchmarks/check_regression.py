#!/usr/bin/env python
"""Compare fresh benchmark JSON against committed baselines.

Each ``BENCH_<name>.json`` may carry a ``"guard"`` object: a flat map of
metric name → number, by convention *higher-is-better ratios* (speedups),
chosen to be machine-independent so CI runners and laptops can share one
baseline.  This script compares every guarded metric in the fresh results
directory (``benchmarks/_results/``) against the committed baseline
(``benchmarks/baselines/``) and fails when a metric fell more than
``--tolerance`` (default 20%) below its baseline.

Files without a ``guard`` object are skipped with a note — wall-clock
numbers are too machine-dependent to gate on.  A metric that *improved*
beyond the tolerance prints a reminder to refresh the baseline but does
not fail.

Usage::

    python benchmarks/check_regression.py
    python benchmarks/check_regression.py --tolerance 0.3
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent
DEFAULT_RESULTS = HERE / "_results"
DEFAULT_BASELINES = HERE / "baselines"


def load_guard(path: pathlib.Path) -> dict[str, float] | None:
    data = json.loads(path.read_text())
    guard = data.get("guard")
    if not isinstance(guard, dict):
        return None
    return {key: float(value) for key, value in guard.items()}


def check(
    results_dir: pathlib.Path, baselines_dir: pathlib.Path, tolerance: float
) -> int:
    failures: list[str] = []
    checked = 0

    baselines = sorted(baselines_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no baselines under {baselines_dir} — nothing to check")
        return 0

    for baseline_path in baselines:
        name = baseline_path.name
        baseline_guard = load_guard(baseline_path)
        if baseline_guard is None:
            print(f"[skip] {name}: baseline has no guard object")
            continue
        fresh_path = results_dir / name
        if not fresh_path.exists():
            failures.append(
                f"{name}: baseline is guarded but no fresh result exists "
                f"under {results_dir} — did the benchmark run?"
            )
            continue
        fresh_guard = load_guard(fresh_path)
        if fresh_guard is None:
            failures.append(f"{name}: fresh result lost its guard object")
            continue

        for metric, base_value in sorted(baseline_guard.items()):
            if metric not in fresh_guard:
                failures.append(f"{name}: guard metric {metric!r} disappeared")
                continue
            fresh_value = fresh_guard[metric]
            floor = base_value * (1.0 - tolerance)
            checked += 1
            if fresh_value < floor:
                failures.append(
                    f"{name}: {metric} regressed: {fresh_value:.3f} < "
                    f"{floor:.3f} (baseline {base_value:.3f} - {tolerance:.0%})"
                )
            elif fresh_value > base_value * (1.0 + tolerance):
                print(
                    f"[note] {name}: {metric} improved to {fresh_value:.3f} "
                    f"(baseline {base_value:.3f}) — consider refreshing the "
                    f"baseline"
                )
            else:
                print(
                    f"[ok]   {name}: {metric} = {fresh_value:.3f} "
                    f"(baseline {base_value:.3f})"
                )

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {checked} guarded metric(s) within tolerance")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results", type=pathlib.Path, default=DEFAULT_RESULTS,
        help="directory of fresh BENCH_*.json files",
    )
    parser.add_argument(
        "--baselines", type=pathlib.Path, default=DEFAULT_BASELINES,
        help="directory of committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed fractional drop below baseline (default 0.2 = 20%%)",
    )
    args = parser.parse_args()
    return check(args.results, args.baselines, args.tolerance)


if __name__ == "__main__":
    raise SystemExit(main())

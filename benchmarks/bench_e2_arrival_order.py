"""E2 — Arrival order: H-Store may record the wrong vote of a rapid pair.

Paper claim (§3.1): "Suppose that a user submits a vote for candidate X,
then another vote for candidate Y before the first has been recorded.
Ideally, the vote for X should be counted, and the vote for Y rejected.
However, if the ordering is not maintained, the vote for Y may be counted
instead."  S-Store processes requests in arrival order, so the first vote
always wins.

Measured: fraction of rapid-fire pairs whose *second* vote got recorded, in
interleaved H-Store vs. S-Store.
"""

from __future__ import annotations

import pytest

from repro.apps.voter.workload import VoterWorkload
from repro.bench import (
    format_table,
    run_voter_dstream,
    run_voter_hstore_interleaved,
    run_voter_sstore,
)

CONTESTANTS = 6
#: below the elimination threshold (100) so candidate removals — which
#: legitimately return votes and would confound the pair detector — never
#: occur; duplicates are disabled for the same reason
VOTES = 90


def _requests():
    return VoterWorkload(
        seed=202,
        num_contestants=CONTESTANTS,
        rapid_pair_fraction=0.3,
        duplicate_fraction=0.0,
    ).generate(VOTES)


def _misordered_pairs(app, requests) -> tuple[int, int]:
    """(misordered, total) rapid pairs in the final Votes table."""
    recorded = dict(app.vote_rows())
    misordered = 0
    total = 0
    for i, request in enumerate(requests):
        if not request.is_rapid_second:
            continue
        first = requests[i - 1]
        total += 1
        if recorded.get(first.phone_number) == request.contestant_number:
            misordered += 1
    return misordered, total


def test_e2_hstore_misorders_rapid_pairs(benchmark, save_report):
    requests = _requests()
    rows = []
    total_misordered = 0
    total_pairs = 0

    def run_all():
        nonlocal rows, total_misordered, total_pairs
        rows, total_misordered, total_pairs = [], 0, 0
        for seed in range(1, 6):
            result = run_voter_hstore_interleaved(
                requests, num_contestants=CONTESTANTS, clients=8, seed=seed
            )
            misordered, pairs = _misordered_pairs(result.app, requests)
            total_misordered += misordered
            total_pairs += pairs
            rows.append([seed, misordered, pairs])

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    benchmark.extra_info["misordered"] = f"{total_misordered}/{total_pairs}"
    save_report(
        "e2_hstore",
        format_table(["seed", "misordered", "pairs"], rows)
        + f"\ntotal misordered: {total_misordered}/{total_pairs}",
    )
    assert total_misordered > 0


def test_e2_sstore_preserves_arrival_order(benchmark, save_report):
    requests = _requests()
    result = benchmark.pedantic(
        lambda: run_voter_sstore(requests, num_contestants=CONTESTANTS),
        rounds=2,
        iterations=1,
    )
    misordered, pairs = _misordered_pairs(result.app, requests)
    benchmark.extra_info["misordered"] = f"{misordered}/{pairs}"
    save_report("e2_sstore", f"misordered rapid pairs: {misordered}/{pairs}")
    assert misordered == 0
    assert pairs > 0


def test_e2_dstream_preserves_arrival_order(benchmark, save_report):
    """E2 re-run against the cluster: the per-stream ordering token keeps
    rapid pairs in arrival order across the process boundary too."""
    requests = _requests()
    result = benchmark.pedantic(
        lambda: run_voter_dstream(
            requests, num_contestants=CONTESTANTS, workers=2, shutdown=False
        ),
        rounds=1,
        iterations=1,
    )
    try:
        misordered, pairs = _misordered_pairs(result.app, requests)
    finally:
        result.app.engine.shutdown()
    benchmark.extra_info["misordered"] = f"{misordered}/{pairs}"
    save_report("e2_dstream", f"misordered rapid pairs: {misordered}/{pairs}")
    assert misordered == 0
    assert pairs > 0

"""E13 — Query compilation: closure-compiled plans vs. the interpreter.

The per-tuple hot path of every statement used to walk the expression AST
(one virtual dispatch per node per row) and allocate a fresh EvalContext
per row.  :mod:`repro.hstore.compile` turns each planned statement into
flat closures once at plan time, and the engine's PlanCache makes ad-hoc
``execute_sql`` pay parse+plan once per distinct statement text.

Measured here:

* Voter streaming workload (the E3 configuration) end-to-end, compiled
  vs. interpreted — the trigger-cascade throughput claim;
* BikeShare mixed workload (the E8 city, shortened), compiled vs.
  interpreted — compilation helps OLTP + streaming + hybrid alike;
* ad-hoc statement repetition with the plan cache on vs. off — the
  hot path must amortize parse+plan away entirely.

Bars: compiled Voter ≥ 1.5× interpreted; plan-cache hot ≥ 5× cold.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.apps.bikeshare import BikeShareApp, BikeShareSimulation
from repro.apps.voter.sstore_app import VoterSStoreApp
from repro.apps.voter.workload import VoterWorkload
from repro.bench import format_table, write_bench_json
from repro.core.engine import SStoreEngine
from repro.hstore.engine import HStoreEngine

CONTESTANTS = 10
VOTES = 600
VOTER_ROUNDS = 6
BIKESHARE_TICKS = 120
BIKESHARE_ROUNDS = 2
ADHOC_REPEATS = 2000

MIN_VOTER_SPEEDUP = 1.5
MIN_CACHE_SPEEDUP = 5.0

#: a representative ad-hoc statement: enough expression surface that
#: parse+plan dominates its (point-lookup) execution
ADHOC_SQL = (
    "SELECT k, v, k * 2 + 1 FROM kv "
    "WHERE k = ? AND (v LIKE '%a%' OR v IS NULL OR k BETWEEN ? AND ?)"
)


def _requests():
    return VoterWorkload(seed=303, num_contestants=CONTESTANTS).generate(VOTES)


def _run_voter(compile_flag: bool) -> tuple[float, SStoreEngine]:
    engine = SStoreEngine(compile=compile_flag)
    app = VoterSStoreApp(engine, num_contestants=CONTESTANTS)
    requests = _requests()
    gc.collect()
    started = time.process_time()
    app.submit(requests, ingest_chunk=5)
    return time.process_time() - started, engine


def _run_bikeshare(compile_flag: bool) -> tuple[float, SStoreEngine]:
    engine = SStoreEngine(compile=compile_flag)
    app = BikeShareApp(
        engine, num_stations=9, capacity=8, bikes_per_station=4, num_riders=24
    )
    sim = BikeShareSimulation(
        app,
        seed=88,
        trip_speed_mph=30.0,
        drain_station=1,
        drain_bias=0.7,
        theft_at_tick=60,
        trip_start_probability=0.5,
    )
    gc.collect()
    started = time.process_time()
    sim.run(BIKESHARE_TICKS)
    return time.process_time() - started, engine


def _make_kv(**kwargs) -> HStoreEngine:
    eng = HStoreEngine(**kwargs)
    eng.execute_ddl(
        "CREATE TABLE kv (k INTEGER NOT NULL, v VARCHAR(16), PRIMARY KEY (k))"
    )
    for i in range(50):
        eng.execute_sql("INSERT INTO kv VALUES (?, ?)", i, f"v{i}a")
    return eng


def _run_adhoc(cache: bool) -> float:
    eng = _make_kv(plan_cache_size=128 if cache else 0)
    eng.execute_sql(ADHOC_SQL, 0, 0, 1)  # warm: first miss planned either way
    gc.collect()
    started = time.process_time()
    for i in range(ADHOC_REPEATS):
        eng.execute_sql(ADHOC_SQL, i % 50, 10, 20)
    return time.process_time() - started


@pytest.fixture(scope="module")
def sweep():
    voter = {True: float("inf"), False: float("inf")}
    voter_counters: dict[str, int] = {}
    for _ in range(VOTER_ROUNDS):
        for flag in (True, False):
            elapsed, engine = _run_voter(flag)
            if elapsed < voter[flag]:
                voter[flag] = elapsed
                if flag:
                    voter_counters = engine.stats.snapshot()

    bikeshare = {True: float("inf"), False: float("inf")}
    for _ in range(BIKESHARE_ROUNDS):
        for flag in (True, False):
            elapsed, _engine = _run_bikeshare(flag)
            bikeshare[flag] = min(bikeshare[flag], elapsed)

    adhoc = {"hot": float("inf"), "cold": float("inf")}
    for _ in range(3):
        adhoc["hot"] = min(adhoc["hot"], _run_adhoc(cache=True))
        adhoc["cold"] = min(adhoc["cold"], _run_adhoc(cache=False))

    return voter, voter_counters, bikeshare, adhoc


def test_e13_cache_counters_track_the_workload(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    eng = _make_kv()
    misses_after_seed = eng.stats.plan_cache_misses
    for i in range(10):
        eng.execute_sql("SELECT v FROM kv WHERE k = ?", i)
    assert eng.stats.plan_cache_misses == misses_after_seed + 1
    assert eng.stats.plan_cache_hits >= 9 + 49  # probe hits + seed INSERT hits


def test_e13_compile_throughput(benchmark, sweep, save_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    voter, voter_counters, bikeshare, adhoc = sweep

    voter_speedup = voter[False] / voter[True]
    bikeshare_speedup = bikeshare[False] / bikeshare[True]
    cache_speedup = adhoc["cold"] / adhoc["hot"]

    rows = [
        [
            "voter (E3 config)",
            f"{voter[True] * 1000:.1f}ms",
            f"{voter[False] * 1000:.1f}ms",
            f"{voter_speedup:.2f}x",
        ],
        [
            f"bikeshare ({BIKESHARE_TICKS} ticks)",
            f"{bikeshare[True] * 1000:.1f}ms",
            f"{bikeshare[False] * 1000:.1f}ms",
            f"{bikeshare_speedup:.2f}x",
        ],
        [
            f"ad-hoc x{ADHOC_REPEATS} (hot vs cold)",
            f"{adhoc['hot'] * 1000:.1f}ms",
            f"{adhoc['cold'] * 1000:.1f}ms",
            f"{cache_speedup:.2f}x",
        ],
    ]
    save_report(
        "e13_compile",
        format_table(["workload", "compiled/hot", "interpreted/cold", "speedup"], rows)
        + f"\nbars: voter ≥ {MIN_VOTER_SPEEDUP}x, plan-cache hot ≥ "
        + f"{MIN_CACHE_SPEEDUP}x (best of {VOTER_ROUNDS} interleaved rounds)"
        + f"\npoint lookups served: {voter_counters.get('point_lookups', 0)}",
    )
    write_bench_json(
        "e13_compile",
        {
            "workloads": {
                "voter": {"votes": VOTES, "contestants": CONTESTANTS},
                "bikeshare": {"ticks": BIKESHARE_TICKS},
                "adhoc": {"repeats": ADHOC_REPEATS},
            },
            "cpu_seconds": {
                "voter_compiled": voter[True],
                "voter_interpreted": voter[False],
                "bikeshare_compiled": bikeshare[True],
                "bikeshare_interpreted": bikeshare[False],
                "adhoc_hot": adhoc["hot"],
                "adhoc_cold": adhoc["cold"],
            },
            "point_lookups": voter_counters.get("point_lookups", 0),
            "bars": {
                "min_voter_speedup": MIN_VOTER_SPEEDUP,
                "min_cache_speedup": MIN_CACHE_SPEEDUP,
            },
            # regression-guarded metrics (benchmarks/check_regression.py):
            # machine-independent ratios, not wall times
            "guard": {
                "voter_compiled_speedup": voter_speedup,
                "bikeshare_compiled_speedup": bikeshare_speedup,
                "plan_cache_hot_speedup": cache_speedup,
            },
        },
    )

    # compiled execution must be semantically invisible: same election
    compiled_summary = _run_voter_summary(True)
    interpreted_summary = _run_voter_summary(False)
    assert compiled_summary == interpreted_summary

    assert voter_speedup >= MIN_VOTER_SPEEDUP, (voter, voter_speedup)
    assert bikeshare_speedup > 1.0, (bikeshare, bikeshare_speedup)
    assert cache_speedup >= MIN_CACHE_SPEEDUP, (adhoc, cache_speedup)
    assert voter_counters.get("point_lookups", 0) > 0


def _run_voter_summary(compile_flag: bool):
    engine = SStoreEngine(compile=compile_flag)
    app = VoterSStoreApp(engine, num_contestants=CONTESTANTS)
    app.submit(_requests(), ingest_chunk=5)
    return app.summary()

"""A1 — Ablation: input batch size vs. throughput.

The batch is the TE-defining parameter of the paper's transaction model
("Transaction executions for BSPs are defined by a batch of tuples as
specified by the user, e.g., 2 tuples").  Larger batches amortize
per-transaction overhead (commit, logging, trigger dispatch) at the cost of
coarser removal timing.

Measured: simulated and wall throughput of the voter workflow across batch
sizes; expected shape: monotone-ish improvement that flattens once
per-tuple work dominates.
"""

from __future__ import annotations

import pytest

from repro.apps.voter.workload import VoterWorkload
from repro.bench import format_table, run_voter_sstore

CONTESTANTS = 8
VOTES = 400
BATCH_SIZES = [1, 2, 5, 10, 25, 50]


def _requests():
    return VoterWorkload(seed=111, num_contestants=CONTESTANTS).generate(VOTES)


@pytest.fixture(scope="module")
def sweep():
    return {}


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_a1_batch_size(benchmark, batch_size, sweep):
    result = benchmark.pedantic(
        lambda: run_voter_sstore(
            _requests(),
            num_contestants=CONTESTANTS,
            batch_size=batch_size,
            ingest_chunk=batch_size,
        ),
        rounds=2,
        iterations=1,
    )
    sweep[batch_size] = result
    benchmark.extra_info["simulated_tps"] = round(result.simulated_tps)
    benchmark.extra_info["tuples_per_s_wall"] = round(VOTES / result.wall_seconds)


def _tuple_rate(result) -> float:
    """Simulated tuples/second (TPS × tuples per transaction)."""
    txns = max(1, result.counters["txns_committed"])
    return result.simulated_tps * VOTES / txns


def test_a1_shape_holds(benchmark, sweep, save_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [
            batch,
            round(_tuple_rate(result)),
            result.counters["txns_committed"],
            result.counters["client_pe_roundtrips"],
            round(VOTES / result.wall_seconds),
        ]
        for batch, result in sorted(sweep.items())
    ]
    save_report(
        "a1_batch_size",
        format_table(
            [
                "batch",
                "sim_tuples_per_s",
                "txns",
                "client_pe_rt",
                "wall_tuples_per_s",
            ],
            rows,
        ),
    )
    # batching amortizes per-transaction overhead: tuple throughput climbs
    assert _tuple_rate(sweep[25]) > 3 * _tuple_rate(sweep[1])
    # small batches preserve exact per-vote elimination semantics; very
    # large batches trade elimination *timing* precision for throughput
    # (trailing intra-batch votes are counted before SP3 fires) — the
    # latency/precision trade-off this ablation exists to expose
    exact = {batch: sweep[batch].summary.remaining for batch in (1, 2, 5, 10)}
    assert len(set(exact.values())) == 1

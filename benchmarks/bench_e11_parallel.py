"""E11 — True multi-process partition parallelism (``repro.parallel``).

Paper claim (§1, §4): H-Store's shared-nothing design assigns each
partition a single-threaded engine so single-partition transactions run
concurrently across partitions with no locking — throughput scales with
the partition count as long as transactions stay single-sited.

Measured: the Voter ``validate_vote`` procedure, routed by phone number,
driven as single-partition transactions through (a) the in-process
``HStoreEngine`` (the GIL-bound simulation every other experiment uses)
and (b) ``ParallelHStoreEngine`` clusters of 1, 2 and 4 worker OS
processes.

**Metric.** This container exposes one CPU core, so *wall-clock* speedup
from multiprocessing is physically impossible here; workers time-slice a
single core.  What the shared-nothing design actually changes is the
*makespan*: each worker burns only its shard's CPU time, and with W
fair-sharing workers the cluster finishes when the busiest worker does.
We therefore report throughput against the **CPU-time makespan**
(coordinator CPU + max per-worker CPU, measured with
``time.process_time`` inside each process) — which equals wall-clock on a
machine with ≥ W free cores — alongside the honest single-core wall time
and the net-simulator's ``ClusterCost`` figure (same makespan idea, in
simulated microseconds with explicit IPC charging).  The assertion is on
the makespan metric, matching the repo's established simulated-TPS
methodology (E3/E4).
"""

from __future__ import annotations

import time

from repro.apps.voter import schema
from repro.apps.voter.procedures import ValidateVote
from repro.apps.voter.workload import VoterWorkload
from repro.bench import format_table
from repro.bench.harness import percentiles, write_bench_json
from repro.hstore.engine import HStoreEngine
from repro.hstore.netsim import LatencyModel, cluster_cost
from repro.parallel import ParallelHStoreEngine

CONTESTANTS = 12
VOTES = 2400
GROUP_SIZE = 8
WORKER_COUNTS = (1, 2, 4)
SPEEDUP_FLOOR = 2.0  # acceptance: ≥2× at 4 workers vs in-process


class RoutedValidateVote(ValidateVote):
    """SP1 routed by phone number — a single-partition transaction.

    Routing on the phone keeps each phone's history on one shard, so the
    one-vote-per-phone check stays local and correct; ``contestants`` is
    replicated to every worker by the broadcast seeding DML.
    """

    partition_param = 0


def _requests():
    workload = VoterWorkload(seed=4242, num_contestants=CONTESTANTS)
    return [request.as_row() for request in workload.generate(VOTES)]


def _setup(engine):
    schema.install_tables(engine)
    engine.register_procedure(RoutedValidateVote)
    schema.seed_contestants(engine, CONTESTANTS)
    return engine


def _run_inprocess(rows):
    engine = _setup(HStoreEngine(partitions=1, log_group_size=GROUP_SIZE))
    before = engine.stats.snapshot()
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    committed = 0
    for row in rows:
        result = engine.call_procedure("validate_vote", *row)
        if result.success:
            committed += 1
    cpu_s = time.process_time() - cpu_start
    wall_s = time.perf_counter() - wall_start
    accepted = len(engine.table_rows("votes"))
    return {
        "label": "in-process",
        "workers": 0,
        "committed": committed,
        "accepted": accepted,
        "wall_s": wall_s,
        "makespan_s": cpu_s,  # one process does all the work
        "worker_cpu_s": [],
        "delta": engine.stats.delta(before),
        "latencies_us": [],
    }


def _run_cluster(rows, workers):
    engine = _setup(
        ParallelHStoreEngine(workers, log_group_size=GROUP_SIZE)
    )
    try:
        coord_before = engine.stats_local.snapshot()
        workers_before = [stats.snapshot() for stats in engine.worker_stats()]
        cpu_start = time.process_time()
        batch = engine.call_many("validate_vote", rows, latencies=True)
        coordinator_cpu_s = time.process_time() - cpu_start
        coord_delta = engine.stats_local.delta(coord_before)
        worker_deltas = [
            after.delta(before)
            for before, after in zip(workers_before, engine.worker_stats())
        ]
        accepted = len(engine.table_rows("votes"))
    finally:
        engine.shutdown()
    cost = cluster_cost(coord_delta, worker_deltas, model=LatencyModel())
    return {
        "label": f"parallel-{workers}w",
        "workers": workers,
        "committed": batch.committed,
        "accepted": accepted,
        "wall_s": batch.wall_s,
        "makespan_s": coordinator_cpu_s + batch.max_worker_cpu_s,
        "worker_cpu_s": [round(cpu, 4) for cpu in batch.worker_cpu_s],
        "delta": coord_delta,
        "sim_makespan_us": cost.makespan_us,
        "sim_speedup": cost.parallel_speedup,
        "sim_tps": cost.throughput(batch.committed),
        "latencies_us": batch.latencies_us,
    }


def test_e11_parallel_scaling(benchmark, save_report):
    rows = _requests()

    runs = [_run_inprocess(rows)]
    for workers in WORKER_COUNTS:
        runs.append(_run_cluster(rows, workers))

    baseline = runs[0]
    # correctness first: sharding must not change the election outcome
    for run in runs[1:]:
        assert run["committed"] == baseline["committed"], run["label"]
        assert run["accepted"] == baseline["accepted"], run["label"]

    for run in runs:
        run["makespan_tps"] = run["committed"] / max(run["makespan_s"], 1e-9)
        run["wall_tps"] = run["committed"] / max(run["wall_s"], 1e-9)
        run["speedup"] = run["makespan_tps"] / max(
            baseline["committed"] / max(baseline["makespan_s"], 1e-9), 1e-9
        )

    table_rows = [
        [
            run["label"],
            run["committed"],
            f"{run['wall_s']:.3f}",
            f"{run['makespan_s']:.3f}",
            f"{run['makespan_tps']:,.0f}",
            f"{run['speedup']:.2f}x",
            f"{run.get('sim_tps', 0.0):,.0f}" if run["workers"] else "-",
        ]
        for run in runs
    ]
    table = format_table(
        ["config", "committed", "wall_s", "makespan_s", "makespan_tps",
         "speedup", "sim_tps"],
        table_rows,
    )

    four = next(run for run in runs if run["workers"] == 4)
    latency = percentiles(four["latencies_us"])

    # timing: one representative 2-worker batch under the harness
    benchmark.pedantic(lambda: _run_cluster(rows, 2), rounds=1, iterations=1)
    benchmark.extra_info["speedup_4w"] = round(four["speedup"], 2)

    save_report(
        "e11_parallel",
        f"{table}\n\n"
        f"single-partition txns, {VOTES} votes, routed by phone; "
        f"makespan = coordinator CPU + busiest worker CPU "
        f"(= wall-clock with >= W cores; this container has 1).\n"
        f"4-worker latency us: "
        + ", ".join(f"{k}={v:.0f}" for k, v in latency.items()),
    )
    write_bench_json(
        "e11_parallel",
        {
            "votes": VOTES,
            "contestants": CONTESTANTS,
            "log_group_size": GROUP_SIZE,
            "runs": [
                {
                    "config": run["label"],
                    "workers": run["workers"],
                    "committed": run["committed"],
                    "wall_s": round(run["wall_s"], 4),
                    "wall_tps": round(run["wall_tps"], 1),
                    "makespan_s": round(run["makespan_s"], 4),
                    "makespan_tps": round(run["makespan_tps"], 1),
                    "speedup_vs_inprocess": round(run["speedup"], 3),
                    "worker_cpu_s": run["worker_cpu_s"],
                    "sim_tps": round(run.get("sim_tps", 0.0), 1),
                    "latency_us": percentiles(run["latencies_us"]),
                }
                for run in runs
            ],
        },
    )

    assert four["speedup"] >= SPEEDUP_FLOOR, (
        f"4-worker makespan speedup {four['speedup']:.2f}x "
        f"below the {SPEEDUP_FLOOR}x floor:\n{table}"
    )

"""E8 — BikeShare: one system for OLTP + streaming + hybrid (Figs. 4–5).

Paper claims (§3.2): a single S-Store engine handles bike checkouts/returns
(pure OLTP), per-second GPS statistics and stolen-bike alerts (pure
streaming), and transactionally-correct real-time discounts (hybrid) — with
"transactional processing ... required to ensure correct calculation of
these discounts."

Measured: a 300-tick city simulation with a station-drain scenario and one
theft; throughput of the mixed workload; and the transactional guarantees:
no discount double-granted, billing exactly once per ride, engine ride
distances matching the simulator's ground truth, theft detected.
"""

from __future__ import annotations

import pytest

from repro.apps.bikeshare import BikeShareApp, BikeShareSimulation
from repro.bench import format_table

TICKS = 300


def run_city():
    app = BikeShareApp(
        num_stations=9, capacity=8, bikes_per_station=4, num_riders=24
    )
    sim = BikeShareSimulation(
        app,
        seed=88,
        trip_speed_mph=30.0,
        drain_station=1,
        drain_bias=0.7,
        theft_at_tick=60,
        trip_start_probability=0.5,
    )
    report = sim.run(TICKS)
    return app, report


def test_e8_mixed_workload(benchmark, save_report):
    app, report = benchmark.pedantic(run_city, rounds=1, iterations=1)
    engine = app.engine
    stats = engine.stats

    committed = stats.txns_committed
    benchmark.extra_info["txns_committed"] = committed
    benchmark.extra_info["gps_fixes"] = report.gps_fixes

    rows = [
        ["ticks simulated", report.ticks],
        ["checkouts", report.checkouts],
        ["returns", report.returns],
        ["gps fixes ingested", report.gps_fixes],
        ["txns committed", committed],
        ["discounts accepted", report.discounts_accepted],
        ["stolen-bike alerts", len(app.alerts())],
        ["billing total", f"${app.billing_total():.2f}"],
    ]
    save_report("e8_bikeshare", format_table(["metric", "value"], rows))

    # -- pure streaming: theft detected, stats flowing --------------------
    assert report.thefts_started == 1
    assert len(app.alerts()) == 1
    assert app.city_speed() is not None

    # -- pure OLTP: conservation + exactly-once billing --------------------
    statuses = dict(
        engine.execute_sql(
            "SELECT status, COUNT(*) FROM bikes GROUP BY status"
        ).rows
    )
    assert sum(statuses.values()) == 36
    finished_rides = engine.execute_sql(
        "SELECT COUNT(*) FROM rides WHERE end_ts IS NOT NULL"
    ).scalar()
    charges = engine.execute_sql("SELECT COUNT(*) FROM billing").scalar()
    assert finished_rides == charges == report.returns

    # -- hybrid: discounts never double-granted ----------------------------
    grants = engine.execute_sql(
        "SELECT discount_id, COUNT(*) FROM discounts "
        "WHERE state = 'accepted' OR state = 'redeemed' "
        "GROUP BY discount_id"
    ).rows
    assert all(count == 1 for _id, count in grants)
    # the drain scenario actually produced discounts
    assert engine.execute_sql("SELECT COUNT(*) FROM discounts").scalar() > 0

    # -- ride statistics match ground truth --------------------------------
    step = 30.0 / 3600.0
    finished = engine.execute_sql(
        "SELECT rider_id, distance FROM rides WHERE end_ts IS NOT NULL "
        "ORDER BY ride_id"
    ).rows
    remaining = {k: list(v) for k, v in report.true_distances.items()}
    for rider, engine_distance in finished:
        if remaining.get(rider):
            truth = remaining[rider].pop(0)
            assert abs(truth - engine_distance) <= step + 1e-9


def test_e8_gps_throughput(benchmark, save_report):
    """Throughput of the pure-streaming path: GPS fixes per second."""
    app = BikeShareApp(
        num_stations=4, capacity=20, bikes_per_station=10, num_riders=10
    )
    for rider in range(1, 9):
        assert app.checkout(rider, (rider % 4) + 1, ts=0).success
    bases = {
        int(bike_id): (float(x), float(y))
        for bike_id, x, y in app.engine.execute_sql(
            "SELECT b.bike_id, p.x, p.y FROM bikes b "
            "JOIN bike_positions p ON p.bike_id = b.bike_id "
            "WHERE b.status = 'riding'"
        ).rows
    }
    mph12 = 12.0 / 3600.0

    tick = {"now": 0}

    def burst():
        for _ in range(25):
            tick["now"] += 1
            now = tick["now"]
            app.report_gps(
                [
                    (bike, now, x + now * mph12, y)
                    for bike, (x, y) in bases.items()
                ]
            )
        return len(bases) * 25

    fixes = benchmark(burst)
    benchmark.extra_info["fixes_per_call"] = fixes
    save_report(
        "e8_gps_throughput",
        f"{fixes} fixes per burst; see pytest-benchmark table for rates",
    )
    assert app.alerts() == []  # 12 mph riders are not thieves

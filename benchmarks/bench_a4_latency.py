"""A4 — Ablation: pipeline latency vs. batch size.

The flip side of A1: bigger batches raise throughput but each tuple waits
longer for its batch to fill and its (larger) pipeline to run.  Streaming
systems live on this trade-off; S-Store's batch-defined TEs make it an
explicit knob.

Measured: wall-clock pipeline latency (batch formation → last TE commit)
p50/p95 across batch sizes, from the engine's built-in latency tracker.
"""

from __future__ import annotations

import pytest

from repro.apps.voter.sstore_app import VoterSStoreApp
from repro.apps.voter.workload import VoterWorkload
from repro.bench import format_table

CONTESTANTS = 8
VOTES = 300
BATCH_SIZES = [1, 5, 25]


def run_with_batch(batch_size: int):
    app = VoterSStoreApp(num_contestants=CONTESTANTS, batch_size=batch_size)
    requests = VoterWorkload(seed=444, num_contestants=CONTESTANTS).generate(VOTES)
    app.submit(requests, ingest_chunk=batch_size)
    return app.engine.latency.summary()


@pytest.fixture(scope="module")
def sweep():
    return {}


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_a4_latency(benchmark, batch_size, sweep):
    summary = benchmark.pedantic(
        lambda: run_with_batch(batch_size), rounds=2, iterations=1
    )
    sweep[batch_size] = summary
    benchmark.extra_info["p95_ms"] = round(summary.p95_ms, 3)


def test_a4_shape_holds(benchmark, sweep, save_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [
            batch,
            summary.count,
            f"{summary.p50_ms:.3f}",
            f"{summary.p95_ms:.3f}",
            f"{summary.max_ms:.3f}",
        ]
        for batch, summary in sorted(sweep.items())
    ]
    save_report(
        "a4_latency",
        format_table(
            ["batch", "pipelines", "p50_ms", "p95_ms", "max_ms"], rows
        ),
    )
    # every completed pipeline was tracked
    for batch, summary in sweep.items():
        assert summary.count == VOTES // batch
    # bigger batches → fewer pipelines doing more per-TE work: per-pipeline
    # latency grows with batch size
    assert sweep[25].p50_ms > sweep[1].p50_ms

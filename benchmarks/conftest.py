"""Shared fixtures/helpers for the benchmark suites.

Each experiment writes a human-readable report into
``benchmarks/_results/<experiment>.txt`` (in addition to pytest-benchmark's
timing table), so the paper-vs-measured comparison in ``EXPERIMENTS.md`` can
be audited and regenerated.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "_results"


@pytest.fixture(scope="session")
def save_report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        # also echo for `pytest -s` runs
        print(f"\n[{name}]\n{text}")

    return _save
